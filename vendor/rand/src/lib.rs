//! Offline stand-in for the `rand` crate (0.8-flavoured API subset).
//!
//! The workspace uses seeded RNGs only — experiment workload generation
//! and the GA/RANDOM optimizers — so statistical quality requirements are
//! modest and determinism is what matters. Both [`rngs::StdRng`] and
//! [`rngs::SmallRng`] are xoshiro256++ seeded through splitmix64; streams
//! are stable across runs and platforms (they differ from the real rand
//! crate's streams, which is fine: every consumer seeds explicitly).

#![forbid(unsafe_code)]

/// The core randomness source: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers layered over [`RngCore`] (the rand 0.8 `Rng` facade).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface (only the `u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a half-open or closed range.
///
/// The blanket [`SampleRange`] impls below are generic over this trait —
/// one impl per range shape, exactly like the real crate — so type
/// inference can unify the range's element type with `gen_range`'s
/// return type (per-type impls would leave float literals ambiguous).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `start..end`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `start..=end`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ state, seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Xoshiro256 {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" generator (here: xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    /// The "small fast" generator (same engine; the distinction only
    /// matters for the real crate's portability guarantees).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "suspicious coin: {heads}");
    }
}
