//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities the workspace uses:
//!
//! * [`thread::scope`] — scoped threads whose spawn closures receive the
//!   scope (so workers can spawn sub-workers), mapped onto
//!   `std::thread::scope`;
//! * [`channel::unbounded`] — a multi-producer *multi-consumer* FIFO
//!   channel (std's mpsc receiver is not cloneable, so this is a small
//!   mutex+condvar queue).

#![forbid(unsafe_code)]

/// Scoped threads in crossbeam's shape.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawn closures receive `&Scope` as their argument.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure's argument is the scope
        /// itself, enabling nested spawns (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Returns `Err` with the panic payload if any worker (or the
    /// closure itself) panicked, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

/// An unbounded MPMC FIFO channel in crossbeam's shape.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed and
    /// drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let closed = inner.senders == 0;
            drop(inner);
            if closed {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty but
        /// still has senders. Returns `Err(RecvError)` once it is closed
        /// and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_propagates_results() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_reports_worker_panics() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn channel_fifo_and_close() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let tx2 = tx.clone();
        tx2.send(3).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_multi_consumer_drains_all() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let seen = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let seen = &seen;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        seen.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
