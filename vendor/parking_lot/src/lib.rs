//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this vendored substitute provides the subset of the API the
//! workspace uses — `Mutex`, `RwLock` and their guards — implemented over
//! the std primitives with parking_lot's signature: `lock()`/`read()`/
//! `write()` return guards directly (a poisoned std lock is transparently
//! recovered, matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that never poisons: panicking while holding the lock leaves the
/// data accessible to later lockers, like parking_lot's.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
