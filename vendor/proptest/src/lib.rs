//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so this vendored substitute
//! implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, range and tuple strategies, simple `[class]{m,n}`
//! string patterns, weighted unions ([`prop_oneof!`]), collections
//! (`vec` / `btree_set` / `btree_map`), `option::of`, and the
//! [`proptest!`] test macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   deterministic case number instead of a minimized counterexample.
//! * **Deterministic seeding.** Cases derive from a hash of the test's
//!   module path and name plus the case index, so failures reproduce
//!   exactly on re-run.
//! * **String patterns** support only a single character class with an
//!   optional `{m,n}` / `{n}` quantifier — which is all the workspace
//!   uses — not full regex syntax.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving test-case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one test case from the test identity and the
    /// case index.
    pub fn new(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a generated case did not complete.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it is skipped, not failed.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Debug,
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerating, with a
    /// retry cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into branches, up to `depth` levels.
    /// (`desired_size` and `expected_branch_size` are accepted for API
    /// compatibility; sizing is governed by the branch strategies
    /// themselves.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new(vec![(1, self.clone().boxed()), (2, branch)]).boxed();
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<V> {
    fn dyn_gen(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_gen(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 candidates in a row", self.whence);
    }
}

/// A weighted choice between strategies of one value type.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted draw out of range")
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any, strings, tuples
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Whole-domain strategy behind [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `A`'s whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `[class]{m,n}` string strategies: `&str` patterns generate strings.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (choices, min, max) = parse_class_pattern(self);
        let len = min + (rng.below((max - min + 1) as u64) as usize);
        (0..len).map(|_| choices[rng.below(choices.len() as u64) as usize]).collect()
    }
}

/// Parses a single-character-class pattern with an optional quantifier.
fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    assert_eq!(
        chars.next(),
        Some('['),
        "unsupported string pattern {pattern:?}: expected [class]{{m,n}}"
    );
    let mut choices: Vec<char> = Vec::new();
    loop {
        let c = chars.next().unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                choices.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
            }
            first => {
                // `a-z` range (a `-` before `]` is a literal dash).
                if chars.peek() == Some(&'-') {
                    let mut look = chars.clone();
                    look.next(); // the dash
                    match look.peek() {
                        Some(&']') | None => choices.push(first),
                        Some(&hi) => {
                            chars = look;
                            chars.next();
                            assert!(
                                first <= hi,
                                "inverted range {first}-{hi} in pattern {pattern:?}"
                            );
                            for code in first as u32..=hi as u32 {
                                if let Some(c) = char::from_u32(code) {
                                    choices.push(c);
                                }
                            }
                        }
                    }
                } else {
                    choices.push(first);
                }
            }
        }
    }
    assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
    let rest: String = chars.collect();
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported quantifier {rest:?} in {pattern:?}"));
        match inner.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("quantifier min"),
                hi.trim().parse().expect("quantifier max"),
            ),
            None => {
                let n = inner.trim().parse().expect("quantifier count");
                (n, n)
            }
        }
    };
    assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
    (choices, min, max)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
}

// ---------------------------------------------------------------------------
// Collections and options
// ---------------------------------------------------------------------------

/// A size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use super::*;

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of up to `size` elements (duplicates collapse, so the result
    /// may be smaller, as in the real crate under duplicate pressure).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// See [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Maps of up to `size` entries.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::*;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some` of the inner strategy
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted (or unweighted) choice of strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    )));
                }
            }
        }
    };
}

/// Vetoes the current case (skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __executed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            while __executed < __config.cases {
                assert!(
                    __rejected < __config.cases.saturating_mul(16) + 1024,
                    "proptest: too many rejected cases ({})",
                    __rejected
                );
                let mut __rng = $crate::TestRng::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                __case += 1;
                $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($pat), " = {:?}; "),+),
                    $(&$pat),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => __executed += 1,
                    Ok(Err($crate::TestCaseError::Reject)) => __rejected += 1,
                    Ok(Err($crate::TestCaseError::Fail(__msg))) => {
                        panic!(
                            "proptest case #{} failed: {}\n  inputs: {}",
                            __case - 1,
                            __msg,
                            __inputs
                        );
                    }
                    Err(__payload) => {
                        eprintln!(
                            "proptest case #{} panicked\n  inputs: {}",
                            __case - 1,
                            __inputs
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
    )*};
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_patterns_parse() {
        let (chars, min, max) = super::parse_class_pattern("[a-c]{1,5}");
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 5));
        let (chars, min, max) = super::parse_class_pattern("[a-z0-9_:.\\-]{1,16}");
        assert!(chars.contains(&'-') && chars.contains(&'_') && chars.contains(&'z'));
        assert_eq!((min, max), (1, 16));
        let (chars, ..) = super::parse_class_pattern("[x]");
        assert_eq!(chars, vec!['x']);
    }

    #[test]
    fn deterministic_generation() {
        let strat = prop::collection::vec(0u8..10, 1..5);
        let mut a = crate::TestRng::new("t", 3);
        let mut b = crate::TestRng::new("t", 3);
        assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 0.25f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..=1.0).contains(&y));
        }

        #[test]
        fn strings_match_class(s in "[a-c]{1,5}") {
            prop_assert!(!s.is_empty() && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn collections_sized(vs in prop::collection::vec(any::<bool>(), 2..6),
                             m in prop::collection::btree_map("[a-b]{1,2}", 0i32..5, 0..4)) {
            prop_assert!((2..6).contains(&vs.len()));
            prop_assert!(m.len() < 4);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![2 => (0u8..4).prop_map(|x| x as i32), 1 => Just(-1i32)]) {
            prop_assert!(v == -1 || (0..4).contains(&v));
        }
    }

    #[test]
    fn recursive_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        for case in 0..200u64 {
            let mut rng = crate::TestRng::new("rec", case);
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 7, "tree too deep: {t:?}");
        }
    }
}
