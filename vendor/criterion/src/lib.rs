//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — groups with
//! `warm_up_time` / `measurement_time` / `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter` / `iter_batched`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! plain wall-clock harness: warm up for the configured duration, then
//! time `sample_size` samples and report mean / min / max per benchmark.
//! No statistics beyond that, no HTML reports, no saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility,
/// batching is always one setup per measured call here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier, `function/parameter` style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing configuration shared by [`Criterion`] and groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 20,
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup { _criterion: self, name: name.into(), settings }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.warm_up = dur;
        self
    }

    /// Sets the measurement duration for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement = dur;
        self
    }

    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.samples = samples.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.settings, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per benchmark, so this is a
    /// no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; routines register themselves here.
pub struct Bencher {
    /// Total measured time across recorded iterations.
    elapsed: Duration,
    /// Number of recorded iterations.
    iterations: u64,
    /// How long the measurement phase may keep iterating.
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Lets `routine` measure itself: it receives an iteration count and
    /// returns the time spent on exactly that many executions (mirrors
    /// criterion's `iter_custom`). Useful when the measurable work is
    /// wrapped in unmeasured setup the routine must exclude.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            self.elapsed += routine(1);
            self.iterations += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Warm-up + sampled measurement + one-line report.
fn run_benchmark<F>(name: &str, settings: Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run the routine with a budget but discard the numbers.
    let mut warm = Bencher { elapsed: Duration::ZERO, iterations: 0, budget: settings.warm_up };
    f(&mut warm);

    // Measurement: split the budget across samples; report per-iteration
    // wall time.
    let per_sample = settings.measurement / settings.samples as u32;
    let mut means = Vec::with_capacity(settings.samples);
    for _ in 0..settings.samples {
        let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0, budget: per_sample };
        f(&mut b);
        if b.iterations > 0 {
            means.push(b.elapsed.as_secs_f64() / b.iterations as f64);
        }
    }
    if means.is_empty() {
        println!("{name:<56} time:   [no samples]");
        return;
    }
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = means.iter().cloned().fold(0.0f64, f64::max);
    println!("{name:<56} time:   [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
}

/// Human units for a duration in seconds.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Settings {
        Settings {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(10),
            samples: 2,
        }
    }

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(2);
        let hits = std::cell::Cell::new(0u64);
        group.bench_function("count", |b| b.iter(|| hits.set(hits.get() + 1)));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(hits.get() > 0);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let settings = quick();
        run_benchmark("batched", settings, |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
