//! Property tests for the key-value store.

use proptest::prelude::*;
use quepa_kvstore::{KvStore, Reply};
use std::collections::BTreeMap;

proptest! {
    /// The store behaves like a BTreeMap under arbitrary set/delete
    /// interleavings.
    #[test]
    fn model_check(ops in prop::collection::vec((0u8..20, any::<bool>(), 0u32..100), 1..60)) {
        let mut kv = KvStore::new("m");
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        for (k, is_set, v) in ops {
            let key = format!("key{k}");
            if is_set {
                let val = format!("v{v}");
                prop_assert_eq!(kv.set(&key, &val), model.insert(key.clone(), val));
            } else {
                prop_assert_eq!(kv.delete(&key), model.remove(&key).is_some());
            }
        }
        prop_assert_eq!(kv.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(kv.get(k), Some(v.as_str()));
        }
    }

    /// SCAN prefix returns exactly the model's range, in order.
    #[test]
    fn scan_matches_model(
        keys in prop::collection::btree_set("[a-c]{1,5}", 1..30),
        prefix in "[a-c]{0,3}",
        count in prop::option::of(0usize..40),
    ) {
        let mut kv = KvStore::new("m");
        for k in &keys {
            kv.set(k, "v");
        }
        let got: Vec<String> =
            kv.scan_prefix(&prefix, count).into_iter().map(|(k, _)| k).collect();
        let mut want: Vec<String> =
            keys.iter().filter(|k| k.starts_with(&prefix)).cloned().collect();
        if let Some(n) = count {
            want.truncate(n);
        }
        prop_assert_eq!(got, want);
    }

    /// The command language agrees with the typed API.
    #[test]
    fn commands_agree_with_api(keys in prop::collection::btree_set("[a-b]{1,4}", 1..15)) {
        let mut kv = KvStore::new("m");
        for k in &keys {
            kv.execute(&format!("SET {k} val")).unwrap();
        }
        prop_assert_eq!(kv.execute("DBSIZE").unwrap(), Reply::Int(keys.len() as i64));
        for k in &keys {
            prop_assert_eq!(
                kv.execute(&format!("GET {k}")).unwrap(),
                Reply::Value(Some("val".into()))
            );
        }
        let all: Vec<&str> = keys.iter().map(String::as_str).collect();
        let Reply::Pairs(pairs) = kv.execute(&format!("MGET {}", all.join(" "))).unwrap()
        else { panic!() };
        prop_assert_eq!(pairs.len(), keys.len());
    }
}
