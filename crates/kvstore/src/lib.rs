//! # quepa-kvstore — an embedded key-value store
//!
//! Plays the role Redis plays in the paper's Polyphony polystore: the shared
//! `discount` store mapping keys such as `k1:cure:wish` to values such as
//! `"40%"`.
//!
//! The store speaks a Redis-flavoured command language:
//!
//! ```text
//! SET key value        GET key          MGET k1 k2 …
//! DEL key …            EXISTS key       DBSIZE
//! SCAN prefix [COUNT n]                 KEYS pattern     (glob * and ?)
//! ```
//!
//! Keys are ordered in a `BTreeMap`, which is what makes `SCAN prefix`
//! efficient (a range scan, not a full iteration).
//!
//! ```
//! use quepa_kvstore::KvStore;
//!
//! let mut kv = KvStore::new("discount");
//! kv.set("k1:cure:wish", "40%");
//! assert_eq!(kv.get("k1:cure:wish"), Some("40%"));
//! let hits = kv.scan_prefix("k1:cure", None);
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors of the key-value store's command language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Malformed command text.
    Syntax(String),
    /// Known command, wrong arity.
    Arity {
        /// The command name.
        command: String,
    },
    /// Unknown command.
    UnknownCommand(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Syntax(m) => write!(f, "kv syntax error: {m}"),
            KvError::Arity { command } => write!(f, "wrong number of arguments for {command}"),
            KvError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
        }
    }
}

impl std::error::Error for KvError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, KvError>;

/// A reply from the command interface, mirroring the Redis reply taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`-style acknowledgement.
    Ok,
    /// A single (possibly missing) value.
    Value(Option<String>),
    /// An array of key/value pairs (MGET, SCAN, KEYS keep the key).
    Pairs(Vec<(String, String)>),
    /// An integer (DEL count, EXISTS, DBSIZE).
    Int(i64),
}

/// An embedded ordered key-value store.
///
/// Alongside the primary keyspace the store maintains a secondary index
/// from value to the set of keys holding it, so exact-value membership
/// queries (the pushdown path of the polystore layer) are index probes
/// rather than scans.
#[derive(Debug, Clone)]
pub struct KvStore {
    name: String,
    map: BTreeMap<String, String>,
    by_value: BTreeMap<String, BTreeSet<String>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new(name: impl Into<String>) -> Self {
        KvStore { name: name.into(), map: BTreeMap::new(), by_value: BTreeMap::new() }
    }

    /// The store name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sets a key, returning the previous value if any.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        let (key, value) = (key.into(), value.into());
        let old = self.map.insert(key.clone(), value.clone());
        match &old {
            Some(old_value) if *old_value == value => {}
            Some(old_value) => {
                let old_value = old_value.clone();
                self.unindex(&old_value, &key);
                self.by_value.entry(value).or_default().insert(key);
            }
            None => {
                self.by_value.entry(value).or_default().insert(key);
            }
        }
        old
    }

    fn unindex(&mut self, value: &str, key: &str) {
        if let Some(keys) = self.by_value.get_mut(value) {
            keys.remove(key);
            if keys.is_empty() {
                self.by_value.remove(value);
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Batched lookup (one simulated round trip); missing keys are skipped.
    pub fn multi_get(&self, keys: &[&str]) -> Vec<(String, String)> {
        keys.iter().filter_map(|k| self.map.get(*k).map(|v| ((*k).to_owned(), v.clone()))).collect()
    }

    /// Deletes a key; true if it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        match self.map.remove(key) {
            None => false,
            Some(value) => {
                self.unindex(&value, key);
                true
            }
        }
    }

    /// The keys currently holding exactly `value`, from the secondary
    /// index (no scan). Sorted; empty when no key holds the value.
    pub fn keys_with_value(&self, value: &str) -> Vec<&str> {
        self.by_value.get(value).map_or_else(Vec::new, |ks| {
            ks.iter().map(String::as_str).collect()
        })
    }

    /// Batched lookup with a store-side predicate over `(key, value)`:
    /// one simulated round trip that returns only matching entries, plus
    /// the keys that exist but fail the predicate. When `value_eq` is
    /// supplied the membership test is served from the secondary value
    /// index instead of evaluating the predicate per entry.
    pub fn multi_get_where(
        &self,
        keys: &[&str],
        value_eq: Option<&str>,
        pred: &dyn Fn(&str, &str) -> bool,
    ) -> (Vec<(String, String)>, Vec<String>) {
        let mut matched = Vec::new();
        let mut rejected = Vec::new();
        for k in keys {
            let Some(v) = self.map.get(*k) else { continue };
            let hit = match value_eq {
                Some(want) => {
                    self.by_value.get(want).is_some_and(|ks| ks.contains(*k))
                }
                None => pred(k, v),
            };
            if hit {
                matched.push(((*k).to_owned(), v.clone()));
            } else {
                rejected.push((*k).to_owned());
            }
        }
        (matched, rejected)
    }

    /// Range scan over keys with the given prefix, optionally capped.
    pub fn scan_prefix(&self, prefix: &str, count: Option<usize>) -> Vec<(String, String)> {
        let iter = self
            .map
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()));
        match count {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }

    /// Glob matching over all keys (`*` any run, `?` one char), like Redis
    /// `KEYS`. O(n) — provided for completeness and tooling, not hot paths.
    pub fn keys_glob(&self, pattern: &str) -> Vec<(String, String)> {
        self.map
            .iter()
            .filter(|(k, _)| glob_match(pattern, k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Parses and executes a command line.
    pub fn execute(&mut self, command: &str) -> Result<Reply> {
        let args = tokenize(command)?;
        let Some((cmd, rest)) = args.split_first() else {
            return Err(KvError::Syntax("empty command".into()));
        };
        let arity = |ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(KvError::Arity { command: cmd.to_uppercase() })
            }
        };
        match cmd.to_uppercase().as_str() {
            "SET" => {
                arity(rest.len() == 2)?;
                self.set(rest[0].clone(), rest[1].clone());
                Ok(Reply::Ok)
            }
            "GET" => {
                arity(rest.len() == 1)?;
                Ok(Reply::Value(self.get(&rest[0]).map(str::to_owned)))
            }
            "MGET" => {
                arity(!rest.is_empty())?;
                let keys: Vec<&str> = rest.iter().map(String::as_str).collect();
                Ok(Reply::Pairs(self.multi_get(&keys)))
            }
            "DEL" => {
                arity(!rest.is_empty())?;
                let n = rest.iter().filter(|k| self.delete(k)).count();
                Ok(Reply::Int(n as i64))
            }
            "EXISTS" => {
                arity(rest.len() == 1)?;
                Ok(Reply::Int(i64::from(self.get(&rest[0]).is_some())))
            }
            "DBSIZE" => {
                arity(rest.is_empty())?;
                Ok(Reply::Int(self.len() as i64))
            }
            "SCAN" => {
                let (prefix, count) = match rest {
                    [p] => (p, None),
                    [p, kw, n] if kw.eq_ignore_ascii_case("COUNT") => {
                        let n: usize = n
                            .parse()
                            .map_err(|_| KvError::Syntax("COUNT requires an integer".into()))?;
                        (p, Some(n))
                    }
                    _ => return Err(KvError::Arity { command: "SCAN".into() }),
                };
                Ok(Reply::Pairs(self.scan_prefix(prefix, count)))
            }
            "KEYS" => {
                arity(rest.len() == 1)?;
                Ok(Reply::Pairs(self.keys_glob(&rest[0])))
            }
            other => Err(KvError::UnknownCommand(other.to_owned())),
        }
    }
}

impl KvStore {
    /// Seedable population hook for the simulation harness (`quepa-check`):
    /// a store holding keys `k0..k{n-1}` whose values are derived from
    /// `seed` alone by pure 64-bit arithmetic, so the populated store is
    /// bit-identical across hosts and runs.
    pub fn populate_seeded(name: impl Into<String>, seed: u64, n: usize) -> KvStore {
        let mut store = KvStore::new(name);
        for i in 0..n {
            store.set(format!("k{i}"), format!("v{:016x}", seed_mix(seed, i as u64)));
        }
        store
    }
}

/// splitmix64 finalizer over two words — the harness-wide convention for
/// deriving per-object values from a seed.
fn seed_mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Splits a command line into tokens; double quotes group, `\"` escapes.
fn tokenize(line: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = String::new();
    // Distinguishes "no token in progress" from "empty quoted token".
    let mut in_token = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            c if c.is_whitespace() => {
                if in_token {
                    out.push(std::mem::take(&mut cur));
                    in_token = false;
                }
            }
            '"' => {
                in_token = true;
                loop {
                    match chars.next() {
                        None => return Err(KvError::Syntax("unterminated quote".into())),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => cur.push('"'),
                            Some('\\') => cur.push('\\'),
                            Some(x) => {
                                cur.push('\\');
                                cur.push(x);
                            }
                            None => return Err(KvError::Syntax("dangling escape".into())),
                        },
                        Some(x) => cur.push(x),
                    }
                }
                // Quoted token ends at the closing quote even if glued to
                // the next char; push on whitespace as usual.
            }
            c => {
                in_token = true;
                cur.push(c);
            }
        }
    }
    if in_token {
        out.push(cur);
    }
    Ok(out)
}

/// Redis-style glob: `*` matches any run, `?` one char; everything else is
/// literal. Case-sensitive (Redis keys are binary-safe).
fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn discounts() -> KvStore {
        let mut kv = KvStore::new("discount");
        kv.set("k1:cure:wish", "40%");
        kv.set("k2:cure:faith", "10%");
        kv.set("k3:radiohead:ok", "5%");
        kv
    }

    #[test]
    fn set_get_del() {
        let mut kv = discounts();
        assert_eq!(kv.get("k1:cure:wish"), Some("40%"));
        assert_eq!(kv.get("missing"), None);
        assert_eq!(kv.set("k1:cure:wish", "45%"), Some("40%".into()));
        assert!(kv.delete("k1:cure:wish"));
        assert!(!kv.delete("k1:cure:wish"));
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let mut kv = KvStore::new("d");
        kv.set("a", "x");
        kv.set("b", "x");
        kv.set("c", "y");
        assert_eq!(kv.keys_with_value("x"), vec!["a", "b"]);
        // Overwrite moves the key between value buckets.
        kv.set("a", "y");
        assert_eq!(kv.keys_with_value("x"), vec!["b"]);
        assert_eq!(kv.keys_with_value("y"), vec!["a", "c"]);
        // Same-value overwrite keeps the entry.
        kv.set("b", "x");
        assert_eq!(kv.keys_with_value("x"), vec!["b"]);
        kv.delete("b");
        assert!(kv.keys_with_value("x").is_empty());
    }

    #[test]
    fn multi_get_where_splits_matched_and_rejected() {
        let kv = discounts();
        let (m, r) = kv.multi_get_where(
            &["k1:cure:wish", "nope", "k2:cure:faith"],
            None,
            &|_, v| v == "40%",
        );
        assert_eq!(m, vec![("k1:cure:wish".to_owned(), "40%".to_owned())]);
        assert_eq!(r, vec!["k2:cure:faith".to_owned()], "missing keys are skipped, not rejected");
        // Index-served equality agrees with the predicate path.
        let (m2, r2) = kv.multi_get_where(
            &["k1:cure:wish", "nope", "k2:cure:faith"],
            Some("40%"),
            &|_, _| unreachable!("index path must not call the predicate"),
        );
        assert_eq!((m, r), (m2, r2));
    }

    #[test]
    fn multi_get_skips_missing() {
        let kv = discounts();
        let got = kv.multi_get(&["k3:radiohead:ok", "nope", "k2:cure:faith"]);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_prefix_is_ordered() {
        let kv = discounts();
        let hits = kv.scan_prefix("k", None);
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(kv.scan_prefix("k1", None).len(), 1);
        assert_eq!(kv.scan_prefix("k", Some(2)).len(), 2);
        assert_eq!(kv.scan_prefix("zz", None).len(), 0);
    }

    #[test]
    fn glob() {
        assert!(glob_match("k?:cure:*", "k1:cure:wish"));
        assert!(!glob_match("k?:cure:*", "k10:cure:wish"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*wish", "k1:cure:wish"));
        assert!(!glob_match("Wish", "wish"), "case-sensitive");
    }

    #[test]
    fn command_language() {
        let mut kv = KvStore::new("d");
        assert_eq!(kv.execute("SET a 1").unwrap(), Reply::Ok);
        assert_eq!(kv.execute("GET a").unwrap(), Reply::Value(Some("1".into())));
        assert_eq!(kv.execute("GET b").unwrap(), Reply::Value(None));
        assert_eq!(kv.execute("EXISTS a").unwrap(), Reply::Int(1));
        assert_eq!(kv.execute("set b 2").unwrap(), Reply::Ok, "case-insensitive verbs");
        assert_eq!(kv.execute("DBSIZE").unwrap(), Reply::Int(2));
        assert_eq!(
            kv.execute("MGET a b c").unwrap(),
            Reply::Pairs(vec![("a".into(), "1".into()), ("b".into(), "2".into()),])
        );
        assert_eq!(kv.execute("DEL a b zz").unwrap(), Reply::Int(2));
    }

    #[test]
    fn quoted_values() {
        let mut kv = KvStore::new("d");
        kv.execute(r#"SET greeting "hello \"world\"""#).unwrap();
        assert_eq!(kv.get("greeting"), Some(r#"hello "world""#));
    }

    #[test]
    fn scan_command_forms() {
        let mut kv = discounts();
        assert_eq!(
            kv.execute("SCAN k COUNT 2").unwrap(),
            Reply::Pairs(vec![
                ("k1:cure:wish".into(), "40%".into()),
                ("k2:cure:faith".into(), "10%".into()),
            ])
        );
        assert!(kv.execute("SCAN").is_err());
        assert!(kv.execute("SCAN k COUNT x").is_err());
    }

    #[test]
    fn keys_command() {
        let mut kv = discounts();
        let Reply::Pairs(hits) = kv.execute("KEYS *cure*").unwrap() else { panic!() };
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn errors() {
        let mut kv = KvStore::new("d");
        assert!(matches!(kv.execute("FLUSHALL"), Err(KvError::UnknownCommand(_))));
        assert!(matches!(kv.execute("GET"), Err(KvError::Arity { .. })));
        assert!(matches!(kv.execute("SET a"), Err(KvError::Arity { .. })));
        assert!(matches!(kv.execute(""), Err(KvError::Syntax(_))));
        assert!(matches!(kv.execute("GET \"unterminated"), Err(KvError::Syntax(_))));
    }
}
