//! Property tests: the graph store's BFS against a naive reference.

use std::collections::HashSet;

use proptest::prelude::*;
use quepa_graphstore::GraphDb;
use quepa_pdm::Value;

fn build(n: usize, edges: &[(u8, u8)]) -> GraphDb {
    let mut g = GraphDb::new("g");
    for i in 0..n {
        g.add_node(&format!("n{i}"), "Node", [("seq", Value::Int(i as i64))]).unwrap();
    }
    for &(a, b) in edges {
        g.add_edge(&format!("n{}", a as usize % n), &format!("n{}", b as usize % n), "E").unwrap();
    }
    g
}

/// Naive reference: BFS by repeated neighbor expansion.
fn naive_reachable(
    edges: &[(usize, usize)],
    start: usize,
    min: usize,
    max: usize,
    undirected: bool,
) -> HashSet<usize> {
    let mut seen = HashSet::from([start]);
    let mut frontier = vec![start];
    let mut out = HashSet::new();
    for depth in 1..=max {
        let mut next = Vec::new();
        for &u in &frontier {
            for &(a, b) in edges {
                let hops: Vec<usize> = if undirected {
                    [(a, b), (b, a)].iter().filter(|&&(x, _)| x == u).map(|&(_, y)| y).collect()
                } else if a == u {
                    vec![b]
                } else {
                    vec![]
                };
                for v in hops {
                    if seen.insert(v) {
                        next.push(v);
                        if depth >= min {
                            out.insert(v);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #[test]
    fn reachable_matches_reference(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..30),
        start in 0u8..10,
        min in 1usize..3,
        extra in 0usize..3,
        undirected in any::<bool>(),
    ) {
        let n = 10usize;
        let max = min + extra;
        let g = build(n, &edges);
        let norm_edges: Vec<(usize, usize)> =
            edges.iter().map(|&(a, b)| (a as usize % n, b as usize % n)).collect();
        let start = start as usize % n;
        let got: HashSet<usize> = g
            .reachable(&format!("n{start}"), Some("E"), min, max, undirected)
            .unwrap()
            .into_iter()
            .map(|node| node.properties["seq"].as_int().unwrap() as usize)
            .collect();
        let want = naive_reachable(&norm_edges, start, min, max, undirected);
        prop_assert_eq!(got, want);
    }

    /// Cypher `RETURN n` with a seq predicate matches manual filtering.
    #[test]
    fn query_matches_filter(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..15),
        threshold in 0i64..10,
    ) {
        let g = build(10, &edges);
        let got = g
            .query(&format!("MATCH (n:Node) WHERE n.seq < {threshold} RETURN n"))
            .unwrap()
            .len();
        prop_assert_eq!(got, threshold.max(0) as usize);
    }
}
