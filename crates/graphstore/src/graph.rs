//! Property-graph storage: nodes, labelled edges, adjacency.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use quepa_pdm::Value;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors of the graph store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node with this id already exists.
    DuplicateNode(String),
    /// The referenced node does not exist.
    UnknownNode(String),
    /// Malformed query text.
    Syntax(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNode(id) => write!(f, "duplicate node id: {id}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node id: {id}"),
            GraphError::Syntax(m) => write!(f, "cypher syntax error: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Node properties.
pub type PropertyMap = BTreeMap<String, Value>;

/// A node of the property graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node id (unique in the graph).
    pub id: String,
    /// The node's label (one label per node in this engine).
    pub label: String,
    /// The node's properties.
    pub properties: PropertyMap,
}

impl Node {
    /// Renders the node (id, label, properties) as a single PDM value, the
    /// form the polystore connector hands to the augmenter.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Object(self.properties.clone());
        v.insert("_id", Value::str(self.id.clone()));
        v.insert("_label", Value::str(self.label.clone()));
        v
    }
}

#[derive(Debug, Clone, Default)]
struct Adjacency {
    /// (edge type, target node slot).
    out: Vec<(String, usize)>,
    /// (edge type, source node slot).
    incoming: Vec<(String, usize)>,
}

/// An embedded property-graph database.
#[derive(Debug, Clone)]
pub struct GraphDb {
    name: String,
    nodes: Vec<Node>,
    adjacency: Vec<Adjacency>,
    by_id: HashMap<String, usize>,
    by_label: HashMap<String, Vec<usize>>,
    edge_count: usize,
    tombstones: usize,
}

impl GraphDb {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        GraphDb {
            name: name.into(),
            nodes: Vec::new(),
            adjacency: Vec::new(),
            by_id: HashMap::new(),
            by_label: HashMap::new(),
            edge_count: 0,
            tombstones: 0,
        }
    }

    /// The graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.tombstones
    }

    /// Number of (directed) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a node.
    pub fn add_node<I, K>(&mut self, id: &str, label: &str, properties: I) -> Result<()>
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        if self.by_id.contains_key(id) {
            return Err(GraphError::DuplicateNode(id.to_owned()));
        }
        let slot = self.nodes.len();
        self.nodes.push(Node {
            id: id.to_owned(),
            label: label.to_owned(),
            properties: properties.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        });
        self.adjacency.push(Adjacency::default());
        self.by_id.insert(id.to_owned(), slot);
        self.by_label.entry(label.to_owned()).or_default().push(slot);
        Ok(())
    }

    /// Adds a directed edge of the given type.
    pub fn add_edge(&mut self, from: &str, to: &str, edge_type: &str) -> Result<()> {
        let f = self.slot(from)?;
        let t = self.slot(to)?;
        self.adjacency[f].out.push((edge_type.to_owned(), t));
        self.adjacency[t].incoming.push((edge_type.to_owned(), f));
        self.edge_count += 1;
        Ok(())
    }

    fn slot(&self, id: &str) -> Result<usize> {
        self.by_id.get(id).copied().ok_or_else(|| GraphError::UnknownNode(id.to_owned()))
    }

    /// Point lookup by node id.
    pub fn get(&self, id: &str) -> Option<&Node> {
        self.by_id.get(id).map(|&slot| &self.nodes[slot])
    }

    /// Removes a node and all its incident edges; returns whether it
    /// existed. Slots are tombstoned (the label index and adjacency lists
    /// skip removed nodes via `by_id`).
    pub fn remove_node(&mut self, id: &str) -> bool {
        let Some(slot) = self.by_id.remove(id) else { return false };
        // Remove this node from its label bucket.
        let label = self.nodes[slot].label.clone();
        if let Some(bucket) = self.by_label.get_mut(&label) {
            bucket.retain(|&s| s != slot);
        }
        // Drop edges touching the node from both directions' lists.
        let out_edges = std::mem::take(&mut self.adjacency[slot].out);
        for (_, target) in &out_edges {
            self.adjacency[*target].incoming.retain(|(_, s)| *s != slot);
        }
        let in_edges = std::mem::take(&mut self.adjacency[slot].incoming);
        for (_, source) in &in_edges {
            self.adjacency[*source].out.retain(|(_, t)| *t != slot);
        }
        self.edge_count -= out_edges.len() + in_edges.len();
        // Tombstone: blank the node so label/property scans skip it.
        self.nodes[slot].id.clear();
        self.nodes[slot].properties.clear();
        self.tombstones += 1;
        true
    }

    /// Batched point lookup; missing ids are skipped.
    pub fn multi_get(&self, ids: &[&str]) -> Vec<&Node> {
        ids.iter().filter_map(|id| self.get(id)).collect()
    }

    /// Batched point lookup with a store-side node predicate: one
    /// simulated round trip that returns only the nodes matching `pred`,
    /// plus the ids whose node exists but fails it (so callers can tell
    /// filtered-out apart from missing). This is the traversal-filter
    /// form the graph query language applies to `MATCH … WHERE`.
    pub fn multi_get_where<'a>(
        &'a self,
        ids: &[&str],
        pred: &dyn Fn(&Node) -> bool,
    ) -> (Vec<&'a Node>, Vec<String>) {
        let mut matched = Vec::new();
        let mut rejected = Vec::new();
        for id in ids {
            let Some(node) = self.get(id) else { continue };
            if pred(node) {
                matched.push(node);
            } else {
                rejected.push((*id).to_owned());
            }
        }
        (matched, rejected)
    }

    /// Out-neighbours of a node following edges of `edge_type` (or any type
    /// if `None`).
    pub fn neighbors(&self, id: &str, edge_type: Option<&str>) -> Result<Vec<&Node>> {
        let slot = self.slot(id)?;
        Ok(self.adjacency[slot]
            .out
            .iter()
            .filter(|(t, _)| edge_type.is_none_or(|want| want == t))
            .map(|(_, target)| &self.nodes[*target])
            .collect())
    }

    /// Nodes reachable from `id` within `min..=max` hops along edges of
    /// `edge_type`, breadth-first, excluding the start node. `undirected`
    /// additionally follows incoming edges.
    pub fn reachable(
        &self,
        id: &str,
        edge_type: Option<&str>,
        min: usize,
        max: usize,
        undirected: bool,
    ) -> Result<Vec<&Node>> {
        let start = self.slot(id)?;
        let mut seen: HashSet<usize> = HashSet::from([start]);
        let mut frontier = vec![start];
        let mut out = Vec::new();
        for depth in 1..=max {
            let mut next = Vec::new();
            for &slot in &frontier {
                let adj = &self.adjacency[slot];
                let hop_iter =
                    adj.out.iter().chain(if undirected { adj.incoming.iter() } else { [].iter() });
                for (t, target) in hop_iter {
                    if edge_type.is_none_or(|want| want == t) && seen.insert(*target) {
                        next.push(*target);
                        if depth >= min {
                            out.push(&self.nodes[*target]);
                        }
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Ok(out)
    }

    /// Nodes carrying a label.
    pub fn nodes_with_label(&self, label: &str) -> impl Iterator<Item = &Node> {
        self.by_label.get(label).into_iter().flatten().map(|&slot| &self.nodes[slot])
    }

    /// All live nodes.
    pub fn all_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| !n.id.is_empty())
    }

    /// Parses and runs a Cypher-subset query. See [`crate::cypher`].
    pub fn query(&self, text: &str) -> Result<Vec<&Node>> {
        let q = crate::cypher::parse_query(text)?;
        crate::cypher::execute(self, &q)
    }

    /// Seedable population hook for the simulation harness (`quepa-check`):
    /// a graph of `Album` nodes `g0..g{n-1}` with a dense integer `seq`
    /// property, connected in a `SIMILAR` ring, every value derived from
    /// `seed` alone so the graph is bit-identical across hosts and runs.
    pub fn populate_seeded(name: impl Into<String>, seed: u64, n: usize) -> GraphDb {
        let mut db = GraphDb::new(name);
        for i in 0..n {
            db.add_node(
                &format!("g{i}"),
                "Album",
                [
                    ("title", Value::Str(format!("album-{:08x}", seed_mix(seed, i as u64) >> 32))),
                    ("seq", Value::Int(i as i64)),
                ],
            )
            .expect("generated node ids are unique");
        }
        for i in 0..n {
            let j = (i + 1) % n;
            if i != j {
                db.add_edge(&format!("g{i}"), &format!("g{j}"), "SIMILAR")
                    .expect("ring endpoints exist");
            }
        }
        db
    }
}

/// splitmix64 finalizer over two words — the harness-wide convention for
/// deriving per-object values from a seed.
fn seed_mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphDb {
        let mut g = GraphDb::new("similar-items");
        for (id, title) in [("s1", "Apart"), ("s2", "Elise"), ("s3", "Cut"), ("s4", "Open")] {
            g.add_node(id, "Song", [("title", Value::str(title))]).unwrap();
        }
        g.add_edge("s1", "s2", "SIMILAR").unwrap();
        g.add_edge("s2", "s3", "SIMILAR").unwrap();
        g.add_edge("s3", "s4", "COVER").unwrap();
        g
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicate_and_unknown() {
        let mut g = sample();
        assert_eq!(
            g.add_node("s1", "Song", std::iter::empty::<(String, Value)>()),
            Err(GraphError::DuplicateNode("s1".into()))
        );
        assert_eq!(g.add_edge("s1", "zz", "X"), Err(GraphError::UnknownNode("zz".into())));
        assert!(g.neighbors("zz", None).is_err());
    }

    #[test]
    fn neighbors_filtered_by_type() {
        let g = sample();
        let n = g.neighbors("s3", Some("SIMILAR")).unwrap();
        assert!(n.is_empty());
        let n = g.neighbors("s3", Some("COVER")).unwrap();
        assert_eq!(n[0].id, "s4");
        let n = g.neighbors("s3", None).unwrap();
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn reachable_bfs_ranges() {
        let g = sample();
        let ids = |v: Vec<&Node>| v.into_iter().map(|n| n.id.clone()).collect::<Vec<_>>();
        assert_eq!(ids(g.reachable("s1", Some("SIMILAR"), 1, 1, false).unwrap()), vec!["s2"]);
        assert_eq!(ids(g.reachable("s1", Some("SIMILAR"), 1, 2, false).unwrap()), vec!["s2", "s3"]);
        // min=2 excludes the 1-hop neighbour.
        assert_eq!(ids(g.reachable("s1", Some("SIMILAR"), 2, 2, false).unwrap()), vec!["s3"]);
        // Any-type, 3 hops reaches s4 through the COVER edge.
        assert_eq!(ids(g.reachable("s1", None, 3, 3, false).unwrap()), vec!["s4"]);
        // Undirected from s2 reaches s1 as well.
        let mut r = ids(g.reachable("s2", Some("SIMILAR"), 1, 1, true).unwrap());
        r.sort();
        assert_eq!(r, vec!["s1", "s3"]);
    }

    #[test]
    fn bfs_handles_cycles() {
        let mut g = sample();
        g.add_edge("s3", "s1", "SIMILAR").unwrap();
        let r = g.reachable("s1", Some("SIMILAR"), 1, 10, false).unwrap();
        // Never revisits: s2, s3 once each; s1 excluded as start.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn node_to_value() {
        let g = sample();
        let v = g.get("s1").unwrap().to_value();
        assert_eq!(v.get("_id").unwrap().as_str(), Some("s1"));
        assert_eq!(v.get("_label").unwrap().as_str(), Some("Song"));
        assert_eq!(v.get("title").unwrap().as_str(), Some("Apart"));
    }

    #[test]
    fn label_index() {
        let g = sample();
        assert_eq!(g.nodes_with_label("Song").count(), 4);
        assert_eq!(g.nodes_with_label("Album").count(), 0);
    }

    #[test]
    fn multi_get_skips_missing() {
        let g = sample();
        assert_eq!(g.multi_get(&["s1", "zz", "s4"]).len(), 2);
    }
}
