//! # quepa-graphstore — an embedded property-graph store
//!
//! Plays the role Neo4j plays in the paper's Polyphony polystore: the
//! *marketing department* keeps a `similar-items` graph used for
//! recommendations, queried with a Cypher-flavoured pattern language.
//!
//! The supported query subset ([`cypher`]):
//!
//! ```text
//! MATCH (n:Label {prop: lit, …}) [WHERE n.prop op lit [AND …]] RETURN n [LIMIT k]
//! MATCH (n:Label {…})-[:TYPE]->(m) RETURN m [LIMIT k]
//! MATCH (n {…})-[:TYPE*1..3]->(m) RETURN m        // variable-length paths
//! MATCH (n {…})-[:TYPE]-(m) RETURN m              // undirected
//! ```
//!
//! ```
//! use quepa_graphstore::{GraphDb, PropertyMap};
//! use quepa_pdm::Value;
//!
//! let mut g = GraphDb::new("similar-items");
//! g.add_node("s1", "Song", [("title", Value::str("Apart"))]).unwrap();
//! g.add_node("s2", "Song", [("title", Value::str("A Letter to Elise"))]).unwrap();
//! g.add_edge("s1", "s2", "SIMILAR").unwrap();
//! let hits = g.query("MATCH (n:Song {title: 'Apart'})-[:SIMILAR]->(m) RETURN m").unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].id, "s2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cypher;
pub mod graph;

pub use cypher::{parse_query, MatchQuery};
pub use graph::{GraphDb, GraphError, Node, PropertyMap, Result};
