//! A Cypher-flavoured pattern language: parser and executor.
//!
//! Supported shape (one or two node patterns, at most one relationship):
//!
//! ```text
//! MATCH (a:Label {k: lit, …}) [-[:TYPE[*min..max]]->|-(…)-] [(b …)]
//!   [WHERE var.prop op lit [AND …]]
//! RETURN var [LIMIT n]
//! ```
//!
//! `op` is one of `= <> < <= > >= CONTAINS STARTS WITH`.

use quepa_pdm::Value;

use crate::graph::{GraphDb, GraphError, Node, Result};

/// A property/inline-filter comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `CONTAINS` (case-insensitive substring)
    Contains,
    /// `STARTS WITH`
    StartsWith,
}

/// One `var.prop op literal` predicate from the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The pattern variable the predicate constrains.
    pub var: String,
    /// The property name (`id` refers to the node id).
    pub prop: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub value: Value,
}

/// A node pattern `(var:Label {prop: lit})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// The variable name (may be empty for anonymous nodes).
    pub var: String,
    /// Optional label constraint.
    pub label: Option<String>,
    /// Inline equality constraints.
    pub props: Vec<(String, Value)>,
}

/// A relationship pattern between the two node patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Optional edge-type constraint.
    pub edge_type: Option<String>,
    /// Hop range (1..=1 for a plain edge).
    pub min_hops: usize,
    /// Maximum hops.
    pub max_hops: usize,
    /// True when written `-[…]-` (either direction).
    pub undirected: bool,
}

/// A parsed `MATCH … RETURN …` query.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchQuery {
    /// The first (anchor) node pattern.
    pub anchor: NodePattern,
    /// The optional relationship and second pattern.
    pub hop: Option<(RelPattern, NodePattern)>,
    /// WHERE predicates (conjunctive).
    pub predicates: Vec<Predicate>,
    /// Which variable is returned.
    pub return_var: String,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

/// Parses a query.
pub fn parse_query(text: &str) -> Result<MatchQuery> {
    Parser::new(text).parse()
}

/// Executes a parsed query against a graph.
pub fn execute<'g>(g: &'g GraphDb, q: &MatchQuery) -> Result<Vec<&'g Node>> {
    // Candidate anchors: by inline id if present, else by label, else all.
    let id_constraint = q
        .anchor
        .props
        .iter()
        .find(|(k, _)| k == "id")
        .and_then(|(_, v)| v.as_str().map(str::to_owned));
    let anchors: Vec<&Node> = if let Some(id) = id_constraint {
        g.get(&id).into_iter().collect()
    } else if let Some(label) = &q.anchor.label {
        g.nodes_with_label(label).collect()
    } else {
        g.all_nodes().collect()
    };

    let mut out: Vec<&Node> = Vec::new();
    let mut seen: std::collections::HashSet<*const Node> = std::collections::HashSet::new();
    for anchor in anchors {
        if !node_matches(anchor, &q.anchor) {
            continue;
        }
        if !predicates_hold(&q.predicates, &q.anchor.var, anchor) {
            continue;
        }
        match &q.hop {
            None => {
                if q.return_var == q.anchor.var && seen.insert(anchor as *const Node) {
                    out.push(anchor);
                }
            }
            Some((rel, target_pat)) => {
                let reached = g.reachable(
                    &anchor.id,
                    rel.edge_type.as_deref(),
                    rel.min_hops,
                    rel.max_hops,
                    rel.undirected,
                )?;
                for node in reached {
                    if !node_matches(node, target_pat) {
                        continue;
                    }
                    if !predicates_hold(&q.predicates, &target_pat.var, node) {
                        continue;
                    }
                    let returned: &Node =
                        if q.return_var == target_pat.var { node } else { anchor };
                    if seen.insert(returned as *const Node) {
                        out.push(returned);
                    }
                }
            }
        }
        if let Some(limit) = q.limit {
            if out.len() >= limit {
                out.truncate(limit);
                return Ok(out);
            }
        }
    }
    if let Some(limit) = q.limit {
        out.truncate(limit);
    }
    Ok(out)
}

fn node_matches(node: &Node, pat: &NodePattern) -> bool {
    if let Some(label) = &pat.label {
        if &node.label != label {
            return false;
        }
    }
    pat.props.iter().all(|(k, want)| {
        if k == "id" {
            want.as_str() == Some(node.id.as_str())
        } else {
            node.properties.get(k).is_some_and(|have| value_eq(have, want))
        }
    })
}

fn predicates_hold(preds: &[Predicate], var: &str, node: &Node) -> bool {
    preds.iter().filter(|p| p.var == var).all(|p| {
        let id_value;
        let have = if p.prop == "id" {
            id_value = Value::str(node.id.clone());
            Some(&id_value)
        } else {
            node.properties.get(&p.prop)
        };
        let Some(have) = have else { return false };
        match p.op {
            CmpOp::Eq => value_eq(have, &p.value),
            CmpOp::Ne => !value_eq(have, &p.value),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let comparable = (have.as_f64().is_some() && p.value.as_f64().is_some())
                    || (have.as_str().is_some() && p.value.as_str().is_some());
                if !comparable {
                    return false;
                }
                let ord = have.total_cmp(&p.value);
                match p.op {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                }
            }
            CmpOp::Contains => match (have.as_str(), p.value.as_str()) {
                (Some(h), Some(n)) => h.to_lowercase().contains(&n.to_lowercase()),
                _ => false,
            },
            CmpOp::StartsWith => match (have.as_str(), p.value.as_str()) {
                (Some(h), Some(n)) => h.starts_with(n),
                _ => false,
            },
        }
    })
}

fn value_eq(a: &Value, b: &Value) -> bool {
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        return x == y;
    }
    a == b
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { s, pos: 0 }
    }

    fn err(&self, m: impl Into<String>) -> GraphError {
        GraphError::Syntax(format!("{} (at byte {})", m.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while self.s[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.s[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            // Must not be a prefix of a longer identifier.
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect(&mut self, tok: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.s[self.pos..]
            .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            Err(self.err("expected identifier"))
        } else {
            Ok(self.s[start..self.pos].to_owned())
        }
    }

    fn integer(&mut self) -> Result<usize> {
        self.skip_ws();
        let start = self.pos;
        while self.s[self.pos..].starts_with(|c: char| c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.s[start..self.pos].parse().map_err(|_| self.err("expected integer"))
    }

    fn literal(&mut self) -> Result<Value> {
        self.skip_ws();
        if self.eat("'") {
            let start = self.pos;
            while self.pos < self.s.len() && !self.s[self.pos..].starts_with('\'') {
                self.pos += self.s[self.pos..].chars().next().expect("in bounds").len_utf8();
            }
            if self.pos >= self.s.len() {
                return Err(self.err("unterminated string literal"));
            }
            let text = self.s[start..self.pos].to_owned();
            self.pos += 1;
            return Ok(Value::Str(text));
        }
        if self.eat_keyword("true") {
            return Ok(Value::Bool(true));
        }
        if self.eat_keyword("false") {
            return Ok(Value::Bool(false));
        }
        if self.eat_keyword("null") {
            return Ok(Value::Null);
        }
        // Number.
        let start = self.pos;
        let _ = self.eat("-");
        while self.s[self.pos..].starts_with(|c: char| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.s[self.pos..].starts_with('.')
            && self.s[self.pos + 1..].starts_with(|c: char| c.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while self.s[self.pos..].starts_with(|c: char| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.s[start..self.pos];
        if text.is_empty() || text == "-" {
            return Err(self.err("expected literal"));
        }
        if is_float {
            Ok(Value::Float(text.parse().map_err(|_| self.err("bad float"))?))
        } else {
            Ok(Value::Int(text.parse().map_err(|_| self.err("bad int"))?))
        }
    }

    fn parse(mut self) -> Result<MatchQuery> {
        if !self.eat_keyword("MATCH") {
            return Err(self.err("expected MATCH"));
        }
        let anchor = self.node_pattern()?;
        let hop = if self.eat("<-") {
            // Reversed edge: normalise by swapping endpoints later; keep it
            // simple by rejecting for now — the workload uses -> and -.
            return Err(self.err("left-pointing relationships are not supported"));
        } else if self.eat("-") {
            let rel = self.rel_pattern()?;
            let directed = self.eat("->");
            if !directed {
                self.expect("-")?;
            }
            let target = self.node_pattern()?;
            Some((
                RelPattern {
                    edge_type: rel.0,
                    min_hops: rel.1,
                    max_hops: rel.2,
                    undirected: !directed,
                },
                target,
            ))
        } else {
            None
        };

        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }

        if !self.eat_keyword("RETURN") {
            return Err(self.err("expected RETURN"));
        }
        let return_var = self.ident()?;
        let limit = if self.eat_keyword("LIMIT") { Some(self.integer()?) } else { None };
        self.skip_ws();
        if self.pos != self.s.len() {
            return Err(self.err("trailing characters"));
        }

        // Semantic check: the returned variable must be bound.
        let bound_anchor = &anchor.var;
        let bound_target = hop.as_ref().map(|(_, t)| t.var.as_str());
        if return_var != *bound_anchor && Some(return_var.as_str()) != bound_target {
            return Err(GraphError::Syntax(format!("unbound RETURN variable `{return_var}`")));
        }
        Ok(MatchQuery { anchor, hop, predicates, return_var, limit })
    }

    /// `(var[:Label][{k: lit, …}])`
    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect("(")?;
        let mut pat = NodePattern::default();
        self.skip_ws();
        if !self.s[self.pos..].starts_with([':', '{', ')']) {
            pat.var = self.ident()?;
        }
        if self.eat(":") {
            pat.label = Some(self.ident()?);
        }
        self.skip_ws();
        if self.eat("{") {
            loop {
                let key = self.ident()?;
                self.expect(":")?;
                let value = self.literal()?;
                pat.props.push((key, value));
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("}")?;
        }
        self.expect(")")?;
        Ok(pat)
    }

    /// `[:TYPE[*min..max]]` — returns (type, min, max).
    fn rel_pattern(&mut self) -> Result<(Option<String>, usize, usize)> {
        if !self.eat("[") {
            // Bare `-` or `--`: any type, one hop.
            return Ok((None, 1, 1));
        }
        let edge_type = if self.eat(":") { Some(self.ident()?) } else { None };
        let (min, max) = if self.eat("*") {
            self.skip_ws();
            if self.s[self.pos..].starts_with(|c: char| c.is_ascii_digit()) {
                let min = self.integer()?;
                if self.eat("..") {
                    let max = self.integer()?;
                    (min, max)
                } else {
                    (min, min)
                }
            } else {
                // Bare `*`: the engine caps unbounded traversals at 8 hops,
                // plenty for the workloads and safe on cyclic graphs.
                (1, 8)
            }
        } else {
            (1, 1)
        };
        if min == 0 || max < min {
            return Err(self.err("invalid hop range"));
        }
        self.expect("]")?;
        Ok((edge_type, min, max))
    }

    /// `var.prop op literal`
    fn predicate(&mut self) -> Result<Predicate> {
        let var = self.ident()?;
        self.expect(".")?;
        let prop = self.ident()?;
        self.skip_ws();
        let op = if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("<>") {
            CmpOp::Ne
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else if self.eat("=") {
            CmpOp::Eq
        } else if self.eat_keyword("CONTAINS") {
            CmpOp::Contains
        } else if self.eat_keyword("STARTS") {
            if !self.eat_keyword("WITH") {
                return Err(self.err("expected WITH after STARTS"));
            }
            CmpOp::StartsWith
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let value = self.literal()?;
        Ok(Predicate { var, prop, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphDb {
        let mut g = GraphDb::new("similar-items");
        for (id, title, plays) in
            [("s1", "Apart", 100), ("s2", "Elise", 250), ("s3", "Cut", 50), ("s4", "Open", 10)]
        {
            g.add_node(id, "Song", [("title", Value::str(title)), ("plays", Value::Int(plays))])
                .unwrap();
        }
        g.add_node("a1", "Album", [("title", Value::str("Wish"))]).unwrap();
        g.add_edge("s1", "s2", "SIMILAR").unwrap();
        g.add_edge("s2", "s3", "SIMILAR").unwrap();
        g.add_edge("s3", "s4", "SIMILAR").unwrap();
        g.add_edge("a1", "s1", "HAS_TRACK").unwrap();
        g
    }

    fn ids(nodes: Vec<&Node>) -> Vec<String> {
        nodes.into_iter().map(|n| n.id.clone()).collect()
    }

    #[test]
    fn match_by_label() {
        let g = sample();
        assert_eq!(g.query("MATCH (n:Song) RETURN n").unwrap().len(), 4);
        assert_eq!(g.query("MATCH (n:Album) RETURN n").unwrap().len(), 1);
        assert_eq!(g.query("MATCH (n) RETURN n").unwrap().len(), 5);
    }

    #[test]
    fn match_inline_props() {
        let g = sample();
        let r = g.query("MATCH (n:Song {title: 'Apart'}) RETURN n").unwrap();
        assert_eq!(ids(r), vec!["s1"]);
        let r = g.query("MATCH (n {id: 's3'}) RETURN n").unwrap();
        assert_eq!(ids(r), vec!["s3"]);
    }

    #[test]
    fn where_clause() {
        let g = sample();
        let r = g.query("MATCH (n:Song) WHERE n.plays >= 100 RETURN n").unwrap();
        assert_eq!(r.len(), 2);
        let r = g
            .query("MATCH (n:Song) WHERE n.plays > 40 AND n.title CONTAINS 'cu' RETURN n")
            .unwrap();
        assert_eq!(ids(r), vec!["s3"]);
        let r = g.query("MATCH (n:Song) WHERE n.title STARTS WITH 'A' RETURN n").unwrap();
        assert_eq!(ids(r), vec!["s1"]);
    }

    #[test]
    fn single_hop() {
        let g = sample();
        let r = g.query("MATCH (n {id: 's1'})-[:SIMILAR]->(m) RETURN m").unwrap();
        assert_eq!(ids(r), vec!["s2"]);
        // Any edge type.
        let r = g.query("MATCH (n {id: 'a1'})-->(m) RETURN m").unwrap();
        assert_eq!(ids(r), vec!["s1"]);
    }

    #[test]
    fn variable_length() {
        let g = sample();
        let r = g.query("MATCH (n {id: 's1'})-[:SIMILAR*1..2]->(m) RETURN m").unwrap();
        assert_eq!(ids(r), vec!["s2", "s3"]);
        let r = g.query("MATCH (n {id: 's1'})-[:SIMILAR*2..3]->(m) RETURN m").unwrap();
        assert_eq!(ids(r), vec!["s3", "s4"]);
        let r = g.query("MATCH (n {id: 's1'})-[:SIMILAR*]->(m) RETURN m").unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn undirected_hop() {
        let g = sample();
        let mut r = ids(g.query("MATCH (n {id: 's2'})-[:SIMILAR]-(m) RETURN m").unwrap());
        r.sort();
        assert_eq!(r, vec!["s1", "s3"]);
    }

    #[test]
    fn where_on_target_var() {
        let g = sample();
        let r = g.query("MATCH (n:Album)-[:HAS_TRACK]->(m) WHERE m.plays >= 100 RETURN m").unwrap();
        assert_eq!(ids(r), vec!["s1"]);
    }

    #[test]
    fn return_anchor_of_hop() {
        let g = sample();
        // Which albums have a track? Return the album.
        let r = g.query("MATCH (n:Album)-[:HAS_TRACK]->(m) RETURN n").unwrap();
        assert_eq!(ids(r), vec!["a1"]);
    }

    #[test]
    fn limit() {
        let g = sample();
        assert_eq!(g.query("MATCH (n:Song) RETURN n LIMIT 2").unwrap().len(), 2);
        assert_eq!(g.query("MATCH (n:Song) RETURN n LIMIT 0").unwrap().len(), 0);
    }

    #[test]
    fn dedup_across_anchors() {
        let g = sample();
        // Both s1 and s2 reach s3 within 2 hops; s3 must appear once.
        let r = g.query("MATCH (n:Song)-[:SIMILAR*1..2]->(m {id: 's3'}) RETURN m").unwrap();
        assert_eq!(ids(r), vec!["s3"]);
    }

    #[test]
    fn syntax_errors() {
        let g = sample();
        for q in [
            "FETCH (n) RETURN n",
            "MATCH n RETURN n",
            "MATCH (n RETURN n",
            "MATCH (n) RETURN",
            "MATCH (n) RETURN m",
            "MATCH (n)-[:X*0..2]->(m) RETURN m",
            "MATCH (n)-[:X*3..2]->(m) RETURN m",
            "MATCH (n) WHERE n.plays ~ 3 RETURN n",
            "MATCH (n) RETURN n LIMIT x",
            "MATCH (n) RETURN n extra",
            "MATCH (n {title: 'unterminated}) RETURN n",
            "MATCH (a)<-[:X]-(b) RETURN a",
        ] {
            assert!(g.query(q).is_err(), "should fail: {q}");
        }
    }

    #[test]
    fn keyword_case_insensitive() {
        let g = sample();
        let r = g.query("match (n:Song) where n.plays > 200 return n limit 5").unwrap();
        assert_eq!(ids(r), vec!["s2"]);
    }
}
