//! Adversarial topology families: named, seeded p-relation shapes built
//! to break the assumptions uniform workloads leave untested.
//!
//! The music workload wires its A' index with *uniform density* — every
//! object has a comparable neighborhood, so augmentation cost is flat
//! across seeds and scales. Real polystore link graphs are not like
//! that, and each family here reproduces one hostile departure:
//!
//! * [`TopologyFamily::Supernode`] — one hub object carrying the
//!   configured number of p-relations (10⁵ at bench scale). Augmenting
//!   anywhere near the hub fans out over the entire satellite set in a
//!   single hop; the family stresses frontier growth, scratch sizing and
//!   the cost of removing the best-connected object in the index.
//! * [`TopologyFamily::DeepChain`] — parallel p-relation chains of depth
//!   [`DEEP_CHAIN_DEPTH`] (≥64). Multi-level augmentation walks genuine
//!   long paths instead of bottoming out in a shallow neighborhood; the
//!   family stresses per-hop bookkeeping and distance accounting.
//! * [`TopologyFamily::NearDup`] — clusters of [`NEAR_DUP_CLUSTER`]
//!   near-identical objects joined by identity chains. Identity inserts
//!   materialize the transitive clique, so every cluster multiplies its
//!   edges quadratically at build time; the family stresses linkage /
//!   clique materialization and the entry-count blowup it causes.
//!
//! Generation is pure: `(family, scale, seed)` fully determines the
//! topology, independent of the music generator's component streams (the
//! golden fingerprints over there must not move when families evolve).

use quepa_aindex::AIndex;
use quepa_pdm::{GlobalKey, Probability};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Depth of every deep-chain path (the family's defining floor).
pub const DEEP_CHAIN_DEPTH: usize = 64;

/// Objects per near-duplicate cluster. An identity chain over a cluster
/// materializes the full clique: `k·(k−1)/2` edges for `k` members.
pub const NEAR_DUP_CLUSTER: usize = 8;

/// Longest run of consecutive identity edges a deep chain may contain —
/// keeps clique materialization a bounded local effect so the chain's
/// cost stays in its *depth*, not in accidental cliques.
const DEEP_CHAIN_MAX_IDENTITY_RUN: usize = 3;

/// A named adversarial topology family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TopologyFamily {
    /// One hub object with `scale` p-relations.
    Supernode,
    /// `scale / DEEP_CHAIN_DEPTH` parallel chains of depth ≥64.
    DeepChain,
    /// `scale / NEAR_DUP_CLUSTER` identity-clique clusters on a matching
    /// backbone.
    NearDup,
}

impl TopologyFamily {
    /// Every family, in catalog order.
    pub const ALL: [TopologyFamily; 3] =
        [TopologyFamily::Supernode, TopologyFamily::DeepChain, TopologyFamily::NearDup];

    /// The stable name used in scenario files, baselines and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            TopologyFamily::Supernode => "supernode",
            TopologyFamily::DeepChain => "deep-chain",
            TopologyFamily::NearDup => "near-dup",
        }
    }

    /// Parses a [`name`](TopologyFamily::name) back.
    pub fn parse(name: &str) -> Option<TopologyFamily> {
        TopologyFamily::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Generates the family's topology at roughly `scale` explicit
    /// p-relations, fully determined by `(self, scale, seed)`.
    pub fn generate(self, scale: usize, seed: u64) -> HostileTopology {
        match self {
            TopologyFamily::Supernode => supernode(scale, seed),
            TopologyFamily::DeepChain => deep_chain(scale, seed),
            TopologyFamily::NearDup => near_dup(scale, seed),
        }
    }
}

/// One p-relation between topology-local object indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostileRelation {
    /// First endpoint (topology-local object index).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Identity (true) or matching (false).
    pub identity: bool,
    /// Probability in thousandths (1..=1000).
    pub prob_millis: u32,
}

/// A generated adversarial topology: objects `0..objects` and the
/// explicit p-relations between them. Structure only — callers map the
/// object indices onto stores (the check harness) or intern them
/// directly (the benches, via [`HostileTopology::index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostileTopology {
    /// The family this topology instantiates.
    pub family: TopologyFamily,
    /// The seed it was generated from.
    pub seed: u64,
    /// Total objects (indices `0..objects`).
    pub objects: usize,
    /// The hub object, if the family has one (supernode only).
    pub hub: Option<usize>,
    /// Designated augmentation probes: the objects a benchmark or check
    /// should seed its queries with to hit the family's hostile shape
    /// (the hub, chain heads, cluster representatives).
    pub probes: Vec<usize>,
    /// The explicit p-relations, in insertion order. Identity relations
    /// additionally materialize their transitive cliques on insert.
    pub relations: Vec<HostileRelation>,
}

impl HostileTopology {
    /// The global key of topology-local object `i` when the topology is
    /// interned directly (bench path; the check harness maps indices
    /// onto its own per-store keys instead).
    pub fn key(&self, i: usize) -> GlobalKey {
        GlobalKey::parse_parts("hostile", "objects", format!("o{i}"))
            .expect("hostile keys are well-formed")
    }

    /// Builds the A' index of this topology (bench path).
    pub fn index(&self) -> AIndex {
        let mut index = AIndex::new();
        for rel in &self.relations {
            let a = self.key(rel.a);
            let b = self.key(rel.b);
            let p = Probability::of(rel.prob_millis as f64 / 1000.0);
            if rel.identity {
                index.insert_identity(&a, &b, p);
            } else {
                index.insert_matching(&a, &b, p);
            }
        }
        index
    }

    /// The probe objects as global keys (bench path).
    pub fn probe_keys(&self) -> Vec<GlobalKey> {
        self.probes.iter().map(|&i| self.key(i)).collect()
    }
}

/// One hub (object 0) with `scale` matching spokes to satellites
/// `1..=scale`, plus a sparse sprinkle of disjoint satellite–satellite
/// identity pairs (near-identical leaves under the same hub). The spokes
/// are *matching*, not identity — an identity hub would materialize the
/// O(scale²) clique at build time and the family would measure the
/// materializer, not the traversal.
fn supernode(scale: usize, seed: u64) -> HostileTopology {
    let scale = scale.max(2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut relations = Vec::with_capacity(scale + scale / 32);
    for i in 1..=scale {
        relations.push(HostileRelation {
            a: 0,
            b: i,
            identity: false,
            prob_millis: rng.gen_range(300..=900),
        });
    }
    // Disjoint identity pairs on ~2% of satellites: small cliques of 2
    // that ride the hub's fan-out without compounding it.
    let mut i = 1;
    while i < scale {
        if rng.gen_range(0..100) < 2 {
            relations.push(HostileRelation {
                a: i,
                b: i + 1,
                identity: true,
                prob_millis: rng.gen_range(850..=990),
            });
            i += 2;
        } else {
            i += 1;
        }
    }
    // Probes: the hub plus satellites strided across the spoke range —
    // augmenting from a satellite crosses the hub and fans back out.
    let mut probes = vec![0];
    let stride = (scale / 7).max(1);
    probes.extend((1..=scale).step_by(stride).take(7));
    HostileTopology {
        family: TopologyFamily::Supernode,
        seed,
        objects: scale + 1,
        hub: Some(0),
        probes,
        relations,
    }
}

/// `max(1, scale / DEEP_CHAIN_DEPTH)` parallel chains, each a path of
/// [`DEEP_CHAIN_DEPTH`] p-relations. Mostly matching edges with short
/// identity runs (capped at [`DEEP_CHAIN_MAX_IDENTITY_RUN`]), so the
/// chains are long *paths*, not accidental cliques.
fn deep_chain(scale: usize, seed: u64) -> HostileTopology {
    let depth = DEEP_CHAIN_DEPTH;
    let chains = (scale / depth).max(1);
    let span = depth + 1;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut relations = Vec::with_capacity(chains * depth);
    let mut probes = Vec::with_capacity(chains.min(50));
    for c in 0..chains {
        let base = c * span;
        if probes.len() < 50 {
            probes.push(base);
        }
        let mut identity_run = 0usize;
        for j in 0..depth {
            let identity =
                identity_run < DEEP_CHAIN_MAX_IDENTITY_RUN && rng.gen_range(0..100) < 15;
            identity_run = if identity { identity_run + 1 } else { 0 };
            relations.push(HostileRelation {
                a: base + j,
                b: base + j + 1,
                identity,
                prob_millis: if identity {
                    rng.gen_range(850..=990)
                } else {
                    rng.gen_range(600..=950)
                },
            });
        }
    }
    HostileTopology {
        family: TopologyFamily::DeepChain,
        seed,
        objects: chains * span,
        hub: None,
        probes,
        relations,
    }
}

/// `max(1, scale / NEAR_DUP_CLUSTER)` clusters of [`NEAR_DUP_CLUSTER`]
/// near-identical objects. Each cluster is an identity *chain* whose
/// insertion materializes the full clique — `k·(k−1)/2` edges per
/// cluster — and cluster representatives sit on a matching backbone so
/// augmentation can walk from clique to clique.
fn near_dup(scale: usize, seed: u64) -> HostileTopology {
    let k = NEAR_DUP_CLUSTER;
    let clusters = (scale / k).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut relations = Vec::with_capacity(clusters * k);
    let mut probes = Vec::with_capacity(clusters.min(50));
    let probe_stride = (clusters / 50).max(1);
    for c in 0..clusters {
        let base = c * k;
        if c % probe_stride == 0 && probes.len() < 50 {
            probes.push(base);
        }
        for j in 0..k - 1 {
            relations.push(HostileRelation {
                a: base + j,
                b: base + j + 1,
                identity: true,
                prob_millis: rng.gen_range(900..=995),
            });
        }
        if c + 1 < clusters {
            relations.push(HostileRelation {
                a: base,
                b: base + k,
                identity: false,
                prob_millis: rng.gen_range(400..=800),
            });
        }
    }
    HostileTopology {
        family: TopologyFamily::NearDup,
        seed,
        objects: clusters * k,
        hub: None,
        probes,
        relations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        for family in TopologyFamily::ALL {
            let a = family.generate(1_000, 7);
            let b = family.generate(1_000, 7);
            assert_eq!(a, b, "{}: same seed ⇒ same topology", family.name());
            let c = family.generate(1_000, 8);
            assert_ne!(a, c, "{}: different seed ⇒ different topology", family.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for family in TopologyFamily::ALL {
            assert_eq!(TopologyFamily::parse(family.name()), Some(family));
        }
        assert_eq!(TopologyFamily::parse("uniform"), None);
    }

    #[test]
    fn supernode_hub_carries_the_scale() {
        let topo = TopologyFamily::Supernode.generate(500, 3);
        assert_eq!(topo.hub, Some(0));
        assert_eq!(topo.objects, 501);
        let spokes =
            topo.relations.iter().filter(|r| !r.identity && (r.a == 0 || r.b == 0)).count();
        assert_eq!(spokes, 500, "every satellite hangs off the hub");
        assert!(
            topo.relations.iter().filter(|r| r.identity).all(|r| r.a != 0 && r.b != 0),
            "identity edges never touch the hub (no O(n²) clique)"
        );
        assert!(topo.probes.contains(&0));
    }

    #[test]
    fn deep_chains_are_full_depth_paths_with_bounded_identity_runs() {
        let topo = TopologyFamily::DeepChain.generate(4 * DEEP_CHAIN_DEPTH, 9);
        assert_eq!(topo.relations.len(), 4 * DEEP_CHAIN_DEPTH);
        assert_eq!(topo.objects, 4 * (DEEP_CHAIN_DEPTH + 1));
        assert_eq!(topo.probes.len(), 4);
        let mut run = 0usize;
        for r in &topo.relations {
            assert_eq!(r.b, r.a + 1, "chains are consecutive paths");
            run = if r.identity { run + 1 } else { 0 };
            assert!(run <= DEEP_CHAIN_MAX_IDENTITY_RUN, "identity run exceeded the cap");
        }
    }

    #[test]
    fn near_dup_clusters_materialize_cliques() {
        let topo = TopologyFamily::NearDup.generate(4 * NEAR_DUP_CLUSTER, 5);
        let identity = topo.relations.iter().filter(|r| r.identity).count();
        assert_eq!(identity, 4 * (NEAR_DUP_CLUSTER - 1), "one identity chain per cluster");
        let index = topo.index();
        // Each cluster's chain materializes the full k-clique:
        // the interned edge count must exceed the explicit relations.
        let k = NEAR_DUP_CLUSTER;
        let explicit = topo.relations.len();
        let clique_edges = 4 * (k * (k - 1)) / 2;
        let stats = index.stats();
        assert!(
            stats.identity_edges >= clique_edges,
            "clique materialization must blow up the edge count: {} < {clique_edges}",
            stats.identity_edges
        );
        assert!(explicit < clique_edges);
    }

    #[test]
    fn probes_augment_into_the_hostile_shape() {
        for family in TopologyFamily::ALL {
            let topo = family.generate(256, 11);
            let index = topo.index();
            let sharded = quepa_aindex::ShardedIndex::new(index);
            let view = sharded.view();
            let probes = topo.probe_keys();
            let (out, _) = view.augment_multi(&probes, 1);
            assert!(!out.is_empty(), "{}: probes must reach neighbors", family.name());
        }
    }
}
