//! Polystore assembly and A' index wiring.

use std::sync::Arc;

use quepa_aindex::AIndex;
use quepa_core::Quepa;
use quepa_docstore::DocumentDb;
use quepa_graphstore::GraphDb;
use quepa_kvstore::KvStore;
use quepa_pdm::{GlobalKey, Probability, Value};
use quepa_polystore::{
    Deployment, DocumentConnector, GraphConnector, KvConnector, Polystore, RelationalConnector,
};
use quepa_relstore::engine::Database;

use crate::gen::MusicData;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of album entities in the base stores (the scale knob; the
    /// paper's full polystore corresponds to roughly `albums = 8_000_000`,
    /// shrunk here by a constant factor).
    pub albums: usize,
    /// Replica sets: each set clones catalogue + transactions + similar
    /// (Redis stays single, §VII-A), so `databases = 4 + 3 × replica_sets`
    /// — the paper's 4 / 7 / 10 / 13 axis.
    pub replica_sets: usize,
    /// Which latency model every store link uses.
    pub deployment: Deployment,
    /// RNG seed for the data generator.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            albums: 1000,
            replica_sets: 0,
            deployment: Deployment::Centralized,
            seed: 42,
        }
    }
}

/// Average generated objects per album across the four base stores: one
/// inventory row, ~1 sale, ~2 sale lines, one catalogue album document,
/// ~0.1 customer documents, one graph album node and ~0.5 discount
/// entries. The scale helper below sizes `albums` from a target object
/// count with this constant.
pub const OBJECTS_PER_ALBUM: f64 = 6.6;

impl WorkloadConfig {
    /// Number of databases this configuration yields.
    pub fn database_count(&self) -> usize {
        4 + 3 * self.replica_sets
    }

    /// A configuration sized so the four base stores hold approximately
    /// `objects` data objects in total — the knob the 10⁴–10⁷ scale
    /// sweep turns. Generation is prefix-stable in `albums`, so larger
    /// scales extend (not reshuffle) smaller ones at the same seed.
    pub fn at_scale(objects: usize, deployment: Deployment, seed: u64) -> WorkloadConfig {
        let albums = ((objects as f64 / OBJECTS_PER_ALBUM).round() as usize).max(1);
        WorkloadConfig { albums, replica_sets: 0, deployment, seed }
    }
}

/// A built polystore: registry + A' index + the generated ground truth.
pub struct BuiltPolystore {
    /// The store registry.
    pub polystore: Polystore,
    /// The wired A' index.
    pub index: AIndex,
    /// The generated data (kept for assertions and query planning).
    pub data: MusicData,
    /// The configuration that built it.
    pub config: WorkloadConfig,
}

impl BuiltPolystore {
    /// Builds the polystore of §VII-A.
    pub fn build(config: WorkloadConfig) -> Self {
        let data = MusicData::generate(config.albums, config.seed);
        let latency = config.deployment.latency();
        let mut polystore = Polystore::new();
        let mut index = AIndex::new();

        // Store-name suffixes: "" for the base set, "_r1" ….
        let suffixes: Vec<String> = (0..=config.replica_sets)
            .map(|r| if r == 0 { String::new() } else { format!("_r{r}") })
            .collect();

        // ---- the single shared Redis ------------------------------------
        let mut kv = KvStore::new("discount");
        for album in &data.albums {
            if album.discounted {
                kv.set(
                    discount_key(album.seq, &album.artist, &album.title),
                    format!("{}%", album.discount_pct),
                );
            }
        }
        polystore.register(Arc::new(KvConnector::new(kv, "drop", latency)));

        // ---- replicated stores -------------------------------------------
        for suffix in &suffixes {
            // Relational: transactions{suffix}.
            let mut rel = Database::new(format!("transactions{suffix}"));
            rel.create_table("inventory", "id", &["id", "artist", "name", "year", "seq"]).unwrap();
            rel.create_table("sales", "id", &["id", "customer", "total", "seq"]).unwrap();
            rel.create_table("sales_details", "id", &["id", "sale", "item", "seq"]).unwrap();
            for album in &data.albums {
                rel.insert_row(
                    "inventory",
                    vec![
                        Value::str(format!("a{}", album.seq)),
                        Value::str(album.artist.clone()),
                        Value::str(album.title.clone()),
                        Value::Int(album.year),
                        Value::Int(album.seq as i64),
                    ],
                )
                .unwrap();
            }
            for sale in &data.sales {
                rel.insert_row(
                    "sales",
                    vec![
                        Value::str(format!("s{}", sale.seq)),
                        Value::str(format!("c{}", sale.customer)),
                        Value::Float(sale.total),
                        Value::Int(sale.seq as i64),
                    ],
                )
                .unwrap();
                for (j, item) in sale.items.iter().enumerate() {
                    rel.insert_row(
                        "sales_details",
                        vec![
                            Value::str(format!("i{}_{j}", sale.seq)),
                            Value::str(format!("s{}", sale.seq)),
                            Value::str(format!("a{item}")),
                            Value::Int(sale.seq as i64),
                        ],
                    )
                    .unwrap();
                }
            }
            polystore.register(Arc::new(RelationalConnector::new(rel, latency)));

            // Document: catalogue{suffix}.
            let mut doc = DocumentDb::new(format!("catalogue{suffix}"));
            for album in &data.albums {
                doc.insert(
                    "albums",
                    Value::object([
                        ("_id", Value::str(format!("d{}", album.seq))),
                        ("title", Value::str(album.title.clone())),
                        ("artist", Value::str(album.artist.clone())),
                        ("year", Value::Int(album.year)),
                        ("seq", Value::Int(album.seq as i64)),
                    ]),
                )
                .unwrap();
            }
            for customer in &data.customers {
                doc.insert(
                    "customers",
                    Value::object([
                        ("_id", Value::str(format!("c{}", customer.seq))),
                        ("name", Value::str(customer.name.clone())),
                        ("city", Value::str(customer.city.clone())),
                        ("seq", Value::Int(customer.seq as i64)),
                    ]),
                )
                .unwrap();
            }
            polystore.register(Arc::new(DocumentConnector::new(doc, latency)));

            // Graph: similar{suffix}.
            let mut graph = GraphDb::new(format!("similar{suffix}"));
            for album in &data.albums {
                graph
                    .add_node(
                        &format!("g{}", album.seq),
                        "Album",
                        [
                            ("title", Value::str(album.title.clone())),
                            ("seq", Value::Int(album.seq as i64)),
                        ],
                    )
                    .unwrap();
            }
            for (from, to) in &data.similar {
                if from != to {
                    graph.add_edge(&format!("g{from}"), &format!("g{to}"), "SIMILAR").unwrap();
                }
            }
            polystore.register(Arc::new(GraphConnector::new(graph, latency)));
        }

        // ---- the A' index -------------------------------------------------
        // One identity clique per album entity across all its copies, plus
        // matchings to the sale lines that reference it. The graph is
        // uniformly dense by construction (§VII-A: "queries of the same
        // size return answers with a comparable number of data objects").
        for album in &data.albums {
            let mut copies: Vec<GlobalKey> = Vec::with_capacity(2 + 3 * suffixes.len());
            for suffix in &suffixes {
                copies.push(key(
                    &format!("transactions{suffix}"),
                    "inventory",
                    &format!("a{}", album.seq),
                ));
                copies.push(key(
                    &format!("catalogue{suffix}"),
                    "albums",
                    &format!("d{}", album.seq),
                ));
                copies.push(key(&format!("similar{suffix}"), "album", &format!("g{}", album.seq)));
            }
            if album.discounted {
                copies.push(key(
                    "discount",
                    "drop",
                    &discount_key(album.seq, &album.artist, &album.title),
                ));
            }
            // Chain inserts; transitivity materializes the clique.
            let p = Probability::of(0.90 + 0.0005 * (album.seq % 100) as f64 / 10.0);
            for pair in copies.windows(2) {
                index.insert_identity(&pair[0], &pair[1], p);
            }
        }
        // Sale ↔ line ↔ item matchings (base store only: replicas share the
        // identity cliques, so the consistency condition spreads these).
        for sale in &data.sales {
            let sale_key = key("transactions", "sales", &format!("s{}", sale.seq));
            let customer_key = key("catalogue", "customers", &format!("c{}", sale.customer));
            index.insert_matching(&sale_key, &customer_key, Probability::of(0.75));
            for (j, item) in sale.items.iter().enumerate() {
                let line_key = key("transactions", "sales_details", &format!("i{}_{j}", sale.seq));
                let item_key = key("transactions", "inventory", &format!("a{item}"));
                index.insert_matching(&sale_key, &line_key, Probability::of(0.99));
                index.insert_matching(&line_key, &item_key, Probability::of(0.7));
            }
        }

        BuiltPolystore { polystore, index, data, config }
    }

    /// Wraps the built polystore into a ready [`Quepa`] system.
    pub fn into_quepa(self) -> Quepa {
        Quepa::new(self.polystore, self.index)
    }
}

fn key(db: &str, coll: &str, local: &str) -> GlobalKey {
    GlobalKey::parse_parts(db, coll, local).expect("generated keys are valid")
}

/// The Redis key of an album's discount, e.g. `k7:the-lovemi:broken-wish-7`.
pub fn discount_key(seq: usize, artist: &str, title: &str) -> String {
    format!("k{seq}:{}:{}", slug(artist), slug(title))
}

fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(replica_sets: usize) -> BuiltPolystore {
        BuiltPolystore::build(WorkloadConfig {
            albums: 40,
            replica_sets,
            deployment: Deployment::InProcess,
            seed: 3,
        })
    }

    #[test]
    fn at_scale_hits_the_object_target() {
        for target in [2_000usize, 10_000] {
            let config = WorkloadConfig::at_scale(target, Deployment::InProcess, 42);
            let built = BuiltPolystore::build(config);
            let total = built.polystore.total_objects();
            let ratio = total as f64 / target as f64;
            assert!(
                (0.8..1.2).contains(&ratio),
                "at_scale({target}) produced {total} objects (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn store_counts_follow_the_paper_axis() {
        for (sets, expect) in [(0usize, 4usize), (1, 7), (2, 10), (3, 13)] {
            let built = small(sets);
            assert_eq!(built.polystore.len(), expect);
            assert_eq!(built.config.database_count(), expect);
        }
    }

    #[test]
    fn stores_are_populated() {
        let built = small(0);
        let p = &built.polystore;
        assert_eq!(p.execute("transactions", "SELECT COUNT(*) FROM inventory").unwrap().len(), 1);
        let objs = p.execute("catalogue", r#"db.albums.find({"seq":{"$lt":5}})"#).unwrap();
        assert_eq!(objs.len(), 5);
        let objs = p.execute("similar", "MATCH (n:Album) WHERE n.seq < 5 RETURN n").unwrap();
        assert_eq!(objs.len(), 5);
        let objs = p.execute("discount", "SCAN k COUNT 10").unwrap();
        assert_eq!(objs.len(), 10);
        // Half the albums are discounted.
        assert_eq!(p.connector_by_name("discount").unwrap().object_count(), 20);
    }

    #[test]
    fn index_is_consistent_and_dense() {
        let built = small(1);
        assert!(built.index.check_consistency().is_none());
        let stats = built.index.stats();
        assert!(stats.nodes > 0);
        assert!(stats.identity_edges > 0);
        assert!(stats.matching_edges > 0);
        // Every inventory item's augmentation reaches its catalogue copy.
        let a0 = key("transactions", "inventory", "a0");
        let out = built.index.augment(std::slice::from_ref(&a0), 0);
        assert!(out.iter().any(|a| a.key == key("catalogue", "albums", "d0")));
        assert!(out.iter().any(|a| a.key == key("catalogue_r1", "albums", "d0")));
    }

    #[test]
    fn augmented_size_grows_with_store_count() {
        let small4 = small(0);
        let small13 = small(3);
        let a0 = key("transactions", "inventory", "a0");
        let n4 = small4.index.augment(std::slice::from_ref(&a0), 0).len();
        let n13 = small13.index.augment(std::slice::from_ref(&a0), 0).len();
        assert!(n13 > n4, "more stores ⇒ bigger augmented answers ({n4} vs {n13})");
    }

    #[test]
    fn end_to_end_quepa() {
        let quepa = small(0).into_quepa();
        let answer = quepa
            .augmented_search("transactions", "SELECT * FROM inventory WHERE seq < 10", 0)
            .unwrap();
        assert_eq!(answer.original.len(), 10);
        assert!(!answer.augmented.is_empty());
        // Discounted albums surface their kv entry.
        assert!(answer.augmented.iter().any(|a| a.object.key().database().as_str() == "discount"));
    }

    #[test]
    fn slug_behaviour() {
        assert_eq!(slug("The Cure"), "the-cure");
        assert_eq!(slug("  A+B  "), "a-b");
        assert_eq!(slug("Broken Wish #7"), "broken-wish-7");
    }
}
