//! The parameter grids of §VII's figures, so the bench harness and the
//! `figures` binary agree on what each experiment sweeps.

/// The paper's query result sizes (§VII-A(b)).
pub const QUERY_SIZES: [usize; 5] = [100, 500, 1_000, 5_000, 10_000];

/// The paper's polystore sizes in databases (§VII-A: replicas of the base
/// four-store polystore).
pub const STORE_COUNTS: [usize; 4] = [4, 7, 10, 13];

/// Replica-set counts corresponding to [`STORE_COUNTS`].
pub const REPLICA_SETS: [usize; 4] = [0, 1, 2, 3];

/// The BATCH_SIZE sweep of Fig. 9/10 (log-scaled x axis).
pub const BATCH_SIZES: [usize; 8] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384];

/// The THREADS_SIZE sweep of Fig. 11(a,b).
pub const THREAD_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The CACHE_SIZE sweep of the §VII-B(c) memory experiment.
pub const CACHE_SIZES: [usize; 6] = [0, 256, 1_024, 4_096, 16_384, 65_536];

/// Augmentation levels the experiments report (level 0 and level 1).
pub const LEVELS: [usize; 2] = [0, 1];

/// Default scale factor: how many album entities the experimental
/// polystore holds. The paper's polystore has ~8M documents / 20M tuples;
/// benches default to a 1000× shrink with the same store-size *ratios*.
pub const DEFAULT_ALBUMS: usize = 8_000;

/// A smaller scale for smoke tests and CI.
pub const SMOKE_ALBUMS: usize = 400;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_and_positive() {
        assert!(QUERY_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(BATCH_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(THREAD_COUNTS.windows(2).all(|w| w[0] < w[1]));
        assert!(STORE_COUNTS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(STORE_COUNTS.len(), REPLICA_SETS.len());
        for (stores, sets) in STORE_COUNTS.iter().zip(REPLICA_SETS) {
            assert_eq!(*stores, 4 + 3 * sets);
        }
    }
}
