//! The test-bed queries of §VII-A(b): "for each of the four databases, we
//! consider queries with different result size: they retrieve 100, 500,
//! 1,000, 5,000 and 10,000 objects".
//!
//! The generator gives every object a dense `seq` attribute, so a
//! `seq < n` predicate in each store's native language returns exactly
//! `min(n, population)` objects.

use quepa_polystore::StoreKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Returns a native-language query over `kind`'s main collection returning
/// `size` objects.
pub fn query_for(kind: StoreKind, size: usize) -> String {
    match kind {
        StoreKind::Relational => {
            format!("SELECT * FROM inventory WHERE seq < {size}")
        }
        StoreKind::Document => {
            format!(r#"db.albums.find({{"seq":{{"$lt":{size}}}}})"#)
        }
        StoreKind::Graph => {
            format!("MATCH (n:Album) WHERE n.seq < {size} RETURN n")
        }
        StoreKind::KeyValue => format!("SCAN k COUNT {size}"),
    }
}

/// A labelled query: which database to send it to and what it asks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestQuery {
    /// Target database name.
    pub database: String,
    /// Query text in that database's native language.
    pub query: String,
    /// Nominal result size.
    pub size: usize,
}

/// The full §VII-A(b) query set over the four base stores.
pub fn standard_query_set(sizes: &[usize]) -> Vec<TestQuery> {
    let targets = [
        ("transactions", StoreKind::Relational),
        ("catalogue", StoreKind::Document),
        ("similar", StoreKind::Graph),
        ("discount", StoreKind::KeyValue),
    ];
    let mut out = Vec::with_capacity(targets.len() * sizes.len());
    for &size in sizes {
        for (db, kind) in targets {
            out.push(TestQuery { database: db.to_owned(), query: query_for(kind, size), size });
        }
    }
    out
}

/// A deterministic family of 25 "different kind" hold-out queries for the
/// optimizer-quality experiment (§VII-C), distinct from the training
/// sizes.
pub fn holdout_query_set() -> Vec<TestQuery> {
    let mut out = Vec::new();
    // 25 queries: 7 relational, 6 document, 6 graph, 6 kv, with sizes not
    // in the standard grid.
    let sizes = [37usize, 73, 146, 292, 584, 1168, 2336];
    for (i, &size) in sizes.iter().enumerate() {
        out.push(TestQuery {
            database: "transactions".into(),
            query: query_for(StoreKind::Relational, size),
            size,
        });
        if i < 6 {
            out.push(TestQuery {
                database: "catalogue".into(),
                query: query_for(StoreKind::Document, size + 11),
                size: size + 11,
            });
            out.push(TestQuery {
                database: "similar".into(),
                query: query_for(StoreKind::Graph, size + 23),
                size: size + 23,
            });
            out.push(TestQuery {
                database: "discount".into(),
                query: query_for(StoreKind::KeyValue, size / 2 + 5),
                size: size / 2 + 5,
            });
        }
    }
    out
}

/// A seeded Zipf(s) rank sampler over `0..ranks` by inverse CDF — rank 0
/// is the hottest. Real access patterns are skewed, not uniform; this
/// drives the hot-key query family below.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: SmallRng,
}

impl ZipfSampler {
    /// A sampler over `ranks` ranks with exponent `s` (s = 0 is uniform;
    /// s ≈ 1 is the classic web/cache skew).
    pub fn new(ranks: usize, s: f64, seed: u64) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(ranks);
        let mut total = 0.0f64;
        for r in 0..ranks {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Draws the next rank.
    pub fn sample(&mut self) -> usize {
        let u = self.rng.gen_range(0.0f64..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The relational query selecting rank `rank`'s window of `window`
/// consecutive objects — each rank touches a disjoint key range, so a
/// Zipf-ranked stream concentrates augmentation traffic on the rank-0
/// window's keys.
pub fn zipf_window_query(rank: usize, window: usize) -> String {
    let lo = rank * window;
    let hi = lo + window;
    format!("SELECT * FROM inventory WHERE seq >= {lo} AND seq < {hi}")
}

/// A deterministic Zipf-skewed query stream: `count` relational window
/// queries whose ranks are drawn from `Zipf(ranks, s)`. The stream is a
/// workload for the serving cache and single-flight table — the hot
/// window's keys recur with Zipf frequency while the tail stays cold.
pub fn zipf_query_stream(
    count: usize,
    ranks: usize,
    s: f64,
    window: usize,
    seed: u64,
) -> Vec<TestQuery> {
    let mut sampler = ZipfSampler::new(ranks, s, seed);
    (0..count)
        .map(|_| {
            let rank = sampler.sample();
            TestQuery {
                database: "transactions".into(),
                query: zipf_window_query(rank, window),
                size: window,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuiltPolystore, WorkloadConfig};
    use quepa_polystore::Deployment;

    #[test]
    fn queries_return_requested_sizes() {
        let built = BuiltPolystore::build(WorkloadConfig {
            albums: 300,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 1,
        });
        for size in [1usize, 10, 100, 250] {
            for (db, kind) in [
                ("transactions", StoreKind::Relational),
                ("catalogue", StoreKind::Document),
                ("similar", StoreKind::Graph),
            ] {
                let objs = built.polystore.execute(db, &query_for(kind, size)).unwrap();
                assert_eq!(objs.len(), size, "{db} size {size}");
            }
        }
        // KV counts discounted albums only (every 2nd).
        let objs =
            built.polystore.execute("discount", &query_for(StoreKind::KeyValue, 50)).unwrap();
        assert_eq!(objs.len(), 50);
    }

    #[test]
    fn standard_set_shape() {
        let qs = standard_query_set(&[100, 500]);
        assert_eq!(qs.len(), 8);
        assert!(qs.iter().any(|q| q.database == "discount" && q.size == 500));
    }

    #[test]
    fn zipf_sampler_is_seeded_and_skewed() {
        let draws = 2000;
        let mut sampler = ZipfSampler::new(50, 1.1, 7);
        let mut counts = [0usize; 50];
        for _ in 0..draws {
            counts[sampler.sample()] += 1;
        }
        // Rank 0 dominates and the tail is reached.
        assert!(counts[0] > draws / 5, "rank 0 must be hot: {}", counts[0]);
        assert!(counts[0] > 4 * counts[9], "skew must decay: {counts:?}");
        assert!(counts[10..].iter().sum::<usize>() > 0, "tail must be sampled");
        // Same seed ⇒ same stream.
        let a: Vec<usize> = (0..64).map(|_| ZipfSampler::new(50, 1.1, 9).sample()).collect();
        let b: Vec<usize> = (0..64).map(|_| ZipfSampler::new(50, 1.1, 9).sample()).collect();
        assert_eq!(a, b);
        // s = 0 is uniform-ish: rank 0 is not special.
        let mut uniform = ZipfSampler::new(50, 0.0, 7);
        let mut u_counts = [0usize; 50];
        for _ in 0..draws {
            u_counts[uniform.sample()] += 1;
        }
        assert!(u_counts[0] < draws / 10, "uniform stream must spread: {}", u_counts[0]);
    }

    #[test]
    fn zipf_window_queries_execute() {
        let built = BuiltPolystore::build(WorkloadConfig {
            albums: 300,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 1,
        });
        let stream = zipf_query_stream(20, 10, 1.1, 8, 11);
        assert_eq!(stream.len(), 20);
        for q in &stream {
            let objs = built.polystore.execute(&q.database, &q.query).unwrap();
            assert_eq!(objs.len(), 8, "window query must return its window: {}", q.query);
        }
        // Distinct ranks address disjoint seq windows.
        let q0 = zipf_window_query(0, 8);
        let q1 = zipf_window_query(1, 8);
        assert_ne!(q0, q1);
        let o0 = built.polystore.execute("transactions", &q0).unwrap();
        let o1 = built.polystore.execute("transactions", &q1).unwrap();
        assert!(o0.iter().all(|a| o1.iter().all(|b| a.key() != b.key())));
    }

    #[test]
    fn holdout_set_is_25_distinct_queries() {
        let qs = holdout_query_set();
        assert_eq!(qs.len(), 25);
        let mut texts: Vec<&str> = qs.iter().map(|q| q.query.as_str()).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), 25);
        // None of the hold-out sizes collide with the training grid.
        for q in &qs {
            assert!(![100usize, 500, 1000, 5000, 10000].contains(&q.size));
        }
    }
}
