//! The test-bed queries of §VII-A(b): "for each of the four databases, we
//! consider queries with different result size: they retrieve 100, 500,
//! 1,000, 5,000 and 10,000 objects".
//!
//! The generator gives every object a dense `seq` attribute, so a
//! `seq < n` predicate in each store's native language returns exactly
//! `min(n, population)` objects.

use quepa_polystore::StoreKind;

/// Returns a native-language query over `kind`'s main collection returning
/// `size` objects.
pub fn query_for(kind: StoreKind, size: usize) -> String {
    match kind {
        StoreKind::Relational => {
            format!("SELECT * FROM inventory WHERE seq < {size}")
        }
        StoreKind::Document => {
            format!(r#"db.albums.find({{"seq":{{"$lt":{size}}}}})"#)
        }
        StoreKind::Graph => {
            format!("MATCH (n:Album) WHERE n.seq < {size} RETURN n")
        }
        StoreKind::KeyValue => format!("SCAN k COUNT {size}"),
    }
}

/// A labelled query: which database to send it to and what it asks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestQuery {
    /// Target database name.
    pub database: String,
    /// Query text in that database's native language.
    pub query: String,
    /// Nominal result size.
    pub size: usize,
}

/// The full §VII-A(b) query set over the four base stores.
pub fn standard_query_set(sizes: &[usize]) -> Vec<TestQuery> {
    let targets = [
        ("transactions", StoreKind::Relational),
        ("catalogue", StoreKind::Document),
        ("similar", StoreKind::Graph),
        ("discount", StoreKind::KeyValue),
    ];
    let mut out = Vec::with_capacity(targets.len() * sizes.len());
    for &size in sizes {
        for (db, kind) in targets {
            out.push(TestQuery { database: db.to_owned(), query: query_for(kind, size), size });
        }
    }
    out
}

/// A deterministic family of 25 "different kind" hold-out queries for the
/// optimizer-quality experiment (§VII-C), distinct from the training
/// sizes.
pub fn holdout_query_set() -> Vec<TestQuery> {
    let mut out = Vec::new();
    // 25 queries: 7 relational, 6 document, 6 graph, 6 kv, with sizes not
    // in the standard grid.
    let sizes = [37usize, 73, 146, 292, 584, 1168, 2336];
    for (i, &size) in sizes.iter().enumerate() {
        out.push(TestQuery {
            database: "transactions".into(),
            query: query_for(StoreKind::Relational, size),
            size,
        });
        if i < 6 {
            out.push(TestQuery {
                database: "catalogue".into(),
                query: query_for(StoreKind::Document, size + 11),
                size: size + 11,
            });
            out.push(TestQuery {
                database: "similar".into(),
                query: query_for(StoreKind::Graph, size + 23),
                size: size + 23,
            });
            out.push(TestQuery {
                database: "discount".into(),
                query: query_for(StoreKind::KeyValue, size / 2 + 5),
                size: size / 2 + 5,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuiltPolystore, WorkloadConfig};
    use quepa_polystore::Deployment;

    #[test]
    fn queries_return_requested_sizes() {
        let built = BuiltPolystore::build(WorkloadConfig {
            albums: 300,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 1,
        });
        for size in [1usize, 10, 100, 250] {
            for (db, kind) in [
                ("transactions", StoreKind::Relational),
                ("catalogue", StoreKind::Document),
                ("similar", StoreKind::Graph),
            ] {
                let objs = built.polystore.execute(db, &query_for(kind, size)).unwrap();
                assert_eq!(objs.len(), size, "{db} size {size}");
            }
        }
        // KV counts discounted albums only (every 2nd).
        let objs =
            built.polystore.execute("discount", &query_for(StoreKind::KeyValue, 50)).unwrap();
        assert_eq!(objs.len(), 50);
    }

    #[test]
    fn standard_set_shape() {
        let qs = standard_query_set(&[100, 500]);
        assert_eq!(qs.len(), 8);
        assert!(qs.iter().any(|q| q.database == "discount" && q.size == 500));
    }

    #[test]
    fn holdout_set_is_25_distinct_queries() {
        let qs = holdout_query_set();
        assert_eq!(qs.len(), 25);
        let mut texts: Vec<&str> = qs.iter().map(|q| q.query.as_str()).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), 25);
        // None of the hold-out sizes collide with the training grid.
        for q in &qs {
            assert!(![100usize, 500, 1000, 5000, 10000].contains(&q.size));
        }
    }
}
