//! # quepa-workload — the Polyphony workload generator
//!
//! Builds the experimental polystore of §VII-A at configurable scale:
//!
//! * [`gen`] — a deterministic music-domain data generator standing in for
//!   the Last.fm/MusicBrainz data (artists, albums, songs + synthetic
//!   customers, sales and discounts, like the paper's synthetic parts);
//! * [`builder`] — assembles the four-store polystore (document
//!   `catalogue`, relational `transactions`, graph `similar`, key-value
//!   `discount`), replicates the non-Redis stores to reach 4/7/10/13
//!   databases (the paper's scaling axis), and wires the A' index with
//!   uniform density so that "queries of the same size return answers with
//!   a comparable number of data objects";
//! * [`queries`] — the §VII-A(b) test bed: per-store native-language
//!   queries with result sizes 100…10 000;
//! * [`experiments`] — the parameter grids of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod experiments;
pub mod gen;
pub mod hostile;
pub mod queries;

pub use builder::{BuiltPolystore, WorkloadConfig, OBJECTS_PER_ALBUM};
pub use hostile::{HostileRelation, HostileTopology, TopologyFamily};
pub use gen::MusicData;
pub use queries::{
    holdout_query_set, query_for, standard_query_set, zipf_query_stream, zipf_window_query,
    TestQuery, ZipfSampler,
};
