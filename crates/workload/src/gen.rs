//! Deterministic music-domain data generation.
//!
//! The paper populates the polystore from the Last.fm dataset (songs and
//! their similarities) reconstructed into albums via MusicBrainz, plus
//! synthetic customers, sales and discounts. Those sources are not
//! available offline, so this module generates a synthetic equivalent with
//! the same *shape*: named artists with albums and songs, a similarity
//! graph over items, and the synthetic commerce data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One album entity; the same real-world entity appears (with different
/// representations) in every store.
#[derive(Debug, Clone)]
pub struct Album {
    /// Dense entity index.
    pub seq: usize,
    /// Album title.
    pub title: String,
    /// Artist name.
    pub artist: String,
    /// Release year.
    pub year: i64,
    /// Whether the discount store carries a discount for it.
    pub discounted: bool,
    /// Discount percentage when discounted.
    pub discount_pct: u32,
}

/// One sale with its line items.
#[derive(Debug, Clone)]
pub struct Sale {
    /// Dense sale index.
    pub seq: usize,
    /// Buying customer index.
    pub customer: usize,
    /// Total price.
    pub total: f64,
    /// Purchased album seqs.
    pub items: Vec<usize>,
}

/// One customer profile.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Dense customer index.
    pub seq: usize,
    /// Full name.
    pub name: String,
    /// City.
    pub city: String,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct MusicData {
    /// All albums.
    pub albums: Vec<Album>,
    /// All sales.
    pub sales: Vec<Sale>,
    /// All customers.
    pub customers: Vec<Customer>,
    /// Similarity edges between albums `(from_seq, to_seq)`.
    pub similar: Vec<(usize, usize)>,
}

const SYLLABLES: [&str; 16] = [
    "lo", "ve", "mi", "ra", "son", "ic", "dre", "am", "sky", "fall", "neo", "pol", "lyn", "mar",
    "ka", "zen",
];
const ADJECTIVES: [&str; 12] = [
    "Broken", "Silent", "Electric", "Golden", "Lost", "Neon", "Velvet", "Crimson", "Pale", "Wild",
    "Hollow", "Distant",
];
const NOUNS: [&str; 12] = [
    "Wish", "Dream", "Mirror", "Garden", "Echo", "River", "Signal", "Horizon", "Letter", "Winter",
    "Machine", "Parade",
];
const CITIES: [&str; 8] = ["Rome", "Berlin", "Tokyo", "Oslo", "Lisbon", "Quito", "Dakar", "Perth"];
const FIRST_NAMES: [&str; 8] = ["John", "Lucy", "Ada", "Ken", "Mara", "Iris", "Tom", "Nia"];
const LAST_NAMES: [&str; 8] = ["Doe", "Smith", "Rossi", "Tanaka", "Berg", "Silva", "Okoro", "Lee"];

fn artist_name(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(2..4);
    let mut name = String::from("The ");
    for i in 0..n {
        let syl = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
        if i == 0 {
            let mut c = syl.chars();
            if let Some(first) = c.next() {
                name.extend(first.to_uppercase());
                name.push_str(c.as_str());
            }
        } else {
            name.push_str(syl);
        }
    }
    name
}

fn album_title(rng: &mut SmallRng, seq: usize) -> String {
    // A unique-ish two-word title; the seq keeps titles distinct so record
    // linkage and LIKE-queries behave predictably.
    format!(
        "{} {} #{seq}",
        ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())],
        NOUNS[rng.gen_range(0..NOUNS.len())]
    )
}

impl MusicData {
    /// Generates a dataset of `n_albums` albums (with sales ≈ albums and
    /// customers ≈ albums/10), deterministic in `seed`.
    pub fn generate(n_albums: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_artists = (n_albums / 4).max(1);
        let artists: Vec<String> = (0..n_artists).map(|_| artist_name(&mut rng)).collect();

        let albums: Vec<Album> = (0..n_albums)
            .map(|seq| {
                let discounted = seq % 2 == 0;
                Album {
                    seq,
                    title: album_title(&mut rng, seq),
                    artist: artists[rng.gen_range(0..artists.len())].clone(),
                    year: rng.gen_range(1960..2018),
                    discounted,
                    discount_pct: if discounted { rng.gen_range(5..60) } else { 0 },
                }
            })
            .collect();

        let n_customers = (n_albums / 10).max(1);
        let customers: Vec<Customer> = (0..n_customers)
            .map(|seq| Customer {
                seq,
                name: format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
                ),
                city: CITIES[rng.gen_range(0..CITIES.len())].to_owned(),
            })
            .collect();

        // One sale per album on average; each sale buys 1–3 albums.
        let sales: Vec<Sale> = (0..n_albums)
            .map(|seq| {
                let n_items = rng.gen_range(1..=3.min(n_albums));
                let items: Vec<usize> = (0..n_items).map(|_| rng.gen_range(0..n_albums)).collect();
                Sale {
                    seq,
                    customer: rng.gen_range(0..n_customers),
                    total: items.len() as f64 * rng.gen_range(8.0..25.0),
                    items,
                }
            })
            .collect();

        // Similarity graph: a ring plus random chords — connected, uniform
        // degree ~3, like the paper's "uniformly dense" requirement.
        let mut similar = Vec::with_capacity(n_albums * 2);
        for seq in 0..n_albums {
            similar.push((seq, (seq + 1) % n_albums));
            if n_albums > 4 {
                similar.push((seq, rng.gen_range(0..n_albums)));
            }
        }

        MusicData { albums, sales, customers, similar }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = MusicData::generate(50, 7);
        let b = MusicData::generate(50, 7);
        assert_eq!(a.albums.len(), b.albums.len());
        for (x, y) in a.albums.iter().zip(&b.albums) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.artist, y.artist);
        }
        let c = MusicData::generate(50, 8);
        assert_ne!(
            a.albums.iter().map(|x| &x.title).collect::<Vec<_>>(),
            c.albums.iter().map(|x| &x.title).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn shape() {
        let d = MusicData::generate(100, 1);
        assert_eq!(d.albums.len(), 100);
        assert_eq!(d.sales.len(), 100);
        assert_eq!(d.customers.len(), 10);
        assert!(d.similar.len() >= 100);
        // Half the albums are discounted.
        assert_eq!(d.albums.iter().filter(|a| a.discounted).count(), 50);
        // Sales reference valid albums and customers.
        for s in &d.sales {
            assert!(s.customer < 10);
            assert!(s.items.iter().all(|&i| i < 100));
            assert!(!s.items.is_empty());
        }
        // Titles are unique (the #seq suffix guarantees it).
        let mut titles: Vec<&str> = d.albums.iter().map(|a| a.title.as_str()).collect();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), 100);
    }

    #[test]
    fn tiny_dataset_does_not_panic() {
        let d = MusicData::generate(1, 0);
        assert_eq!(d.albums.len(), 1);
        assert_eq!(d.customers.len(), 1);
    }
}
