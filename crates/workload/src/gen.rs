//! Deterministic music-domain data generation.
//!
//! The paper populates the polystore from the Last.fm dataset (songs and
//! their similarities) reconstructed into albums via MusicBrainz, plus
//! synthetic customers, sales and discounts. Those sources are not
//! available offline, so this module generates a synthetic equivalent with
//! the same *shape*: named artists with albums and songs, a similarity
//! graph over items, and the synthetic commerce data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One album entity; the same real-world entity appears (with different
/// representations) in every store.
#[derive(Debug, Clone)]
pub struct Album {
    /// Dense entity index.
    pub seq: usize,
    /// Album title.
    pub title: String,
    /// Artist name.
    pub artist: String,
    /// Release year.
    pub year: i64,
    /// Whether the discount store carries a discount for it.
    pub discounted: bool,
    /// Discount percentage when discounted.
    pub discount_pct: u32,
}

/// One sale with its line items.
#[derive(Debug, Clone)]
pub struct Sale {
    /// Dense sale index.
    pub seq: usize,
    /// Buying customer index.
    pub customer: usize,
    /// Total price.
    pub total: f64,
    /// Purchased album seqs.
    pub items: Vec<usize>,
}

/// One customer profile.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Dense customer index.
    pub seq: usize,
    /// Full name.
    pub name: String,
    /// City.
    pub city: String,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct MusicData {
    /// All albums.
    pub albums: Vec<Album>,
    /// All sales.
    pub sales: Vec<Sale>,
    /// All customers.
    pub customers: Vec<Customer>,
    /// Similarity edges between albums `(from_seq, to_seq)`.
    pub similar: Vec<(usize, usize)>,
}

const SYLLABLES: [&str; 16] = [
    "lo", "ve", "mi", "ra", "son", "ic", "dre", "am", "sky", "fall", "neo", "pol", "lyn", "mar",
    "ka", "zen",
];
const ADJECTIVES: [&str; 12] = [
    "Broken", "Silent", "Electric", "Golden", "Lost", "Neon", "Velvet", "Crimson", "Pale", "Wild",
    "Hollow", "Distant",
];
const NOUNS: [&str; 12] = [
    "Wish", "Dream", "Mirror", "Garden", "Echo", "River", "Signal", "Horizon", "Letter", "Winter",
    "Machine", "Parade",
];
const CITIES: [&str; 8] = ["Rome", "Berlin", "Tokyo", "Oslo", "Lisbon", "Quito", "Dakar", "Perth"];
const FIRST_NAMES: [&str; 8] = ["John", "Lucy", "Ada", "Ken", "Mara", "Iris", "Tom", "Nia"];
const LAST_NAMES: [&str; 8] = ["Doe", "Smith", "Rossi", "Tanaka", "Berg", "Silva", "Okoro", "Lee"];

fn artist_name(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(2..4);
    let mut name = String::from("The ");
    for i in 0..n {
        let syl = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
        if i == 0 {
            let mut c = syl.chars();
            if let Some(first) = c.next() {
                name.extend(first.to_uppercase());
                name.push_str(c.as_str());
            }
        } else {
            name.push_str(syl);
        }
    }
    name
}

fn album_title(rng: &mut SmallRng, seq: usize) -> String {
    // A unique-ish two-word title; the seq keeps titles distinct so record
    // linkage and LIKE-queries behave predictably.
    format!(
        "{} {} #{seq}",
        ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())],
        NOUNS[rng.gen_range(0..NOUNS.len())]
    )
}

/// Derives one generation component's seed from the explicit master seed.
///
/// Every component (artists, albums, customers, sales, similarity) draws
/// from its *own* stream seeded by `component_seed(master, label)`, so
/// the components are independent: resizing or reshaping one never
/// perturbs another, and — because each record consumes a fixed number of
/// draws — a component's prefix is stable when the dataset grows.
pub fn component_seed(master: u64, label: &str) -> u64 {
    // FNV-1a over the label, then a splitmix64 finalizer over the xor.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = master ^ h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MusicData {
    /// Generates a dataset of `n_albums` albums (with sales ≈ albums and
    /// customers ≈ albums/10), deterministic in `seed`. Each component
    /// draws from an independent sub-seeded stream (see
    /// [`component_seed`]).
    pub fn generate(n_albums: usize, seed: u64) -> Self {
        let component = |label: &str| SmallRng::seed_from_u64(component_seed(seed, label));

        let mut rng = component("artists");
        let n_artists = (n_albums / 4).max(1);
        let artists: Vec<String> = (0..n_artists).map(|_| artist_name(&mut rng)).collect();

        let mut rng = component("albums");
        let albums: Vec<Album> = (0..n_albums)
            .map(|seq| {
                let discounted = seq % 2 == 0;
                Album {
                    seq,
                    title: album_title(&mut rng, seq),
                    artist: artists[rng.gen_range(0..artists.len())].clone(),
                    year: rng.gen_range(1960..2018),
                    // Draw unconditionally so each album consumes a fixed
                    // number of values (prefix stability under resizing).
                    discount_pct: if discounted { rng.gen_range(5..60) } else { 0 },
                    discounted,
                }
            })
            .collect();

        let mut rng = component("customers");
        let n_customers = (n_albums / 10).max(1);
        let customers: Vec<Customer> = (0..n_customers)
            .map(|seq| Customer {
                seq,
                name: format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
                ),
                city: CITIES[rng.gen_range(0..CITIES.len())].to_owned(),
            })
            .collect();

        // One sale per album on average; each sale buys 1–3 albums.
        let mut rng = component("sales");
        let sales: Vec<Sale> = (0..n_albums)
            .map(|seq| {
                let n_items = rng.gen_range(1..=3.min(n_albums));
                let items: Vec<usize> = (0..n_items).map(|_| rng.gen_range(0..n_albums)).collect();
                Sale {
                    seq,
                    customer: rng.gen_range(0..n_customers),
                    total: items.len() as f64 * rng.gen_range(8.0..25.0),
                    items,
                }
            })
            .collect();

        // Similarity graph: a ring plus random chords — connected, uniform
        // degree ~3, like the paper's "uniformly dense" requirement.
        let mut rng = component("similar");
        let mut similar = Vec::with_capacity(n_albums * 2);
        for seq in 0..n_albums {
            similar.push((seq, (seq + 1) % n_albums));
            if n_albums > 4 {
                similar.push((seq, rng.gen_range(0..n_albums)));
            }
        }

        MusicData { albums, sales, customers, similar }
    }

    /// A stable 64-bit digest over every generated field, in a canonical
    /// order. Golden-pinned in tests: any unintended change to the
    /// generator's output — reordered draws, a different stream layout, a
    /// vendored-RNG change — shifts the fingerprint and fails the pin.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Field separator so concatenations cannot collide.
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for a in &self.albums {
            eat(a.title.as_bytes());
            eat(a.artist.as_bytes());
            eat(&a.year.to_le_bytes());
            eat(&[a.discounted as u8]);
            eat(&a.discount_pct.to_le_bytes());
        }
        for s in &self.sales {
            eat(&(s.customer as u64).to_le_bytes());
            eat(&s.total.to_bits().to_le_bytes());
            for &i in &s.items {
                eat(&(i as u64).to_le_bytes());
            }
        }
        for c in &self.customers {
            eat(c.name.as_bytes());
            eat(c.city.as_bytes());
        }
        for &(a, b) in &self.similar {
            eat(&(a as u64).to_le_bytes());
            eat(&(b as u64).to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = MusicData::generate(50, 7);
        let b = MusicData::generate(50, 7);
        assert_eq!(a.albums.len(), b.albums.len());
        for (x, y) in a.albums.iter().zip(&b.albums) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.artist, y.artist);
        }
        let c = MusicData::generate(50, 8);
        assert_ne!(
            a.albums.iter().map(|x| &x.title).collect::<Vec<_>>(),
            c.albums.iter().map(|x| &x.title).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn shape() {
        let d = MusicData::generate(100, 1);
        assert_eq!(d.albums.len(), 100);
        assert_eq!(d.sales.len(), 100);
        assert_eq!(d.customers.len(), 10);
        assert!(d.similar.len() >= 100);
        // Half the albums are discounted.
        assert_eq!(d.albums.iter().filter(|a| a.discounted).count(), 50);
        // Sales reference valid albums and customers.
        for s in &d.sales {
            assert!(s.customer < 10);
            assert!(s.items.iter().all(|&i| i < 100));
            assert!(!s.items.is_empty());
        }
        // Titles are unique (the #seq suffix guarantees it).
        let mut titles: Vec<&str> = d.albums.iter().map(|a| a.title.as_str()).collect();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), 100);
    }

    #[test]
    fn tiny_dataset_does_not_panic() {
        let d = MusicData::generate(1, 0);
        assert_eq!(d.albums.len(), 1);
        assert_eq!(d.customers.len(), 1);
    }

    /// Pins the generator's exact output. If this fails, the generated
    /// dataset changed: either intentionally (re-pin the constant and call
    /// it out in the changelog — every seeded store and golden transcript
    /// downstream shifts with it) or accidentally (a reordered draw, a
    /// stream-layout change, a vendored-RNG change — fix the regression).
    #[test]
    fn golden_fingerprint() {
        let d = MusicData::generate(100, 42);
        assert_eq!(
            d.fingerprint(),
            7394515717923291725,
            "MusicData::generate(100, 42) output changed",
        );
    }

    /// Components draw from independent streams, so growing the dataset
    /// must not reshuffle records whose draw positions are unchanged: the
    /// customer records of a small dataset are a prefix of a larger one's
    /// (each customer consumes a fixed number of draws from its own
    /// stream), and artist pools of equal size are identical.
    #[test]
    fn component_streams_are_independent() {
        let small = MusicData::generate(40, 9);
        let large = MusicData::generate(80, 9);
        assert_eq!(small.customers.len(), 4);
        for (a, b) in small.customers.iter().zip(&large.customers) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.city, b.city);
        }
        // Same album count but a different sales shape would once have
        // shifted every later stream; now equal-length components agree.
        let twin = MusicData::generate(40, 9);
        assert_eq!(small.fingerprint(), twin.fingerprint());
    }

    #[test]
    fn component_seeds_are_distinct() {
        let labels = ["artists", "albums", "customers", "sales", "similar"];
        let mut seeds: Vec<u64> = labels.iter().map(|l| component_seed(7, l)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), labels.len(), "component seed collision");
        assert_ne!(component_seed(7, "albums"), component_seed(8, "albums"));
    }
}
