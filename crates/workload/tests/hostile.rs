//! Supernode removal through the sharded serving path: rewriting a hub
//! with thousands of p-relations republishes exactly its home shard
//! (per-shard swap counters prove it), and concurrent readers racing
//! the removal sequence observe only the predicted prefix states —
//! never a torn half-removal.

use quepa_aindex::shard::route;
use quepa_aindex::{AIndex, AugmentedKey, ShardedIndex};
use quepa_pdm::GlobalKey;
use quepa_workload::TopologyFamily;

const SCALE: usize = 3_000;

fn supernode() -> (quepa_workload::HostileTopology, ShardedIndex) {
    let topo = TopologyFamily::Supernode.generate(SCALE, 7);
    let sharded = ShardedIndex::new(topo.index());
    (topo, sharded)
}

#[test]
fn hub_removal_republishes_exactly_its_home_shard() {
    let (topo, sharded) = supernode();
    let hub = topo.key(topo.hub.expect("supernode has a hub"));
    let before: Vec<u64> = sharded.shard_stats().iter().map(|s| s.swaps).collect();
    assert!(before.iter().all(|&s| s == 0), "construction must not count as swaps");

    sharded.update(|ix| ix.remove_object(&hub));
    let after: Vec<u64> = sharded.shard_stats().iter().map(|s| s.swaps).collect();
    let home = route(&hub);
    for (shard, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
        if shard == home {
            assert_eq!(a, b + 1, "hub removal must republish its home shard exactly once");
        } else {
            assert_eq!(a, b, "shard {shard} must be untouched by the hub removal");
        }
    }

    // A satellite removal afterwards also touches exactly one shard —
    // the hub's thousands of dead half-edges don't leak republishes.
    let satellite = topo.key(1);
    let before = after;
    sharded.update(|ix| ix.remove_object(&satellite));
    let after: Vec<u64> = sharded.shard_stats().iter().map(|s| s.swaps).collect();
    let home = route(&satellite);
    for (shard, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
        let want = if shard == home { b + 1 } else { b };
        assert_eq!(a, want, "satellite removal touched shard {shard} unexpectedly");
    }
}

/// The predicted answer after removing `victims[..prefix]`.
fn predicted(master: &AIndex, victims: &[GlobalKey], probes: &[GlobalKey]) -> Vec<(Vec<AugmentedKey>, Vec<u32>)> {
    let mut index = master.clone();
    let mut states = vec![index.augment_multi(probes, 1)];
    for victim in victims {
        index.remove_object(victim);
        states.push(index.augment_multi(probes, 1));
    }
    states
}

#[test]
fn racing_readers_observe_only_predicted_prefix_states() {
    let (topo, sharded) = supernode();
    let hub = topo.key(topo.hub.expect("supernode has a hub"));
    // The hub dies mid-sequence: two satellites, the hub, two more.
    // (Post-hub removals don't perturb the probed neighborhood — their
    // predicted states are duplicates, which the matcher must tolerate.)
    let victims: Vec<GlobalKey> =
        vec![topo.key(10), topo.key(20), hub, topo.key(30), topo.key(40)];
    // Probe from satellites only, so every state (including post-hub)
    // still resolves the seeds themselves.
    let probes: Vec<GlobalKey> = (1..=8).map(|i| topo.key(i * 3 + 1)).collect();
    let states = predicted(&topo.index(), &victims, &probes);
    // The removals must actually change the answer, or the test is
    // vacuous.
    assert!(
        states.windows(2).any(|w| w[0] != w[1]),
        "removal sequence must perturb the probed neighborhood"
    );

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (sharded, states, probes, stop) = (&sharded, &states, &probes, &stop);
        let readers: Vec<_> = (0..4)
            .map(|reader| {
                scope.spawn(move || {
                    let mut last = 0usize;
                    let mut observed = 0usize;
                    loop {
                        let done = stop.load(std::sync::atomic::Ordering::Acquire);
                        let answer = sharded.view().augment_multi(probes, 1);
                        // First match — duplicate tail states collapse to
                        // the earliest prefix with the same answer, which
                        // keeps the monotonicity check meaningful.
                        let state = states
                            .iter()
                            .position(|s| *s == answer)
                            .unwrap_or_else(|| panic!("reader {reader} saw an unpredicted state"));
                        assert!(
                            state >= last,
                            "reader {reader} went backwards: prefix {state} after {last}"
                        );
                        last = state;
                        observed += 1;
                        if done {
                            return observed;
                        }
                    }
                })
            })
            .collect();
        for victim in &victims {
            sharded.update(|ix| ix.remove_object(victim));
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        for handle in readers {
            assert!(handle.join().expect("reader thread") > 0);
        }
    });

    // Settled: every fresh view answers the full-prefix state.
    let final_answer = sharded.view().augment_multi(&probes, 1);
    assert_eq!(&final_answer, states.last().expect("states nonempty"));
}
