//! The harness's own generator: splitmix64, fully specified arithmetic.
//!
//! The simulation must be bit-identical across hosts and immune to any
//! ambient entropy, so it carries its own five-line PRNG rather than
//! depending on a library stream. splitmix64 is also what the fault plan
//! and the vendored `rand` seed through, so one primitive serves the whole
//! deterministic stack.

/// A splitmix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Derives an independent sub-stream labelled by `label` — the way the
    /// generators keep topology, data, queries and faults on separate
    /// streams so tweaking one never reshuffles another.
    pub fn fork(&self, label: &str) -> SplitMix {
        SplitMix::new(mix(self.state, fnv(label.as_bytes())))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n` > 0).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw from `lo..=hi` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u32) -> bool {
        (self.next_u64() % 100) < pct as u64
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// splitmix64 finalizer combining two words (matches the fault plan's).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over raw bytes.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_forked_streams_are_independent() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let root = SplitMix::new(7);
        let mut f1 = root.fork("topology");
        let mut f2 = root.fork("faults");
        assert_ne!(f1.next_u64(), f2.next_u64());
        // Forks do not advance the parent.
        assert_eq!(root.fork("topology").next_u64(), SplitMix::new(7).fork("topology").next_u64());
    }

    #[test]
    fn bounds_hold() {
        let mut rng = SplitMix::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(2, 5);
            assert!((2..=5).contains(&v));
        }
        assert!(!(0..100).any(|_| rng.chance(0)));
        assert!((0..100).all(|_| rng.chance(100)));
    }

    /// Cross-host pin: the stream is pure 64-bit arithmetic, so these
    /// values must hold on every platform.
    #[test]
    fn golden_values() {
        let mut rng = SplitMix::new(42);
        assert_eq!(rng.next_u64(), 13679457532755275413);
        assert_eq!(fnv(b"quepa"), 0xb10d_9314_6c4b_bc3d);
    }
}
