//! The reference model: a deliberately naive, obviously-correct
//! implementation of the A' index and the augmentation operator, straight
//! off the paper's definitions.
//!
//! No CSR, no scratch pools, no caches, no sharding, no batching — plain
//! `Vec`s and per-hop cloning. The model exists to be *read and believed*,
//! so the driver can hold the real system to it:
//!
//! * **Closure** (Definitions 1–2, Consistency Condition): identity
//!   inserts materialize transitive identities and propagate matchings;
//!   matching inserts spread across both identity cliques. The model
//!   replays the same per-relation insertion discipline the real index
//!   documents (snapshot the cliques, then propagate reading live state),
//!   with probabilities combined in the same order — so a correct real
//!   index agrees *bit for bit*, and any divergence in the CSR build,
//!   dedup, or adjacency bookkeeping shows up as an edge- or answer-set
//!   mismatch.
//! * **Augmentation** (Definition 3): a layered dynamic program —
//!   `f[h][n] = max(f[h-1][n], max over edges (m,n) of f[h-1][m]·p)` with
//!   seeds pinned at 1 — instead of the real label-correcting BFS. Both
//!   compute, for every node, the maximum walk-product within `level + 1`
//!   hops and the first hop achieving it, but by different algorithms:
//!   exactly what differential testing wants.
//! * **Partial answers** (PR 2): which referenced keys must come back
//!   `missing`, and with which structured reason, under a fault plan.

use std::collections::BTreeMap;

use quepa_pdm::{GlobalKey, Probability};

/// The kind of a p-relation edge (mirrors `quepa_aindex::RelationKind`
/// without depending on its representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModelKind {
    /// Identity: same real-world entity.
    Identity,
    /// Matching: related entities.
    Matching,
}

#[derive(Debug, Clone)]
struct ModelEdge {
    a: usize,
    b: usize,
    kind: ModelKind,
    prob: Probability,
    alive: bool,
}

impl ModelEdge {
    fn other(&self, n: usize) -> usize {
        if self.a == n {
            self.b
        } else {
            self.a
        }
    }
}

/// One augmented key as the model predicts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelAugmented {
    /// The related key.
    pub key: GlobalKey,
    /// Best walk-product probability within the hop budget.
    pub probability: Probability,
    /// First hop count achieving that probability.
    pub distance: usize,
}

/// The naive reference index.
#[derive(Debug, Clone, Default)]
pub struct ModelIndex {
    keys: Vec<GlobalKey>,
    ids: BTreeMap<GlobalKey, usize>,
    alive_node: Vec<bool>,
    edges: Vec<ModelEdge>,
    /// Per node: incident edge ids in creation order (the order the real
    /// index's adjacency preserves, and the order propagation reads).
    adjacency: Vec<Vec<usize>>,
    /// (min node, max node, kind) → edge id, for keep-higher dedup.
    pair: BTreeMap<(usize, usize, ModelKind), usize>,
}

impl ModelIndex {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, key: &GlobalKey) -> usize {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.keys.len();
        self.keys.push(key.clone());
        self.alive_node.push(true);
        self.adjacency.push(Vec::new());
        self.ids.insert(key.clone(), id);
        id
    }

    /// Adds or strengthens an edge; `None` for reflexive pairs. Duplicate
    /// edges keep the higher probability, exactly like the real index.
    fn add_edge(
        &mut self,
        a: usize,
        b: usize,
        kind: ModelKind,
        prob: Probability,
    ) -> Option<usize> {
        if a == b {
            return None;
        }
        let key = (a.min(b), a.max(b), kind);
        if let Some(&eid) = self.pair.get(&key) {
            if prob > self.edges[eid].prob {
                self.edges[eid].prob = prob;
            }
            return Some(eid);
        }
        let eid = self.edges.len();
        self.edges.push(ModelEdge { a: key.0, b: key.1, kind, prob, alive: true });
        self.adjacency[key.0].push(eid);
        self.adjacency[key.1].push(eid);
        self.pair.insert(key, eid);
        Some(eid)
    }

    /// The identity clique around `n`: `(other, probability)` in
    /// canonical neighbour-key order — the same order the real index
    /// iterates, so composed probability bits match exactly.
    fn identity_clique(&self, n: usize) -> Vec<(usize, Probability)> {
        let mut out: Vec<_> = self.adjacency[n]
            .iter()
            .map(|&eid| &self.edges[eid])
            .filter(|e| e.alive && e.kind == ModelKind::Identity)
            .filter(|e| self.alive_node[e.other(n)])
            .map(|e| (e.other(n), e.prob))
            .collect();
        out.sort_unstable_by(|x, y| self.keys[x.0].cmp(&self.keys[y.0]));
        out
    }

    /// The matchings of `n`, in canonical neighbour-key order.
    fn matchings(&self, n: usize) -> Vec<(usize, Probability)> {
        let mut out: Vec<_> = self.adjacency[n]
            .iter()
            .map(|&eid| &self.edges[eid])
            .filter(|e| e.alive && e.kind == ModelKind::Matching)
            .filter(|e| self.alive_node[e.other(n)])
            .map(|e| (e.other(n), e.prob))
            .collect();
        out.sort_unstable_by(|x, y| self.keys[x.0].cmp(&self.keys[y.0]));
        out
    }

    /// Inserts an identity p-relation `a ~_p b`: snapshot both cliques,
    /// link them (x∈A×{b}, {a}×y∈B, x∈A×y∈B), then propagate matchings
    /// across every new identity edge reading live state.
    pub fn insert_identity(&mut self, a: &GlobalKey, b: &GlobalKey, p: Probability) {
        let na = self.intern(a);
        let nb = self.intern(b);
        if na == nb {
            return;
        }
        let clique_a = self.identity_clique(na);
        let clique_b = self.identity_clique(nb);

        let Some(direct) = self.add_edge(na, nb, ModelKind::Identity, p) else { return };

        let mut new_identity_edges: Vec<(usize, usize, usize)> = vec![(na, nb, direct)];
        for &(x, p_xa) in &clique_a {
            if let Some(eid) = self.add_edge(x, nb, ModelKind::Identity, p_xa.and(p)) {
                new_identity_edges.push((x, nb, eid));
            }
        }
        for &(y, p_by) in &clique_b {
            if let Some(eid) = self.add_edge(na, y, ModelKind::Identity, p.and(p_by)) {
                new_identity_edges.push((na, y, eid));
            }
        }
        for &(x, p_xa) in &clique_a {
            for &(y, p_by) in &clique_b {
                if x == y {
                    continue;
                }
                if let Some(eid) = self.add_edge(x, y, ModelKind::Identity, p_xa.and(p).and(p_by)) {
                    new_identity_edges.push((x, y, eid));
                }
            }
        }

        // Consistency Condition, reading *live* state per new edge.
        for (x, y, id_edge) in new_identity_edges {
            let p_xy = self.edges[id_edge].prob;
            for (m, q) in self.matchings(x) {
                if m != y {
                    self.add_edge(m, y, ModelKind::Matching, q.and(p_xy));
                }
            }
            for (m, q) in self.matchings(y) {
                if m != x {
                    self.add_edge(m, x, ModelKind::Matching, q.and(p_xy));
                }
            }
        }
    }

    /// Inserts a matching p-relation `a ≡_p b` and spreads it across the
    /// identity cliques of both endpoints.
    pub fn insert_matching(&mut self, a: &GlobalKey, b: &GlobalKey, p: Probability) {
        let na = self.intern(a);
        let nb = self.intern(b);
        if na == nb {
            return;
        }
        let Some(_direct) = self.add_edge(na, nb, ModelKind::Matching, p) else { return };
        let clique_a = self.identity_clique(na);
        let clique_b = self.identity_clique(nb);
        // a ≡ y for y ∈ clique(b).
        let mut a_to: Vec<(usize, Probability)> = vec![(nb, p)];
        for &(y, p_by) in &clique_b {
            if y == na {
                continue;
            }
            let prob = p.and(p_by);
            if self.add_edge(na, y, ModelKind::Matching, prob).is_some() {
                a_to.push((y, prob));
            }
        }
        // x ≡ y for x ∈ clique(a) × the ys above.
        for &(x, p_xa) in &clique_a {
            for &(y, p_ay) in &a_to {
                if x != y {
                    self.add_edge(x, y, ModelKind::Matching, p_xa.and(p_ay));
                }
            }
        }
    }

    /// Removes a key: the node dies and every incident edge dies with it,
    /// but edges *inferred through* it between surviving nodes remain —
    /// exactly the real index's lazy-deletion semantics (`remove_object`).
    pub fn remove_key(&mut self, key: &GlobalKey) {
        let Some(&n) = self.ids.get(key) else { return };
        self.alive_node[n] = false;
        for &eid in &self.adjacency[n] {
            self.edges[eid].alive = false;
        }
    }

    /// Number of interned keys.
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All keys the model knows.
    pub fn keys(&self) -> impl Iterator<Item = &GlobalKey> {
        self.keys.iter()
    }

    /// The edge set in a canonical normal form: `(min key, max key, kind,
    /// probability bits)` — for differential comparison against the real
    /// index's `live_edges()`.
    pub fn edge_set(&self) -> std::collections::BTreeSet<(String, String, ModelKind, u64)> {
        self.edges
            .iter()
            .filter(|e| e.alive && self.alive_node[e.a] && self.alive_node[e.b])
            .map(|e| {
                let (ka, kb) = (self.keys[e.a].to_string(), self.keys[e.b].to_string());
                let (lo, hi) = if ka <= kb { (ka, kb) } else { (kb, ka) };
                (lo, hi, e.kind, e.prob.get().to_bits())
            })
            .collect()
    }

    /// **The augmentation operator**, as a layered dynamic program.
    ///
    /// `f[0][seed] = 1`; for each hop `h ≤ level + 1`,
    /// `f[h][n] = max(f[h-1][n], max over live edges (m,n) of f[h-1][m]·p)`.
    /// The answer is every non-seed node with `f[H][n]` defined, carrying
    /// `probability = f[H][n]` and `distance = min h with f[h][n] = f[H][n]`
    /// (tracked as the hop of the last strict improvement), ordered by
    /// probability descending then key ascending.
    pub fn augment(&self, seeds: &[GlobalKey], level: usize) -> Vec<ModelAugmented> {
        let n = self.keys.len();
        let mut best: Vec<Option<Probability>> = vec![None; n];
        let mut dist: Vec<usize> = vec![0; n];
        let mut is_seed = vec![false; n];
        for key in seeds {
            if let Some(&i) = self.ids.get(key) {
                if self.alive_node[i] {
                    best[i] = Some(Probability::ONE);
                    is_seed[i] = true;
                }
            }
        }
        let max_hops = level + 1;
        for hop in 1..=max_hops {
            // Strictly layered: hop h reads only f[h-1].
            let prev = best.clone();
            for e in self.edges.iter().filter(|e| e.alive) {
                if !self.alive_node[e.a] || !self.alive_node[e.b] {
                    continue;
                }
                for (m, to) in [(e.a, e.b), (e.b, e.a)] {
                    let Some(pm) = prev[m] else { continue };
                    let cand = pm.and(e.prob);
                    if best[to].is_none_or(|b| cand > b) {
                        best[to] = Some(cand);
                        dist[to] = hop;
                    }
                }
            }
        }
        let mut out: Vec<ModelAugmented> = (0..n)
            .filter(|&i| !is_seed[i] && self.alive_node[i])
            .filter_map(|i| {
                best[i].map(|probability| ModelAugmented {
                    key: self.keys[i].clone(),
                    probability,
                    distance: dist[i],
                })
            })
            .collect();
        out.sort_by(|x, y| y.probability.cmp(&x.probability).then_with(|| x.key.cmp(&y.key)));
        out
    }

    /// Per-seed hop distances (unweighted), for the ownership oracle: the
    /// owner of an augmented key is the lowest seed index whose hop
    /// distance to it is within `level + 1`.
    pub fn owners(&self, seeds: &[GlobalKey], level: usize) -> BTreeMap<GlobalKey, u32> {
        let max_hops = level + 1;
        let n = self.keys.len();
        let mut owner: Vec<Option<u32>> = vec![None; n];
        for (j, key) in seeds.iter().enumerate() {
            let Some(&start) = self.ids.get(key) else { continue };
            if !self.alive_node[start] {
                continue;
            }
            // Plain BFS from this seed.
            let mut hops: Vec<Option<usize>> = vec![None; n];
            hops[start] = Some(0);
            let mut frontier = vec![start];
            for h in 1..=max_hops {
                let mut next = Vec::new();
                for &m in &frontier {
                    for &eid in &self.adjacency[m] {
                        if !self.edges[eid].alive {
                            continue;
                        }
                        let to = self.edges[eid].other(m);
                        if self.alive_node[to] && hops[to].is_none() {
                            hops[to] = Some(h);
                            next.push(to);
                        }
                    }
                }
                frontier = next;
            }
            for i in 0..n {
                if hops[i].is_some() && owner[i].is_none() {
                    owner[i] = Some(j as u32);
                }
            }
        }
        let seed_ids: Vec<usize> = seeds.iter().filter_map(|k| self.ids.get(k).copied()).collect();
        (0..n)
            .filter(|i| !seed_ids.contains(i))
            .filter_map(|i| owner[i].map(|o| (self.keys[i].clone(), o)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_aindex::AIndex;

    fn key(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    fn p(v: f64) -> Probability {
        Probability::of(v)
    }

    /// Hand-checkable closure: a chain of identities forms a clique with
    /// product probabilities, and a matching spreads over it.
    #[test]
    fn closure_matches_paper_example() {
        let mut m = ModelIndex::new();
        m.insert_identity(&key("d1.c.a"), &key("d2.c.b"), p(0.9));
        m.insert_identity(&key("d2.c.b"), &key("d3.c.c"), p(0.8));
        // Transitivity: a ~ c with 0.8 · 0.9 (clique iteration order).
        assert_eq!(m.edge_count(), 3);
        m.insert_matching(&key("d1.c.a"), &key("d4.c.m"), p(0.5));
        // Consistency: m ≡ b and m ≡ c materialize too.
        assert_eq!(m.edge_count(), 6);
        let out = m.augment(&[key("d4.c.m")], 0);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].key, key("d1.c.a"));
        assert!((out[0].probability.get() - 0.5).abs() < 1e-12);
    }

    /// The model and the real index agree bit-for-bit on a mixed insert
    /// sequence — edge sets and augmented answers.
    #[test]
    fn agrees_with_real_index_on_mixed_sequence() {
        let inserts: Vec<(&str, &str, f64, bool)> = vec![
            ("d0.c.k0", "d1.c.k1", 0.9, true),
            ("d1.c.k1", "d2.c.k2", 0.85, true),
            ("d0.c.k3", "d1.c.k1", 0.7, false),
            ("d2.c.k2", "d2.c.k4", 0.6, false),
            ("d0.c.k0", "d2.c.k5", 0.95, true),
            ("d0.c.k3", "d2.c.k4", 0.8, false),
            ("d1.c.k1", "d0.c.k0", 0.99, true), // duplicate, keeps higher
        ];
        let mut real = AIndex::new();
        let mut model = ModelIndex::new();
        for &(a, b, prob, identity) in &inserts {
            let (a, b, prob) = (key(a), key(b), p(prob));
            if identity {
                real.insert_identity(&a, &b, prob);
                model.insert_identity(&a, &b, prob);
            } else {
                real.insert_matching(&a, &b, prob);
                model.insert_matching(&a, &b, prob);
            }
        }
        let real_edges: std::collections::BTreeSet<_> = real
            .live_edges()
            .into_iter()
            .map(|(a, b, kind, prob, _)| {
                let (a, b) = (a.to_string(), b.to_string());
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let kind = match kind {
                    quepa_pdm::RelationKind::Identity => ModelKind::Identity,
                    quepa_pdm::RelationKind::Matching => ModelKind::Matching,
                };
                (lo, hi, kind, prob.get().to_bits())
            })
            .collect();
        assert_eq!(real_edges, model.edge_set());

        for level in 0..3 {
            let seeds = [key("d0.c.k0"), key("d0.c.k3")];
            let real_out = real.augment(&seeds, level);
            let model_out = model.augment(&seeds, level);
            assert_eq!(real_out.len(), model_out.len(), "level {level}");
            for (r, m) in real_out.iter().zip(&model_out) {
                assert_eq!(r.key, m.key, "level {level}");
                assert_eq!(r.probability.get().to_bits(), m.probability.get().to_bits());
                assert_eq!(r.distance, m.distance);
            }
        }
    }

    #[test]
    fn seeds_are_excluded_and_unknown_seeds_ignored() {
        let mut m = ModelIndex::new();
        m.insert_matching(&key("d0.c.a"), &key("d1.c.b"), p(0.5));
        let out = m.augment(&[key("d0.c.a"), key("d9.c.ghost")], 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, key("d1.c.b"));
        assert_eq!(out[0].distance, 1);
    }

    #[test]
    fn ownership_is_lowest_seed_within_budget() {
        let mut m = ModelIndex::new();
        // s0 - x - y,  s1 - y
        m.insert_matching(&key("d0.c.s0"), &key("d1.c.x"), p(0.9));
        m.insert_matching(&key("d1.c.x"), &key("d1.c.y"), p(0.9));
        m.insert_matching(&key("d0.c.s1"), &key("d1.c.y"), p(0.9));
        let owners = m.owners(&[key("d0.c.s0"), key("d0.c.s1")], 0);
        // Budget 1 hop: x owned by seed 0; y reachable only from seed 1.
        assert_eq!(owners.get(&key("d1.c.x")), Some(&0));
        assert_eq!(owners.get(&key("d1.c.y")), Some(&1));
        let owners = m.owners(&[key("d0.c.s0"), key("d0.c.s1")], 1);
        // Budget 2: seed 0 reaches y too and is lower-indexed.
        assert_eq!(owners.get(&key("d1.c.y")), Some(&0));
    }
}
