//! The differential driver: run the real [`Quepa`] and the reference
//! model on the same scenario and hold them to bit-for-bit agreement.
//!
//! One [`check_scenario`] call sweeps every configuration point of the
//! scenario and folds in the system-level invariants:
//!
//! 1. **Model equality** — each config's [`AnswerNormalForm`] equals the
//!    model's prediction (augmented set with exact probabilities and
//!    distances, `missing` set with structured reasons). This subsumes
//!    all-augmenters-agree and cache-on == cache-off: every config is
//!    compared against the *same* prediction.
//! 2. **Original stability** — the local query returns the same objects
//!    under every config.
//! 3. **Lazy deletion accounting** — `lazily_deleted` equals the
//!    `NotFound` count, and a warm re-run on the same instance (phantoms
//!    now lazily deleted) equals the model re-run on a phantom-stripped
//!    graph: dead nodes take their incident edges with them, so paths
//!    *through* phantoms vanish and survivors' probabilities can drop.
//! 4. **Warm cache** — with a cache, a second identical search returns
//!    the same answer from cache (`cache_hits` covers the augmented set).
//! 5. **`augment_multi` == per-seed union** — the one-pass multi-seed
//!    BFS equals single-seed augmentation, and its ownership partition
//!    equals the model's lowest-seed-within-budget rule.
//! 6. **Metrics determinism** — twin instances produce bit-identical
//!    metrics snapshots (histograms are of *simulated* latency), and the
//!    store/cache sections are invariant under a thread-count change.
//! 7. **Retry accounting** — under a fault plan, per-store retry counters
//!    equal an independent replay of the plan's public `decide` stream;
//!    timeouts and breaker trips stay zero.
//! 8. **Removal quiescence** — the scenario's interleaved `remove_object`
//!    mutations are applied one at a time to a live instance, and after
//!    every single removal (a *quiesce point*) the overlay-served answer
//!    equals a reference model with the same removal prefix applied. The
//!    concurrent variant races readers against the removals and holds
//!    every in-flight answer to *some* removal prefix — the atomic
//!    shard-directory publication means no reader may observe a torn
//!    half-applied state.
//! 9. **Crash recovery** — scenarios carrying a `CrashSpec` also run
//!    the crash-point differential of [`crate::crash`]: a durable
//!    instance is killed at the seeded point (optionally leaving a torn
//!    or unacknowledged WAL record behind), recovered, and held to
//!    bit-for-bit agreement with a never-crashed twin.
//!
//! Every run builds *fresh* twin systems — lazy deletion mutates the
//! index, so instances are never reused across runs (except where reuse
//! is the point, as in 3 and 4).

use std::collections::BTreeMap;

use quepa_core::{
    pool_width, AnswerNormalForm, AugmentedAnswer, AugmenterKind, MissingKey, MissingReason, Quepa,
};
use quepa_pdm::{GlobalKey, Value};
use quepa_polystore::fault::call_identity;
use quepa_polystore::FaultDecision;

use crate::model::ModelAugmented;
use crate::scenario::{ConfigSpec, Scenario, MAX_ATTEMPTS};

/// A scenario that diverged from the model or broke an invariant.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Seed of the failing scenario.
    pub seed: u64,
    /// Human-readable diagnosis (which config, which invariant, both
    /// normal forms).
    pub message: String,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario seed {}: {}", self.seed, self.message)
    }
}

/// Statistics of a passing scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckReport {
    /// Configuration points swept.
    pub configs: usize,
    /// Augmented keys in the (model-predicted) answer.
    pub augmented: usize,
    /// Missing keys in the (model-predicted) answer.
    pub missing: usize,
    /// Whether a fault plan was active.
    pub faulted: bool,
}

/// Runs the full differential check. `Ok` carries run statistics; `Err`
/// carries the first divergence found.
pub fn check_scenario(scenario: &Scenario) -> Result<CheckReport, CheckFailure> {
    let fail = |message: String| CheckFailure { seed: scenario.seed, message };
    let database = scenario.query_database();
    let query = scenario.query();
    let model = scenario.build_model();

    let mut expected_original: Option<Vec<GlobalKey>> = None;
    let mut expected: Option<AnswerNormalForm> = None;
    let mut warm: Option<AnswerNormalForm> = None;
    let mut model_out: Vec<ModelAugmented> = Vec::new();

    for spec in &scenario.configs {
        let quepa = build_quepa(scenario, spec);
        let answer = search_answer(&quepa, scenario, &database, &query)
            .map_err(|e| fail(format!("config {}: search failed: {e}", describe(spec))))?;
        let original: Vec<GlobalKey> = answer.original.iter().map(|o| o.key().clone()).collect();

        // First config fixes the seeds; the model predicts from them.
        match &expected_original {
            None => {
                model_out = model.augment(&original, scenario.level);
                let predicted = predict_normal_form(scenario, &model_out);
                // The warm expectation: lazy deletion removes every
                // NotFound node *and its incident edges* from the index,
                // so re-augment a phantom-stripped model clone.
                let mut warm_model = model.clone();
                for m in predicted.missing.iter().filter(|m| m.is_not_found()) {
                    warm_model.remove_key(&m.key);
                }
                let warm_out = warm_model.augment(&original, scenario.level);
                warm = Some(predict_normal_form(scenario, &warm_out));
                expected = Some(predicted);
                expected_original = Some(original);
            }
            Some(first) => {
                if *first != original {
                    return Err(fail(format!(
                        "config {}: original answer differs across configs:\n  first: {:?}\n  now:   {:?}",
                        describe(spec),
                        first.iter().map(ToString::to_string).collect::<Vec<_>>(),
                        original.iter().map(ToString::to_string).collect::<Vec<_>>(),
                    )));
                }
            }
        }
        let expected = expected.as_ref().expect("set on the first config");

        let got = answer.normal_form();
        if got != *expected {
            return Err(fail(format!(
                "config {}: answer diverges from reference model\n--- real ---\n{got}--- model ---\n{expected}",
                describe(spec)
            )));
        }

        // Lazy-deletion accounting.
        let not_found = got.missing.iter().filter(|m| m.is_not_found()).count();
        if answer.lazily_deleted != not_found {
            return Err(fail(format!(
                "config {}: lazily_deleted = {} but NotFound missing = {}",
                describe(spec),
                answer.lazily_deleted,
                not_found
            )));
        }

        // Warm re-run on the same instance: phantoms are now lazily
        // deleted (along with their incident edges), so the answer must
        // match the phantom-stripped model; with a cache, the augmented
        // set must come back from cache.
        let again = search_answer(&quepa, scenario, &database, &query)
            .map_err(|e| fail(format!("config {}: warm re-run failed: {e}", describe(spec))))?;
        let warm_expected = warm.as_ref().expect("set on the first config");
        let warm_got = again.normal_form();
        if warm_got != *warm_expected {
            return Err(fail(format!(
                "config {}: warm re-run after lazy deletion diverges\n--- real ---\n{warm_got}--- expected ---\n{warm_expected}",
                describe(spec)
            )));
        }
        if spec.cache > 0 && !again.augmented.is_empty() && again.cache_hits < again.augmented.len()
        {
            return Err(fail(format!(
                "config {}: warm re-run hit cache {} times for {} augmented objects",
                describe(spec),
                again.cache_hits,
                again.augmented.len()
            )));
        }
    }

    let seeds = expected_original.expect("at least one config ran");
    let expected = expected.expect("at least one config ran");

    check_multi_seed(scenario, &seeds, &fail)?;
    check_metrics_determinism(scenario, &database, &query, &fail)?;
    check_retry_accounting(scenario, &database, &query, &model_out, &fail)?;
    check_removal_quiesce(scenario, &fail)?;
    check_pushdown_modes(scenario, &database, &query, &fail)?;
    // Invariant 9: scenarios carrying a crash plan also run the
    // crash-point recovery differential (no-op without one).
    crate::crash::check_crash_scenario(scenario)?;

    Ok(CheckReport {
        configs: scenario.configs.len(),
        augmented: expected.augmented.len(),
        missing: expected.missing.len(),
        faulted: scenario.fault.is_some(),
    })
}

/// The concurrent-serving differential check: `clients` identical queries
/// race on ONE shared instance per configuration point.
///
/// Lazy deletion makes the index a moving target under concurrency —
/// each racing query plans on either the original index snapshot or the
/// phantom-stripped one (the snapshot swap is atomic and one deletion
/// round reaches the fixed point) — so the serving invariants are:
///
/// 1. **Membership** — every concurrent answer equals either the cold or
///    the warm answer of a same-seed serial twin; nothing in between,
///    nothing else.
/// 2. **Settlement** — after the race, one more serial query on the
///    shared instance returns exactly the warm answer.
/// 3. **Metrics equality** — for clean points (no fault plan, no
///    phantoms, observability on, cache on), a fresh instance serving
///    `clients` concurrent queries produces a metrics snapshot
///    bit-identical to a fresh twin serving the same queries serially:
///    single-flight waiters account as cache hits, exactly one leader
///    per batch group pays the round trip and the miss.
///
/// Transient-fault scenarios are checked like every other: the fault
/// harness's per-identity streak counter is monotone and order-free
/// (read → decide → bump under one lock, never reset), so racing
/// clients split each identity's streak between them — the total
/// injected errors per identity equal the plan's streak regardless of
/// interleaving, and a retry budget that rides the streak out serially
/// also rides it out concurrently. No spurious exhausted-retries
/// answer is possible, which is what un-skipped these plans.
pub fn check_concurrent_scenario(
    scenario: &Scenario,
    clients: usize,
) -> Result<CheckReport, CheckFailure> {
    let fail = |message: String| CheckFailure { seed: scenario.seed, message };
    let database = scenario.query_database();
    let query = scenario.query();
    let mut report =
        CheckReport { configs: 0, augmented: 0, missing: 0, faulted: scenario.fault.is_some() };

    for spec in &scenario.configs {
        let search = |quepa: &Quepa, what: &str| -> Result<AnswerNormalForm, CheckFailure> {
            search_answer(quepa, scenario, &database, &query)
                .map(|a| a.normal_form())
                .map_err(|e| fail(format!("config {}: {what} failed: {e}", describe(spec))))
        };

        // The serial twin fixes the two legitimate index states.
        let twin = build_quepa(scenario, spec);
        let cold = search(&twin, "serial cold run")?;
        let warm = search(&twin, "serial warm run")?;
        if report.configs == 0 {
            report.augmented = cold.augmented.len();
            report.missing = cold.missing.len();
        }

        let shared = build_quepa(scenario, spec);
        let barrier = std::sync::Barrier::new(clients);
        let answers: Vec<Result<AnswerNormalForm, String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let shared = &shared;
                    let barrier = &barrier;
                    let database = &database;
                    let query = &query;
                    s.spawn(move || {
                        barrier.wait();
                        search_answer(shared, scenario, database, query)
                            .map(|a| a.normal_form())
                            .map_err(|e| e.to_string())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (i, answer) in answers.iter().enumerate() {
            let nf = answer.as_ref().map_err(|e| {
                fail(format!("config {}: concurrent client {i} failed: {e}", describe(spec)))
            })?;
            if *nf != cold && *nf != warm {
                return Err(fail(format!(
                    "config {}: concurrent client {i} answer is neither the serial cold nor warm answer\n--- got ---\n{nf}--- cold ---\n{cold}--- warm ---\n{warm}",
                    describe(spec)
                )));
            }
        }

        let settled = search(&shared, "post-race settle run")?;
        if settled != warm {
            return Err(fail(format!(
                "config {}: the shared instance did not settle on the warm answer after {clients} racing clients\n--- settled ---\n{settled}--- warm ---\n{warm}",
                describe(spec)
            )));
        }
        report.configs += 1;
    }

    check_concurrent_metrics(scenario, &database, &query, clients, &fail)?;
    check_removal_races(scenario, clients, &fail)?;
    Ok(report)
}

/// The configuration point of the removal checks: cache-less (so every
/// answer is re-planned from the live index) and varied by seed so the
/// whole smoke range exercises every augmenter against mutations.
fn removal_spec(scenario: &Scenario) -> ConfigSpec {
    let all = AugmenterKind::ALL;
    ConfigSpec {
        augmenter: all[(scenario.seed as usize) % all.len()],
        batch: 2,
        threads: 2,
        cache: 0,
        resilient: false,
        obs: false,
        pushdown: scenario.seed.is_multiple_of(2),
    }
}

/// Serial half of invariant 8: apply the scenario's removals one by one
/// to a live instance and differentially compare the answer against the
/// reference model at every quiesce point. This is what pins the delta
/// overlay: each `remove_object` lands as an overlay entry on exactly one
/// shard, and readers must merge it (dead node, dead incident edges)
/// bit-identically to a model that never had the key.
fn check_removal_quiesce(
    scenario: &Scenario,
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    // Fault plans make the prediction depend on retry interleaving and a
    // planted bug legitimately diverges from the model; both are covered
    // by their own checks.
    if scenario.removals.is_empty() || scenario.fault.is_some() || scenario.mutation.is_some() {
        return Ok(());
    }
    let database = scenario.query_database();
    let query = scenario.query();
    let spec = removal_spec(scenario);
    let quepa = build_quepa(scenario, &spec);

    // The cold run quiesces lazy deletion, so both sides start
    // phantom-free and later divergence is attributable to removals.
    let cold = search_answer(&quepa, scenario, &database, &query)
        .map_err(|e| fail(format!("removal quiesce cold run failed: {e}")))?;
    let original: Vec<GlobalKey> = cold.original.iter().map(|o| o.key().clone()).collect();
    let mut model = scenario.build_model();
    let predicted = predict_normal_form(scenario, &model.augment(&original, scenario.level));
    for m in predicted.missing.iter().filter(|m| m.is_not_found()) {
        model.remove_key(&m.key);
    }

    for (k, &(s, o)) in scenario.removals.iter().enumerate() {
        let key = scenario.key_of(s, o);
        quepa.update_index(|ix| ix.remove_object(&key));
        model.remove_key(&key);
        let want = predict_normal_form(scenario, &model.augment(&original, scenario.level));
        let got = search_answer(&quepa, scenario, &database, &query)
            .map_err(|e| fail(format!("removal quiesce point {k} search failed: {e}")))?
            .normal_form();
        if got != want {
            return Err(fail(format!(
                "quiesce point {k}: answer after removing {key} diverges from the model with the same removal prefix\n--- real ---\n{got}--- model ---\n{want}"
            )));
        }
    }
    Ok(())
}

/// Concurrent half of invariant 8: readers race `remove_object` calls on
/// one shared instance. Removals publish atomically (one shard-directory
/// swap each), so every racing answer must equal the model's prediction
/// for *some* prefix of the removal sequence, and the settled instance
/// must serve exactly the fully-removed state.
fn check_removal_races(
    scenario: &Scenario,
    clients: usize,
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    if scenario.removals.is_empty()
        || scenario.fault.is_some()
        || scenario.mutation.is_some()
        || clients < 2
    {
        return Ok(());
    }
    let database = scenario.query_database();
    let query = scenario.query();
    let spec = removal_spec(scenario);
    let shared = build_quepa(scenario, &spec);

    // Quiesce lazy deletion first so racing answers differ only by how
    // many removals their planning view has absorbed.
    let cold = search_answer(&shared, scenario, &database, &query)
        .map_err(|e| fail(format!("removal race cold run failed: {e}")))?;
    let original: Vec<GlobalKey> = cold.original.iter().map(|o| o.key().clone()).collect();
    let mut model = scenario.build_model();
    let predicted = predict_normal_form(scenario, &model.augment(&original, scenario.level));
    for m in predicted.missing.iter().filter(|m| m.is_not_found()) {
        model.remove_key(&m.key);
    }

    // `states[k]` is the expected answer with the first `k` removals in.
    let mut states: Vec<AnswerNormalForm> =
        vec![predict_normal_form(scenario, &model.augment(&original, scenario.level))];
    for &(s, o) in &scenario.removals {
        model.remove_key(&scenario.key_of(s, o));
        states.push(predict_normal_form(scenario, &model.augment(&original, scenario.level)));
    }

    let stop = std::sync::atomic::AtomicBool::new(false);
    let start = std::sync::Barrier::new(clients + 1);
    let answers: Vec<Result<Vec<AnswerNormalForm>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (shared, stop, start) = (&shared, &stop, &start);
                let (database, query) = (&database, &query);
                scope.spawn(move || {
                    start.wait();
                    let mut seen = Vec::new();
                    // At least one search each, then spin until the
                    // writer is done — interleaving with the removals.
                    loop {
                        match search_answer(shared, scenario, database, query) {
                            Ok(a) => seen.push(a.normal_form()),
                            Err(e) => return Err(e.to_string()),
                        }
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return Ok(seen);
                        }
                    }
                })
            })
            .collect();
        start.wait();
        for &(s, o) in &scenario.removals {
            let key = scenario.key_of(s, o);
            shared.update_index(|ix| ix.remove_object(&key));
            std::thread::yield_now();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("reader thread")).collect()
    });

    for (i, res) in answers.iter().enumerate() {
        let forms = res.as_ref().map_err(|e| fail(format!("racing reader {i} failed: {e}")))?;
        for nf in forms {
            if !states.contains(nf) {
                let prefixes = states
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("--- next prefix ---\n");
                return Err(fail(format!(
                    "racing reader {i} observed an answer matching no removal prefix — a torn or stale view\n--- got ---\n{nf}--- legal prefixes ---\n{prefixes}"
                )));
            }
        }
    }

    let settled = search_answer(&shared, scenario, &database, &query)
        .map_err(|e| fail(format!("removal race settle run failed: {e}")))?
        .normal_form();
    let last = states.last().expect("at least the zero-removal state");
    if settled != *last {
        return Err(fail(format!(
            "instance did not settle on the fully-removed state after racing {clients} readers\n--- settled ---\n{settled}--- expected ---\n{last}"
        )));
    }
    Ok(())
}

/// Invariant 3 of [`check_concurrent_scenario`]: concurrent-vs-serial
/// metrics equality on a clean configuration point.
fn check_concurrent_metrics(
    scenario: &Scenario,
    database: &str,
    query: &str,
    clients: usize,
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    // Filtered scenarios skip this invariant by design: single-flight
    // coalescing is disabled under a predicate (waiters cannot adopt a
    // leader's filtered partition) and rejected keys are refetched on
    // every run, so racing clients legitimately pay duplicate round
    // trips a serial twin never would.
    if scenario.fault.is_some() || scenario.filter.is_some() {
        return Ok(());
    }
    let Some(spec) = scenario.configs.iter().find(|c| c.obs && c.cache > 0) else {
        return Ok(());
    };
    // Phantoms mean lazy deletion: racing clients legitimately split
    // between index snapshots and the counters diverge by design.
    let probe = build_quepa(scenario, spec);
    let cold = probe
        .augmented_search(database, query, scenario.level)
        .map_err(|e| fail(format!("metrics probe run failed: {e}")))?;
    if cold.normal_form().missing.iter().any(|m| m.is_not_found()) {
        return Ok(());
    }

    let concurrent = build_quepa(scenario, spec);
    let barrier = std::sync::Barrier::new(clients);
    let errors: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let concurrent = &concurrent;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    concurrent
                        .augmented_search(database, query, scenario.level)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().expect("client thread").err()).collect()
    });
    if let Some(e) = errors.first() {
        return Err(fail(format!("concurrent metrics run failed: {e}")));
    }

    let serial = build_quepa(scenario, spec);
    for _ in 0..clients {
        serial
            .augmented_search(database, query, scenario.level)
            .map_err(|e| fail(format!("serial metrics run failed: {e}")))?;
    }

    let got = concurrent.metrics_snapshot();
    let want = serial.metrics_snapshot();
    if got != want {
        return Err(fail(format!(
            "config {}: metrics of {clients} concurrent clients differ from {clients} serial runs\n--- concurrent ---\n{got:?}\n--- serial ---\n{want:?}",
            describe(spec)
        )));
    }
    Ok(())
}

/// The pushdown-vs-fallback differential: when the scenario carries a
/// filter, the same configuration point runs on fresh twin instances
/// with the planner's pushdown forced on and forced off. Native
/// `fetch_where` and the client-side fallback must agree bit-for-bit:
/// the cold answer, the warm answer after lazy deletion, and the warm
/// cache-hit count (only matched objects are ever cached, on either
/// path). Per-store gates from `scenario.nopush` stay in place on both
/// twins — the toggle under test is the planner's global switch.
fn check_pushdown_modes(
    scenario: &Scenario,
    database: &str,
    query: &str,
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    if scenario.filter.is_none() {
        return Ok(());
    }
    let base = scenario.configs.first().expect("scenarios carry at least one config");
    let mode = |p: bool| if p { "pushdown" } else { "fallback" };
    let run = |pushdown: bool| -> Result<(AnswerNormalForm, AnswerNormalForm, usize), CheckFailure> {
        let spec = ConfigSpec { pushdown, ..*base };
        let quepa = build_quepa(scenario, &spec);
        let cold = search_answer(&quepa, scenario, database, query).map_err(|e| {
            fail(format!("pushdown-mode cold run ({}) failed: {e}", mode(pushdown)))
        })?;
        let warm = search_answer(&quepa, scenario, database, query).map_err(|e| {
            fail(format!("pushdown-mode warm run ({}) failed: {e}", mode(pushdown)))
        })?;
        Ok((cold.normal_form(), warm.normal_form(), warm.cache_hits))
    };
    let (on_cold, on_warm, on_hits) = run(true)?;
    let (off_cold, off_warm, off_hits) = run(false)?;
    if on_cold != off_cold {
        return Err(fail(format!(
            "filtered cold answers diverge between pushdown and fallback\n--- pushdown ---\n{on_cold}--- fallback ---\n{off_cold}"
        )));
    }
    if on_warm != off_warm {
        return Err(fail(format!(
            "filtered warm answers diverge between pushdown and fallback\n--- pushdown ---\n{on_warm}--- fallback ---\n{off_warm}"
        )));
    }
    if on_hits != off_hits {
        return Err(fail(format!(
            "warm cache hits diverge between pushdown ({on_hits}) and fallback ({off_hits}) — \
             the two paths cached different object sets"
        )));
    }
    Ok(())
}

/// Runs the scenario's search on one instance: filtered through
/// [`Quepa::augmented_search_filtered`] when the scenario carries a
/// pushdown predicate, the plain path otherwise. Every differential
/// below flows through this, so the filtered and unfiltered regimes
/// exercise the same invariants.
fn search_answer(
    quepa: &Quepa,
    scenario: &Scenario,
    database: &str,
    query: &str,
) -> quepa_core::Result<AugmentedAnswer> {
    match scenario.pushdown_filter() {
        Some(f) => quepa.augmented_search_filtered(database, query, scenario.level, &f),
        None => quepa.augmented_search(database, query, scenario.level),
    }
}

/// Builds a fresh system under test for one config point. The fetch pool
/// is sized through the shared [`pool_width`] clamp — the same one the
/// `quepa-serve` front end uses — so the concurrent harness races clients
/// against the exact pool geometry the server runs with.
fn build_quepa(scenario: &Scenario, spec: &ConfigSpec) -> Quepa {
    let quepa = Quepa::with_config(
        scenario.build_wrapped_polystore(),
        scenario.build_index(),
        scenario.config_of(spec),
    );
    quepa.set_pool_width(pool_width());
    quepa
}

fn describe(spec: &ConfigSpec) -> String {
    format!(
        "{} batch={} threads={} cache={}{}{}{}",
        spec.augmenter.name(),
        spec.batch,
        spec.threads,
        spec.cache,
        if spec.resilient { " resilient" } else { "" },
        if spec.obs { " obs" } else { "" },
        if spec.pushdown { "" } else { " push-off" },
    )
}

/// Classifies the model's reachable set into the expected answer: keys on
/// down stores are `Unreachable` (after every retry), phantoms are
/// `NotFound`, keys failing the scenario's (key-only) filter are silently
/// excluded, and the rest are augmented objects.
///
/// The filter is applied *last*: the engine never pre-filters on key
/// text, so a down store surfaces as `Unreachable` and a phantom as
/// `NotFound` even for keys the predicate would drop — existence and
/// reachability are established before the filter partitions anything.
fn predict_normal_form(scenario: &Scenario, model_out: &[ModelAugmented]) -> AnswerNormalForm {
    let down: Vec<usize> = scenario.fault.as_ref().map(|f| f.outages.clone()).unwrap_or_default();
    let filter = scenario.pushdown_filter();
    let mut augmented = Vec::new();
    let mut missing = Vec::new();
    for entry in model_out {
        let (store, obj) = locate(scenario, &entry.key)
            .expect("model keys come from the scenario's relation endpoints");
        if down.contains(&store) {
            missing.push(MissingKey {
                key: entry.key.clone(),
                reason: MissingReason::Unreachable {
                    database: entry.key.database().clone(),
                    attempts: MAX_ATTEMPTS,
                },
            });
        } else if scenario.is_phantom(store, obj) {
            missing.push(MissingKey::not_found(entry.key.clone()));
        } else if filter
            .as_ref()
            .is_some_and(|f| !f.matches(entry.key.key().as_str(), &Value::Null))
        {
            // Exists but fails the predicate: rejected server- or
            // client-side, and rejected keys appear in neither the
            // augmented set nor `missing`.
        } else {
            augmented.push((entry.key.clone(), entry.probability, entry.distance));
        }
    }
    AnswerNormalForm::from_parts(augmented, missing)
}

/// Maps a generated key back to its `(store, object)` address.
fn locate(scenario: &Scenario, key: &GlobalKey) -> Option<(usize, usize)> {
    let store: usize = key.database().as_str().strip_prefix("db")?.parse().ok()?;
    if store >= scenario.stores.len() {
        return None;
    }
    let local = key.key().as_str();
    let obj: usize = local.get(1..)?.parse().ok()?;
    Some((store, obj))
}

/// Invariant 5: one-pass multi-seed augmentation equals the per-seed
/// construction, and ownership equals the model's rule.
fn check_multi_seed(
    scenario: &Scenario,
    seeds: &[GlobalKey],
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    let index = scenario.build_index();
    let single = index.augment(seeds, scenario.level);
    let (multi, owners) = index.augment_multi(seeds, scenario.level);
    if single != multi {
        return Err(fail(format!(
            "augment_multi canonical answer differs from augment: {} vs {} keys",
            multi.len(),
            single.len()
        )));
    }
    let model_owners = scenario.build_model().owners(seeds, scenario.level);
    // Under a planted mutation the real index legitimately differs from
    // the model; the per-config sweep is the catcher there.
    if scenario.mutation.is_none() {
        for (entry, &owner) in multi.iter().zip(&owners) {
            match model_owners.get(&entry.key) {
                Some(&expected) if expected == owner => {}
                other => {
                    return Err(fail(format!(
                        "ownership of {}: real owner seed #{owner}, model says {:?}",
                        entry.key, other
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Invariant 6: metrics snapshots are deterministic — twin instances
/// agree bit-for-bit, and the store/cache sections are invariant under a
/// different thread count (stage span counts legitimately scale with the
/// worker pool, so stages are excluded from the cross-thread half).
fn check_metrics_determinism(
    scenario: &Scenario,
    database: &str,
    query: &str,
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    let Some(spec) = scenario.configs.iter().find(|c| c.obs) else { return Ok(()) };
    let run = |spec: &ConfigSpec| -> Result<quepa_core::MetricsSnapshot, CheckFailure> {
        let quepa = build_quepa(scenario, spec);
        search_answer(&quepa, scenario, database, query)
            .map_err(|e| fail(format!("metrics run failed: {e}")))?;
        Ok(quepa.metrics_snapshot())
    };
    let first = run(spec)?;
    let twin = run(spec)?;
    if first != twin {
        return Err(fail(format!(
            "metrics snapshots of twin instances differ\n--- first ---\n{first:?}\n--- twin ---\n{twin:?}"
        )));
    }
    let other_threads = ConfigSpec { threads: spec.threads % 4 + 1, ..*spec };
    let rethreaded = run(&other_threads)?;
    if first.stores != rethreaded.stores || first.cache != rethreaded.cache {
        return Err(fail(format!(
            "store/cache metrics changed with thread count {} -> {}\n--- base ---\n{:?} {:?}\n--- rethreaded ---\n{:?} {:?}",
            spec.threads, other_threads.threads, first.stores, first.cache, rethreaded.stores, rethreaded.cache
        )));
    }
    Ok(())
}

/// Invariant 7: per-store retry counters equal an independent replay of
/// the fault plan through its public `decide` stream.
fn check_retry_accounting(
    scenario: &Scenario,
    database: &str,
    query: &str,
    model_out: &[ModelAugmented],
    fail: &impl Fn(String) -> CheckFailure,
) -> Result<(), CheckFailure> {
    let Some(plan) = scenario.fault_plan() else { return Ok(()) };
    // A sequential, cache-less run: every augmented key is fetched
    // exactly once through the single-key resilient path, whose call
    // identity is public — the replay below mirrors it. Deliberately
    // unfiltered even when the scenario carries a predicate: the replay
    // assumes one single-key call per augmented key, which only the
    // plain path guarantees (the filtered path shares the same fault
    // identities, and is held to them by the fault-identity unit tests
    // and the filtered scenario sweep).
    let spec = ConfigSpec {
        augmenter: AugmenterKind::Sequential,
        batch: 1,
        threads: 1,
        cache: 0,
        resilient: true,
        obs: false,
        pushdown: true,
    };
    let quepa = build_quepa(scenario, &spec);
    quepa
        .augmented_search(database, query, scenario.level)
        .map_err(|e| fail(format!("retry accounting run failed: {e}")))?;
    let snapshot = quepa.metrics_snapshot();

    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    for entry in model_out {
        let (store, _) = locate(scenario, &entry.key).expect("scenario key");
        if store == scenario.query_store {
            continue; // the query target is never fault-wrapped
        }
        let db = Scenario::store_name(store);
        let retries = if plan.is_down(&db) {
            (MAX_ATTEMPTS - 1) as u64
        } else {
            let identity = call_identity(entry.key.collection(), std::iter::once(entry.key.key()));
            let mut streak = 0u64;
            for attempt in 0..MAX_ATTEMPTS {
                match plan.decide(&db, identity, attempt) {
                    FaultDecision::Transient => streak += 1,
                    _ => break,
                }
            }
            streak
        };
        if retries > 0 {
            *expected.entry(db).or_default() += retries;
        }
    }

    for (db, &want) in &expected {
        let got = snapshot.stores.get(db).map(|m| m.retries).unwrap_or(0);
        if got != want {
            return Err(fail(format!(
                "retry counter of {db}: real {got}, fault-plan replay predicts {want}"
            )));
        }
    }
    for (db, metrics) in &snapshot.stores {
        if !expected.contains_key(db) && metrics.retries != 0 {
            return Err(fail(format!(
                "unexpected retries on {db}: {} (replay predicts none)",
                metrics.retries
            )));
        }
        if metrics.timeouts != 0 || metrics.breaker_trips != 0 || metrics.breaker_rejections != 0 {
            return Err(fail(format!(
                "{db}: timeouts={} breaker_trips={} breaker_rejections={} — the harness fault space allows none",
                metrics.timeouts, metrics.breaker_trips, metrics.breaker_rejections
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Mutation;

    /// A spread of seeds passes the full differential check.
    #[test]
    fn clean_scenarios_pass() {
        for seed in 0..12u64 {
            let scenario = Scenario::generate(seed);
            if let Err(e) = check_scenario(&scenario) {
                panic!("seed {seed} failed:\n{e}");
            }
        }
    }

    /// A spread of seeds also passes the concurrent serving check.
    #[test]
    fn clean_scenarios_pass_concurrently() {
        for seed in 0..6u64 {
            let scenario = Scenario::generate(seed);
            if let Err(e) = check_concurrent_scenario(&scenario, 4) {
                panic!("seed {seed} failed concurrently:\n{e}");
            }
        }
    }

    /// Forced removals over real relation endpoints pass both the serial
    /// quiesce-point differential and the racing-readers check — the
    /// delta-overlay acceptance test (generated removals only reference
    /// interned keys by chance; these always hit live index nodes).
    #[test]
    fn forced_removals_quiesce_and_race() {
        let mut checked = 0;
        for seed in 0..20u64 {
            let mut scenario = Scenario::generate(seed);
            if scenario.relations.len() < 2 {
                continue;
            }
            scenario.fault = None;
            scenario.removals = scenario.relations.iter().take(2).map(|r| r.a).collect();
            if let Err(e) = check_scenario(&scenario) {
                panic!("seed {seed} failed the quiesce differential:\n{e}");
            }
            if let Err(e) = check_concurrent_scenario(&scenario, 4) {
                panic!("seed {seed} failed the removal race:\n{e}");
            }
            checked += 1;
            if checked == 5 {
                break;
            }
        }
        assert!(checked >= 3, "not enough removal scenarios exercised: {checked}");
    }

    /// Forcing a predicate onto generated scenarios exercises the
    /// filtered path end to end: pushdown-vs-fallback twins, a gated
    /// store falling back per-planner-decision, mixed on/off configs,
    /// and the concurrent regime must all stay bit-identical.
    #[test]
    fn forced_filters_pass_serial_and_concurrent() {
        use quepa_pdm::{PushOp, Pushdown};
        let mut checked = 0;
        for seed in 100..130u64 {
            let mut scenario = Scenario::generate(seed);
            if scenario.filter.is_some() {
                continue; // this test wants full control of the filter
            }
            // Contains is case-insensitive and digit "1" splits every
            // store's keyspace, so matched and rejected are both
            // populated on each store.
            scenario.filter = Some(Pushdown::key(PushOp::Contains, "1").to_string());
            scenario.nopush = vec![1];
            for (i, c) in scenario.configs.iter_mut().enumerate() {
                c.pushdown = i % 2 == 0;
            }
            if let Err(e) = check_scenario(&scenario) {
                panic!("seed {seed} failed with a forced filter:\n{e}");
            }
            if let Err(e) = check_concurrent_scenario(&scenario, 4) {
                panic!("seed {seed} failed concurrently with a forced filter:\n{e}");
            }
            checked += 1;
            if checked == 4 {
                break;
            }
        }
        assert!(checked >= 3, "not enough forced-filter scenarios exercised: {checked}");
    }

    /// A fault plan plus a filter: faulted pushdown round trips must
    /// fall back to per-key fetches with unchanged fault identities, so
    /// outage keys land `Unreachable` and the filtered answer still
    /// matches the model bit-for-bit.
    #[test]
    fn faulted_filters_fall_back_and_pass() {
        use quepa_pdm::{PushOp, Pushdown};
        let mut checked = 0;
        for seed in 0..60u64 {
            let mut scenario = Scenario::generate(seed);
            if scenario.fault.as_ref().is_none_or(|f| f.outages.is_empty()) {
                continue;
            }
            scenario.filter = Some(Pushdown::key(PushOp::Contains, "1").to_string());
            scenario.nopush = Vec::new();
            for c in &mut scenario.configs {
                c.pushdown = true;
            }
            if let Err(e) = check_scenario(&scenario) {
                panic!("seed {seed} failed the faulted-filter check:\n{e}");
            }
            checked += 1;
            if checked == 3 {
                break;
            }
        }
        assert!(checked >= 2, "not enough faulted-filter scenarios exercised: {checked}");
    }

    /// A planted index mutation is caught by the sweep on at least one of
    /// a handful of seeds — the harness's own acceptance test.
    #[test]
    fn planted_mutation_is_caught() {
        let mut caught = 0;
        for seed in 0..20u64 {
            let mut scenario = Scenario::generate(seed);
            if scenario.relations.is_empty() {
                continue;
            }
            scenario.mutation = Some(Mutation::DropRelation(seed as usize));
            if check_scenario(&scenario).is_err() {
                caught += 1;
            }
        }
        assert!(caught > 0, "no planted mutation was detected across 20 seeds");
    }
}
