//! Scenario generation, serialization and materialization.
//!
//! A [`Scenario`] is the *entire* input of one differential check, fully
//! determined by a `u64` seed: the polystore topology (store kinds,
//! deployment, population sizes), the p-relations of the A' index
//! (including references to *phantom* objects that exist only in the
//! index — the lazy-deletion trigger), the local query, the
//! configuration points to sweep, and an optional fault plan. Everything
//! derives from forked [`SplitMix`] sub-streams, so tweaking the fault
//! plan never reshuffles the topology.
//!
//! Scenarios serialize to a line-based `.scenario` text format and parse
//! back losslessly — a failing run is replayable from the file alone
//! (`quepa-check --replay fail.scenario`).

use std::sync::Arc;
use std::time::Duration;

use quepa_aindex::AIndex;
use quepa_core::{AugmenterKind, DegradeMode, QuepaConfig, ResilienceConfig};
use quepa_docstore::DocumentDb;
use quepa_graphstore::GraphDb;
use quepa_kvstore::KvStore;
use quepa_pdm::{GlobalKey, Probability, PushOp, Pushdown};
use quepa_polystore::retry::{BreakerConfig, RetryPolicy};
use quepa_polystore::{
    Connector, Deployment, DocumentConnector, FaultPlan, FaultyConnector, GraphConnector,
    KvConnector, Polystore, PushdownGate, RelationalConnector,
};
use quepa_relstore::Database;
use quepa_workload::hostile::{HostileTopology, TopologyFamily};
use quepa_workload::queries::query_for;

use crate::model::ModelIndex;
use crate::rng::{fnv, mix, SplitMix};

pub use quepa_polystore::StoreKind;

/// Retry attempts of the harness's resilient configuration. Transient
/// fault streaks are generated strictly shorter, so retries always ride
/// them out and only *outages* surface in `missing` — keeping the
/// expected answer independent of how an augmenter batches its calls.
pub const MAX_ATTEMPTS: u32 = 4;

/// One store in the generated polystore: its kind and how many objects
/// the seeded population hook creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSpec {
    /// Which of the four store kinds.
    pub kind: StoreKind,
    /// Population size (objects `0..objects`).
    pub objects: usize,
}

/// One p-relation of the A' index. Endpoints address `(store index,
/// object index)`; an object index `>= objects` of its store references a
/// **phantom**: a key the index knows but the store does not hold, which
/// the real system must report as `NotFound` and lazily delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationSpec {
    /// First endpoint.
    pub a: (usize, usize),
    /// Second endpoint.
    pub b: (usize, usize),
    /// Identity (true) or matching (false).
    pub identity: bool,
    /// Probability in thousandths (1..=1000).
    pub prob_millis: u32,
}

/// One `QuepaConfig` point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigSpec {
    /// The augmenter under test.
    pub augmenter: AugmenterKind,
    /// `BATCH_SIZE`.
    pub batch: usize,
    /// `THREADS_SIZE`.
    pub threads: usize,
    /// LRU capacity (0 disables caching).
    pub cache: usize,
    /// Fast-retry partial-degradation resilience (true) or the trivial
    /// pass-through policy (false). Always true when a fault plan is
    /// present.
    pub resilient: bool,
    /// Observability layer on.
    pub obs: bool,
    /// `PUSHDOWN` knob: whether the planner may push the scenario's
    /// filter into stores. Inert when the scenario carries no filter;
    /// with one, the differential holds answers bit-identical either way.
    pub pushdown: bool,
}

/// The fault plan of a chaos run, in harness-equalizable form: transient
/// streaks short enough to always be ridden out, latency spikes, and hard
/// outages of non-target stores. No timeouts (their per-identity draws
/// would make the missing-set depend on batch composition) and no breaker
/// (its trip state would depend on call order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the [`FaultPlan`]'s own deterministic streams.
    pub seed: u64,
    /// Transient-failure rate in percent.
    pub transient_pct: u32,
    /// Max consecutive transient failures (strictly < [`MAX_ATTEMPTS`]).
    pub max_streak: u32,
    /// Latency-spike rate in percent.
    pub spike_pct: u32,
    /// Store indices that are hard-down (never includes the query store).
    pub outages: Vec<usize>,
}

/// A deliberately planted bug, injected into the *real* side only — the
/// harness's own acceptance test: the driver must catch it and shrink the
/// scenario to a minimal reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Silently drop relation `i % relations.len()` when building the
    /// real A' index (models a lost edge in the CSR build).
    DropRelation(usize),
    /// Silently drop the last `n` records of the WAL tail during
    /// recovery (models a broken replay cursor). Caught by the crash
    /// differential: the recovered instance no longer matches its
    /// never-crashed twin.
    SkipWalTail(usize),
}

/// A seeded crash plan: run the scenario's mutation stream against a
/// *durable* instance, kill it at a chosen point, recover, and hold the
/// recovered instance to bit-for-bit agreement with a never-crashed
/// volatile twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Kill after this many mutations were durably applied (clamped to
    /// the stream length).
    pub after_ops: usize,
    /// Append a torn (incomplete) final record to the WAL after the
    /// kill — the shape an in-flight write leaves behind. Recovery must
    /// truncate it.
    pub torn_tail: bool,
    /// Force a checkpoint cut every `n` applied mutations (`0` leaves
    /// cuts to the compaction trigger alone).
    pub checkpoint_every: usize,
    /// The crash strikes *between* WAL append and in-memory apply: the
    /// next record is durable in the log but was never acknowledged.
    /// Recovery must replay it — the recovered state runs one op
    /// *ahead* of what the crashed instance ever served.
    pub partial: bool,
}

/// A complete generated scenario. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed everything derives from.
    pub seed: u64,
    /// Network deployment (store latency model).
    pub deployment: Deployment,
    /// The stores, in registration order; store `i` is named `db{i}`.
    pub stores: Vec<StoreSpec>,
    /// The p-relations inserted into the A' index, in order.
    pub relations: Vec<RelationSpec>,
    /// Index of the store the local query targets.
    pub query_store: usize,
    /// Result size the native query asks for.
    pub query_size: usize,
    /// Augmentation level.
    pub level: usize,
    /// Configuration points to sweep (all six augmenters).
    pub configs: Vec<ConfigSpec>,
    /// Optional fault plan.
    pub fault: Option<FaultSpec>,
    /// Interleaved `remove_object` mutations applied to the live index
    /// *between* (serial check) and *during* (racing check) augmentations.
    /// Endpoints address `(store, object)` like [`RelationSpec`] and may
    /// reference phantoms or keys the index never interned.
    pub removals: Vec<(usize, usize)>,
    /// Optional crash plan — when present, the crash-point differential
    /// rides along with the standard sweep.
    pub crash: Option<CrashSpec>,
    /// Optional pushdown filter, in [`quepa_pdm::Pushdown`] canonical
    /// text form. Always **key-only**, so the model side can evaluate it
    /// without fetching values. `None` runs the sweep unfiltered.
    pub filter: Option<String>,
    /// Store indices whose native pushdown is hidden behind a
    /// [`PushdownGate`] — the planner must fall back to fetch-all there,
    /// and the answers must not change.
    pub nopush: Vec<usize>,
    /// Optional planted bug (never generated; set by `--inject-bug`).
    pub mutation: Option<Mutation>,
    /// The adversarial topology family this scenario instantiates, if it
    /// came from [`Scenario::generate_hostile`]. Provenance metadata: it
    /// rides through shrinking and the `.scenario` file format so a
    /// shrunk hostile reproduction still says which family found it.
    pub family: Option<TopologyFamily>,
}

impl Scenario {
    /// Generates the scenario fully determined by `seed`.
    pub fn generate(seed: u64) -> Scenario {
        let root = SplitMix::new(seed);

        let mut topo = root.fork("topology");
        let n_stores = if topo.chance(10) { topo.range(7, 12) } else { topo.range(1, 6) };
        let kinds =
            [StoreKind::KeyValue, StoreKind::Relational, StoreKind::Document, StoreKind::Graph];
        let stores: Vec<StoreSpec> = (0..n_stores)
            .map(|_| StoreSpec { kind: *topo.pick(&kinds), objects: topo.range(4, 12) })
            .collect();
        let deployment = match topo.below(20) {
            0 => Deployment::Distributed,
            1..=3 => Deployment::Centralized,
            _ => Deployment::InProcess,
        };

        let mut rels = root.fork("relations");
        let total_objects: usize = stores.iter().map(|s| s.objects).sum();
        let n_relations = rels.range(total_objects / 2, (2 * total_objects).min(60));
        let relations: Vec<RelationSpec> = (0..n_relations)
            .map(|_| {
                let pick_end = |rng: &mut SplitMix| {
                    let s = rng.below(n_stores);
                    // One phantom slot per store: index == objects.
                    (s, rng.below(stores[s].objects + 1))
                };
                RelationSpec {
                    a: pick_end(&mut rels),
                    b: pick_end(&mut rels),
                    identity: rels.chance(40),
                    prob_millis: rels.range(100, 1000) as u32,
                }
            })
            .collect();

        let mut query = root.fork("query");
        let query_store = query.below(n_stores);
        let max_size = stores[query_store].objects;
        let query_size =
            if query.chance(20) { max_size + query.range(1, 4) } else { query.range(1, max_size) };
        let level = query.below(4);

        let mut faults = root.fork("faults");
        let fault = if faults.chance(40) {
            let fault_seed = faults.next_u64();
            let transient_pct = faults.range(0, 30) as u32;
            let max_streak = faults.range(1, (MAX_ATTEMPTS - 1) as usize) as u32;
            let spike_pct = faults.range(0, 8) as u32;
            let outages: Vec<usize> =
                (0..n_stores).filter(|&s| s != query_store && faults.chance(15)).collect();
            Some(FaultSpec { seed: fault_seed, transient_pct, max_streak, spike_pct, outages })
        } else {
            None
        };

        let mut cfg = root.fork("configs");
        let mut configs: Vec<ConfigSpec> = AugmenterKind::ALL
            .iter()
            .map(|&augmenter| ConfigSpec {
                augmenter,
                batch: cfg.range(1, 8),
                threads: cfg.range(1, 4),
                cache: if cfg.chance(50) { 4096 } else { 0 },
                resilient: fault.is_some() || cfg.chance(30),
                obs: cfg.chance(40),
                pushdown: true,
            })
            .collect();

        // Forked last so adding removals never reshuffled older streams —
        // historical seeds keep their topology/query/fault draws.
        let mut rm = root.fork("removals");
        let removals: Vec<(usize, usize)> = if rm.chance(35) {
            (0..rm.range(1, 3))
                .map(|_| {
                    let s = rm.below(n_stores);
                    (s, rm.below(stores[s].objects + 1))
                })
                .collect()
        } else {
            Vec::new()
        };

        // Crash plans get their own labelled stream, forked after every
        // older one for the same reason as removals: historical seeds
        // keep their draws.
        let mut cr = root.fork("crash");
        let crash = if cr.chance(30) {
            let total = relations.len() + removals.len();
            Some(CrashSpec {
                after_ops: cr.below(total + 1),
                torn_tail: cr.chance(35),
                checkpoint_every: if cr.chance(50) { cr.range(1, 6) } else { 0 },
                partial: cr.chance(40),
            })
        } else {
            None
        };

        // Pushdown draws fork last, like removals and crash before them:
        // a key-only filter on ~2 in 5 scenarios, per-config PUSHDOWN
        // knob, and a few stores whose native path is gated off so the
        // fetch-all fallback stays covered under the same answers.
        let mut pd = root.fork("pushdown");
        let filter = pd.chance(45).then(|| filter_text(&mut pd));
        let mut nopush = Vec::new();
        if filter.is_some() {
            for c in &mut configs {
                c.pushdown = pd.chance(60);
            }
            nopush = (0..n_stores).filter(|_| pd.chance(30)).collect();
        }

        Scenario {
            seed,
            deployment,
            stores,
            relations,
            query_store,
            query_size,
            level,
            configs,
            fault,
            removals,
            crash,
            filter,
            nopush,
            mutation: None,
            family: None,
        }
    }

    /// Generates a differential-check scenario whose index topology is an
    /// adversarial [`TopologyFamily`] instance instead of the uniform
    /// random graph: a check-sized supernode, one full-depth chain, or a
    /// handful of identity-clique clusters, mapped onto ordinary stores.
    ///
    /// Topology-local object `i` maps to `(store i % n, object i / n)`,
    /// so the standard naming, phantom and removal machinery apply
    /// unchanged. The query always targets store 0 — object 0 (the hub /
    /// first chain head / first cluster representative) is local object 0
    /// there, so every local result set contains the family's focal
    /// object. Supernode scenarios always remove the hub (the removal
    /// races pivot on it) and draw crash plans at an elevated rate (crash
    /// differential over the hub's shard).
    pub fn generate_hostile(family: TopologyFamily, seed: u64) -> Scenario {
        let root = SplitMix::new(seed);

        let mut topo = root.fork("hostile-topology");
        let scale = match family {
            TopologyFamily::Supernode => topo.range(24, 56),
            TopologyFamily::DeepChain => quepa_workload::hostile::DEEP_CHAIN_DEPTH,
            TopologyFamily::NearDup => topo.range(24, 40),
        };
        let shape: HostileTopology = family.generate(scale, mix(seed, fnv(family.name().as_bytes())));
        let n_stores = topo.range(2, 4);
        let kinds =
            [StoreKind::KeyValue, StoreKind::Relational, StoreKind::Document, StoreKind::Graph];
        let mut stores: Vec<StoreSpec> =
            (0..n_stores).map(|_| StoreSpec { kind: *topo.pick(&kinds), objects: 0 }).collect();
        for i in 0..shape.objects {
            stores[i % n_stores].objects += 1;
        }
        let deployment = match topo.below(10) {
            0 => Deployment::Distributed,
            1..=2 => Deployment::Centralized,
            _ => Deployment::InProcess,
        };
        let locate = |i: usize| (i % n_stores, i / n_stores);
        let mut relations: Vec<RelationSpec> = shape
            .relations
            .iter()
            .map(|r| RelationSpec {
                a: locate(r.a),
                b: locate(r.b),
                identity: r.identity,
                prob_millis: r.prob_millis,
            })
            .collect();
        // Phantom pressure: re-point a couple of non-hub endpoints at
        // their store's phantom slot (index == objects) so lazy deletion
        // runs inside the hostile shape too.
        if topo.chance(40) && !relations.is_empty() {
            for _ in 0..topo.range(1, 2) {
                let r = topo.below(relations.len());
                let (s, o) = relations[r].b;
                // Never phantom the hub itself — the family's focal
                // object must exist in its store.
                if shape.hub != Some(o * n_stores + s) {
                    relations[r].b = (s, stores[s].objects);
                }
            }
        }

        let mut query = root.fork("hostile-query");
        let query_store = 0;
        let max_size = stores[query_store].objects;
        let query_size = query.range(1, max_size.max(1));
        let level = match family {
            TopologyFamily::DeepChain => query.range(2, 3),
            _ => query.range(1, 2),
        };

        let mut faults = root.fork("hostile-faults");
        let fault = if faults.chance(35) {
            let fault_seed = faults.next_u64();
            let transient_pct = faults.range(5, 30) as u32;
            let max_streak = faults.range(1, (MAX_ATTEMPTS - 1) as usize) as u32;
            let spike_pct = faults.range(0, 6) as u32;
            let outages: Vec<usize> =
                (0..n_stores).filter(|&s| s != query_store && faults.chance(10)).collect();
            Some(FaultSpec { seed: fault_seed, transient_pct, max_streak, spike_pct, outages })
        } else {
            None
        };

        let mut cfg = root.fork("hostile-configs");
        let mut configs: Vec<ConfigSpec> = AugmenterKind::ALL
            .iter()
            .map(|&augmenter| ConfigSpec {
                augmenter,
                batch: cfg.range(1, 8),
                threads: cfg.range(1, 4),
                cache: if cfg.chance(50) { 4096 } else { 0 },
                resilient: fault.is_some() || cfg.chance(30),
                obs: cfg.chance(40),
                pushdown: true,
            })
            .collect();

        let mut rm = root.fork("hostile-removals");
        let mut removals: Vec<(usize, usize)> = Vec::new();
        match family {
            // The hub always dies: removal races and crash plans pivot
            // on deleting the best-connected object in the index.
            TopologyFamily::Supernode => {
                removals.push(locate(shape.hub.expect("supernode has a hub")));
                if rm.chance(50) {
                    removals.push(locate(rm.range(1, shape.objects - 1)));
                }
            }
            // A mid-chain node: severs the path the deep query walks.
            TopologyFamily::DeepChain => {
                if rm.chance(70) {
                    removals.push(locate(quepa_workload::hostile::DEEP_CHAIN_DEPTH / 2));
                }
            }
            // A cluster representative: its whole materialized clique
            // must survive consistently.
            TopologyFamily::NearDup => {
                if rm.chance(70) {
                    let cluster = rm.below(shape.objects / quepa_workload::hostile::NEAR_DUP_CLUSTER);
                    removals.push(locate(cluster * quepa_workload::hostile::NEAR_DUP_CLUSTER));
                }
            }
        }

        let mut cr = root.fork("hostile-crash");
        let crash_pct = if family == TopologyFamily::Supernode { 60 } else { 30 };
        let crash = if cr.chance(crash_pct) {
            let total = relations.len() + removals.len();
            Some(CrashSpec {
                after_ops: cr.below(total + 1),
                torn_tail: cr.chance(35),
                checkpoint_every: if cr.chance(50) { cr.range(1, 6) } else { 0 },
                partial: cr.chance(40),
            })
        } else {
            None
        };

        let mut pd = root.fork("hostile-pushdown");
        let filter = pd.chance(40).then(|| filter_text(&mut pd));
        let mut nopush = Vec::new();
        if filter.is_some() {
            for c in &mut configs {
                c.pushdown = pd.chance(60);
            }
            nopush = (0..n_stores).filter(|_| pd.chance(30)).collect();
        }

        Scenario {
            seed,
            deployment,
            stores,
            relations,
            query_store,
            query_size,
            level,
            configs,
            fault,
            removals,
            crash,
            filter,
            nopush,
            mutation: None,
            family: Some(family),
        }
    }

    // -- naming ----------------------------------------------------------

    /// Database name of store `i`.
    pub fn store_name(i: usize) -> String {
        format!("db{i}")
    }

    /// The main collection of a store kind (matches the population hooks
    /// and `quepa_workload::queries::query_for`).
    pub fn collection(kind: StoreKind) -> &'static str {
        match kind {
            StoreKind::KeyValue => "c",
            StoreKind::Relational => "inventory",
            StoreKind::Document => "albums",
            StoreKind::Graph => "album",
        }
    }

    /// Local key of object `j` in a store of `kind`.
    pub fn local_key(kind: StoreKind, j: usize) -> String {
        match kind {
            StoreKind::KeyValue => format!("k{j}"),
            StoreKind::Relational => format!("a{j}"),
            StoreKind::Document => format!("d{j}"),
            StoreKind::Graph => format!("g{j}"),
        }
    }

    /// Global key of `(store, object)` — objects past the population are
    /// phantoms, but their keys are formed the same way.
    pub fn key_of(&self, store: usize, obj: usize) -> GlobalKey {
        let kind = self.stores[store].kind;
        format!(
            "{}.{}.{}",
            Self::store_name(store),
            Self::collection(kind),
            Self::local_key(kind, obj)
        )
        .parse()
        .expect("generated keys are well-formed")
    }

    /// Whether `(store, obj)` references a phantom.
    pub fn is_phantom(&self, store: usize, obj: usize) -> bool {
        obj >= self.stores[store].objects
    }

    /// The native local query.
    pub fn query(&self) -> String {
        query_for(self.stores[self.query_store].kind, self.query_size)
    }

    /// The parsed pushdown predicate, if the scenario carries one. The
    /// text is validated at generation / parse time, so this cannot fail.
    pub fn pushdown_filter(&self) -> Option<Pushdown> {
        self.filter
            .as_ref()
            .map(|t| Pushdown::parse(t).expect("scenario filters are validated key-only text"))
    }

    /// Forces a pushdown predicate onto the scenario (the `--pushdown`
    /// sweep): seeds that drew a filter keep it, the rest draw one —
    /// plus per-config planner toggles and per-store gates — from a
    /// labelled sub-stream, so the sweep stays replayable by seed.
    pub fn force_filter(&mut self) {
        if self.filter.is_some() {
            return;
        }
        let mut pd = SplitMix::new(self.seed).fork("forced-pushdown");
        self.filter = Some(filter_text(&mut pd));
        for c in &mut self.configs {
            c.pushdown = pd.chance(60);
        }
        self.nopush = (0..self.stores.len()).filter(|_| pd.chance(30)).collect();
    }

    /// Name of the query-target database.
    pub fn query_database(&self) -> String {
        Self::store_name(self.query_store)
    }

    // -- materialization -------------------------------------------------

    /// Builds the pristine polystore (no fault wrapping) from the seeded
    /// population hooks.
    pub fn build_polystore(&self) -> Polystore {
        let latency = self.deployment.latency();
        let mut polystore = Polystore::new();
        for (i, spec) in self.stores.iter().enumerate() {
            let name = Self::store_name(i);
            let store_seed = mix(self.seed, i as u64);
            match spec.kind {
                StoreKind::KeyValue => {
                    let kv = KvStore::populate_seeded(name, store_seed, spec.objects);
                    polystore.register(Arc::new(KvConnector::new(kv, "c", latency)));
                }
                StoreKind::Relational => {
                    let db = Database::populate_seeded(name, store_seed, spec.objects);
                    polystore.register(Arc::new(RelationalConnector::new(db, latency)));
                }
                StoreKind::Document => {
                    let db = DocumentDb::populate_seeded(name, store_seed, spec.objects);
                    polystore.register(Arc::new(DocumentConnector::new(db, latency)));
                }
                StoreKind::Graph => {
                    let db = GraphDb::populate_seeded(name, store_seed, spec.objects);
                    polystore.register(Arc::new(GraphConnector::new(db, latency)));
                }
            }
        }
        polystore
    }

    /// The [`FaultPlan`] the spec describes, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        let spec = self.fault.as_ref()?;
        let mut plan = FaultPlan::new(spec.seed);
        if spec.transient_pct > 0 {
            plan = plan.with_transient_faults(spec.transient_pct as f64 / 100.0, spec.max_streak);
        }
        if spec.spike_pct > 0 {
            plan =
                plan.with_latency_spikes(spec.spike_pct as f64 / 100.0, Duration::from_micros(40));
        }
        for &s in &spec.outages {
            plan = plan.with_outage(&Self::store_name(s));
        }
        Some(plan)
    }

    /// The polystore the system under test sees: stores in `nopush` get a
    /// [`PushdownGate`] (the planner must fall back to fetch-all there),
    /// then everything except the query target (whose local query must
    /// still run) is fault-wrapped when a plan is present. The gate sits
    /// *inside* the fault wrapper, so fault decisions keep the same
    /// per-call identities whether pushdown is gated or not.
    pub fn build_wrapped_polystore(&self) -> Polystore {
        let pristine = self.build_polystore();
        let gated: Vec<String> = self.nopush.iter().map(|&s| Self::store_name(s)).collect();
        let plan = self.fault_plan().map(Arc::new);
        if gated.is_empty() && plan.is_none() {
            return pristine;
        }
        let latency = self.deployment.latency();
        let target = self.query_database();
        pristine.wrap_connectors(|inner| {
            let inner: Arc<dyn Connector> = if gated.iter().any(|g| g == inner.database().as_str())
            {
                Arc::new(PushdownGate::new(inner))
            } else {
                inner
            };
            match &plan {
                Some(plan) if inner.database().as_str() != target => {
                    Arc::new(FaultyConnector::new(inner, Arc::clone(plan), latency))
                }
                _ => inner,
            }
        })
    }

    /// Builds the **real** A' index, honouring the planted mutation.
    pub fn build_index(&self) -> AIndex {
        let dropped = match self.mutation {
            Some(Mutation::DropRelation(_)) if self.relations.is_empty() => Some(usize::MAX),
            Some(Mutation::DropRelation(i)) => Some(i % self.relations.len()),
            _ => None,
        };
        let mut index = AIndex::new();
        for (i, rel) in self.relations.iter().enumerate() {
            if Some(i) == dropped {
                continue;
            }
            let a = self.key_of(rel.a.0, rel.a.1);
            let b = self.key_of(rel.b.0, rel.b.1);
            let p = Probability::of(rel.prob_millis as f64 / 1000.0);
            if rel.identity {
                index.insert_identity(&a, &b, p);
            } else {
                index.insert_matching(&a, &b, p);
            }
        }
        index
    }

    /// Builds the **reference model** index (never mutated).
    pub fn build_model(&self) -> ModelIndex {
        let mut model = ModelIndex::new();
        for rel in &self.relations {
            let a = self.key_of(rel.a.0, rel.a.1);
            let b = self.key_of(rel.b.0, rel.b.1);
            let p = Probability::of(rel.prob_millis as f64 / 1000.0);
            if rel.identity {
                model.insert_identity(&a, &b, p);
            } else {
                model.insert_matching(&a, &b, p);
            }
        }
        model
    }

    /// Materializes one configuration point.
    pub fn config_of(&self, spec: &ConfigSpec) -> QuepaConfig {
        QuepaConfig {
            augmenter: spec.augmenter,
            batch_size: spec.batch,
            threads_size: spec.threads,
            cache_size: spec.cache,
            resilience: if spec.resilient {
                fast_partial_resilience()
            } else {
                ResilienceConfig::default()
            },
            observability: spec.obs,
            pushdown: spec.pushdown,
        }
    }

    // -- serialization ---------------------------------------------------

    /// Serializes to the `.scenario` text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("quepa-scenario v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(family) = self.family {
            out.push_str(&format!("family {}\n", family.name()));
        }
        out.push_str(&format!("deployment {}\n", deployment_name(self.deployment)));
        for s in &self.stores {
            out.push_str(&format!("store {} {}\n", kind_name(s.kind), s.objects));
        }
        for r in &self.relations {
            out.push_str(&format!(
                "relation {} {} {} {} {} {}\n",
                r.a.0,
                r.a.1,
                r.b.0,
                r.b.1,
                if r.identity { "identity" } else { "matching" },
                r.prob_millis
            ));
        }
        out.push_str(&format!("query {} {}\n", self.query_store, self.query_size));
        out.push_str(&format!("level {}\n", self.level));
        for c in &self.configs {
            out.push_str(&format!(
                "config {} {} {} {} {} {} {}\n",
                c.augmenter.name(),
                c.batch,
                c.threads,
                c.cache,
                if c.resilient { "resilient" } else { "trivial" },
                if c.obs { "obs-on" } else { "obs-off" },
                if c.pushdown { "push-on" } else { "push-off" }
            ));
        }
        if let Some(f) = &self.filter {
            out.push_str(&format!("filter {f}\n"));
        }
        for &s in &self.nopush {
            out.push_str(&format!("nopush {s}\n"));
        }
        if let Some(f) = &self.fault {
            out.push_str(&format!(
                "fault {} {} {} {}\n",
                f.seed, f.transient_pct, f.max_streak, f.spike_pct
            ));
            for &s in &f.outages {
                out.push_str(&format!("outage {s}\n"));
            }
        }
        for &(s, o) in &self.removals {
            out.push_str(&format!("remove {s} {o}\n"));
        }
        if let Some(c) = &self.crash {
            out.push_str(&format!(
                "crash {} {} {} {}\n",
                c.after_ops,
                if c.torn_tail { "torn" } else { "clean" },
                c.checkpoint_every,
                if c.partial { "partial" } else { "all" }
            ));
        }
        match self.mutation {
            Some(Mutation::DropRelation(i)) => {
                out.push_str(&format!("mutation drop-relation {i}\n"));
            }
            Some(Mutation::SkipWalTail(n)) => {
                out.push_str(&format!("mutation skip-wal-tail {n}\n"));
            }
            None => {}
        }
        out
    }

    /// Parses the `.scenario` text format back.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some("quepa-scenario v1") {
            return Err("missing `quepa-scenario v1` header".into());
        }
        let mut scenario = Scenario {
            seed: 0,
            deployment: Deployment::InProcess,
            stores: Vec::new(),
            relations: Vec::new(),
            query_store: 0,
            query_size: 1,
            level: 0,
            configs: Vec::new(),
            fault: None,
            removals: Vec::new(),
            crash: None,
            filter: None,
            nopush: Vec::new(),
            mutation: None,
            family: None,
        };
        for line in lines {
            let mut it = line.split_whitespace();
            let tag = it.next().unwrap_or_default();
            let rest: Vec<&str> = it.collect();
            let int = |s: &str| s.parse::<usize>().map_err(|_| format!("bad integer `{s}`"));
            match tag {
                "seed" => {
                    scenario.seed = rest
                        .first()
                        .ok_or("seed needs a value")?
                        .parse()
                        .map_err(|_| "bad seed")?;
                }
                "deployment" => {
                    scenario.deployment = parse_deployment(rest.first().copied().unwrap_or(""))?;
                }
                "family" => {
                    let name = rest.first().copied().unwrap_or("");
                    scenario.family = Some(
                        TopologyFamily::parse(name)
                            .ok_or_else(|| format!("unknown topology family `{name}`"))?,
                    );
                }
                "store" => {
                    let [kind, objects] = rest[..] else {
                        return Err(format!("bad store line `{line}`"));
                    };
                    scenario
                        .stores
                        .push(StoreSpec { kind: parse_kind(kind)?, objects: int(objects)? });
                }
                "relation" => {
                    let [a_s, a_o, b_s, b_o, kind, prob] = rest[..] else {
                        return Err(format!("bad relation line `{line}`"));
                    };
                    scenario.relations.push(RelationSpec {
                        a: (int(a_s)?, int(a_o)?),
                        b: (int(b_s)?, int(b_o)?),
                        identity: match kind {
                            "identity" => true,
                            "matching" => false,
                            other => return Err(format!("bad relation kind `{other}`")),
                        },
                        prob_millis: int(prob)? as u32,
                    });
                }
                "query" => {
                    let [store, size] = rest[..] else {
                        return Err(format!("bad query line `{line}`"));
                    };
                    scenario.query_store = int(store)?;
                    scenario.query_size = int(size)?;
                }
                "level" => {
                    scenario.level = int(rest.first().ok_or("level needs a value")?)?;
                }
                "config" => {
                    // The pushdown token is optional: pre-pushdown
                    // scenario files carry six tokens and default to on.
                    let (core, push) = match rest[..] {
                        [aug, batch, threads, cache, res, obs] => {
                            ([aug, batch, threads, cache, res, obs], "push-on")
                        }
                        [aug, batch, threads, cache, res, obs, push] => {
                            ([aug, batch, threads, cache, res, obs], push)
                        }
                        _ => return Err(format!("bad config line `{line}`")),
                    };
                    let [aug, batch, threads, cache, res, obs] = core;
                    scenario.configs.push(ConfigSpec {
                        augmenter: AugmenterKind::parse(aug)
                            .ok_or_else(|| format!("unknown augmenter `{aug}`"))?,
                        batch: int(batch)?,
                        threads: int(threads)?,
                        cache: int(cache)?,
                        resilient: match res {
                            "resilient" => true,
                            "trivial" => false,
                            other => return Err(format!("bad resilience `{other}`")),
                        },
                        obs: match obs {
                            "obs-on" => true,
                            "obs-off" => false,
                            other => return Err(format!("bad obs flag `{other}`")),
                        },
                        pushdown: match push {
                            "push-on" => true,
                            "push-off" => false,
                            other => return Err(format!("bad pushdown flag `{other}`")),
                        },
                    });
                }
                "filter" => {
                    let text = line.strip_prefix("filter").unwrap_or_default().trim();
                    let parsed = Pushdown::parse(text)
                        .map_err(|e| format!("bad filter line `{line}`: {e}"))?;
                    if parsed.is_trivial() {
                        return Err(format!("filter line `{line}` is trivial"));
                    }
                    if !parsed.key_only() {
                        return Err(format!(
                            "filter line `{line}` is not key-only; the model cannot evaluate it"
                        ));
                    }
                    scenario.filter = Some(parsed.to_string());
                }
                "nopush" => {
                    scenario.nopush.push(int(rest.first().ok_or("nopush needs a store")?)?);
                }
                "fault" => {
                    let [seed, transient, streak, spike] = rest[..] else {
                        return Err(format!("bad fault line `{line}`"));
                    };
                    scenario.fault = Some(FaultSpec {
                        seed: seed.parse().map_err(|_| "bad fault seed")?,
                        transient_pct: int(transient)? as u32,
                        max_streak: int(streak)? as u32,
                        spike_pct: int(spike)? as u32,
                        outages: Vec::new(),
                    });
                }
                "outage" => {
                    let store = int(rest.first().ok_or("outage needs a store")?)?;
                    scenario.fault.as_mut().ok_or("outage before fault line")?.outages.push(store);
                }
                "remove" => {
                    let [store, obj] = rest[..] else {
                        return Err(format!("bad remove line `{line}`"));
                    };
                    scenario.removals.push((int(store)?, int(obj)?));
                }
                "crash" => {
                    let [after, tail, every, batch] = rest[..] else {
                        return Err(format!("bad crash line `{line}`"));
                    };
                    scenario.crash = Some(CrashSpec {
                        after_ops: int(after)?,
                        torn_tail: match tail {
                            "torn" => true,
                            "clean" => false,
                            other => return Err(format!("bad crash tail `{other}`")),
                        },
                        checkpoint_every: int(every)?,
                        partial: match batch {
                            "partial" => true,
                            "all" => false,
                            other => return Err(format!("bad crash batch `{other}`")),
                        },
                    });
                }
                "mutation" => match rest[..] {
                    ["drop-relation", i] => {
                        scenario.mutation = Some(Mutation::DropRelation(int(i)?));
                    }
                    ["skip-wal-tail", n] => {
                        scenario.mutation = Some(Mutation::SkipWalTail(int(n)?));
                    }
                    _ => return Err(format!("bad mutation line `{line}`")),
                },
                other => return Err(format!("unknown line tag `{other}`")),
            }
        }
        if scenario.stores.is_empty() {
            return Err("scenario has no stores".into());
        }
        if scenario.query_store >= scenario.stores.len() {
            return Err("query store out of range".into());
        }
        if scenario.configs.is_empty() {
            return Err("scenario has no configs".into());
        }
        Ok(scenario)
    }
}

/// Draws a random **key-only** pushdown predicate in canonical text form.
///
/// Literals are built from the per-kind local-key letters (`k`/`a`/`d`/
/// `g`, optionally with a leading digit), so a filter is selective on the
/// stores whose keys share its letter and rejects everything on the rest —
/// both regimes the differential must hold bit-identical.
fn filter_text(rng: &mut SplitMix) -> String {
    let letters = ["k", "a", "d", "g"];
    let letter = *rng.pick(&letters);
    let ops = [PushOp::Prefix, PushOp::Contains, PushOp::Gte, PushOp::Lt, PushOp::Ne, PushOp::Eq];
    let op = *rng.pick(&ops);
    let literal = if rng.chance(60) { format!("{letter}{}", rng.below(10)) } else { letter.into() };
    Pushdown::key(op, literal).to_string()
}

/// The harness's resilient configuration: µs-scale backoffs (the fault
/// latencies are simulated, real sleeps must stay tiny), no breaker, and
/// partial-answer degradation.
pub fn fast_partial_resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: MAX_ATTEMPTS,
            base_backoff: Duration::from_micros(5),
            max_backoff: Duration::from_micros(40),
            jitter_pct: 50,
            deadline: None,
        },
        breaker: BreakerConfig { trip_after: 0, cooldown_calls: 8 },
        degrade: DegradeMode::Partial,
    }
}

fn kind_name(kind: StoreKind) -> &'static str {
    match kind {
        StoreKind::KeyValue => "kv",
        StoreKind::Relational => "relational",
        StoreKind::Document => "document",
        StoreKind::Graph => "graph",
    }
}

fn parse_kind(name: &str) -> Result<StoreKind, String> {
    match name {
        "kv" => Ok(StoreKind::KeyValue),
        "relational" => Ok(StoreKind::Relational),
        "document" => Ok(StoreKind::Document),
        "graph" => Ok(StoreKind::Graph),
        other => Err(format!("unknown store kind `{other}`")),
    }
}

fn deployment_name(d: Deployment) -> &'static str {
    match d {
        Deployment::InProcess => "inprocess",
        Deployment::Centralized => "centralized",
        Deployment::Distributed => "distributed",
    }
}

fn parse_deployment(name: &str) -> Result<Deployment, String> {
    match name {
        "inprocess" => Ok(Deployment::InProcess),
        "centralized" => Ok(Deployment::Centralized),
        "distributed" => Ok(Deployment::Distributed),
        other => Err(format!("unknown deployment `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
        assert_ne!(Scenario::generate(1), Scenario::generate(2));
    }

    #[test]
    fn serialization_round_trips() {
        for seed in 0..50u64 {
            let mut s = Scenario::generate(seed);
            if seed % 5 == 0 {
                s.mutation = Some(Mutation::DropRelation(seed as usize));
            } else if seed % 5 == 1 {
                s.mutation = Some(Mutation::SkipWalTail(1 + seed as usize % 3));
            }
            if seed % 4 == 0 {
                s.crash = Some(CrashSpec {
                    after_ops: seed as usize % 7,
                    torn_tail: seed % 2 == 0,
                    checkpoint_every: seed as usize % 3,
                    partial: seed % 3 == 0,
                });
            }
            let text = s.serialize();
            let back = Scenario::parse(&text).expect("parses");
            assert_eq!(s, back, "seed {seed}\n{text}");
        }
    }

    /// Pre-pushdown scenario files (six-token config lines, no `filter` /
    /// `nopush` lines) still parse: the knob defaults to on.
    #[test]
    fn old_config_lines_parse_with_pushdown_on() {
        let text = "quepa-scenario v1\nseed 7\ndeployment inprocess\nstore kv 4\n\
                    query 0 2\nlevel 1\nconfig sequential 2 1 0 trivial obs-off\n";
        let s = Scenario::parse(text).expect("parses");
        assert!(s.configs[0].pushdown);
        assert!(s.filter.is_none() && s.nopush.is_empty());
    }

    #[test]
    fn filter_lines_round_trip_and_are_validated() {
        let mut s = Scenario::generate(3);
        s.filter = Some("key prefix \"k1\"".into());
        s.nopush = vec![0];
        s.configs[0].pushdown = false;
        let back = Scenario::parse(&s.serialize()).expect("parses");
        assert_eq!(s, back);
        assert!(back.pushdown_filter().unwrap().key_only());
        // Non-key-only and trivial filters are rejected at parse time.
        let head = "quepa-scenario v1\nseed 1\ndeployment inprocess\nstore kv 4\n\
                    query 0 1\nlevel 0\nconfig sequential 1 1 0 trivial obs-off push-on\n";
        assert!(Scenario::parse(&format!("{head}filter .seq gte 3\n")).is_err());
        assert!(Scenario::parse(&format!("{head}filter \n")).is_err());
    }

    #[test]
    fn generated_scenarios_are_well_formed() {
        for seed in 0..100u64 {
            let s = Scenario::generate(seed);
            assert!((1..=12).contains(&s.stores.len()), "seed {seed}");
            assert!(s.query_store < s.stores.len());
            assert!(s.level <= 3);
            assert_eq!(s.configs.len(), AugmenterKind::ALL.len());
            for r in &s.relations {
                assert!(r.a.0 < s.stores.len() && r.b.0 < s.stores.len());
                assert!((100..=1000).contains(&r.prob_millis));
            }
            assert!(s.removals.len() <= 3);
            for &(store, obj) in &s.removals {
                assert!(store < s.stores.len(), "seed {seed}");
                // Object index may be the phantom slot but nothing past it.
                assert!(obj <= s.stores[store].objects, "seed {seed}");
            }
            if let Some(c) = &s.crash {
                assert!(c.after_ops <= s.relations.len() + s.removals.len(), "seed {seed}");
                assert!(c.checkpoint_every <= 6, "seed {seed}");
            }
            if let Some(f) = s.pushdown_filter() {
                assert!(!f.is_trivial() && f.key_only(), "seed {seed}");
            } else {
                assert!(s.nopush.is_empty(), "gates only ride with a filter");
            }
            for &g in &s.nopush {
                assert!(g < s.stores.len(), "seed {seed}");
            }
            if let Some(f) = &s.fault {
                assert!(f.max_streak < MAX_ATTEMPTS);
                assert!(!f.outages.contains(&s.query_store));
                for c in &s.configs {
                    assert!(c.resilient, "fault runs must ride out transients");
                }
            }
        }
    }

    /// The whole generated seed range covers every store kind as a query
    /// target and both fault modes — the coverage the CI smoke run claims.
    #[test]
    fn seed_range_covers_kinds_and_fault_modes() {
        let mut kinds = std::collections::BTreeSet::new();
        let (mut faulty, mut clean, mut removing, mut crashing) = (0, 0, 0, 0);
        let (mut torn, mut partial, mut scheduled) = (0, 0, 0);
        let (mut filtered, mut gated, mut pushed_off) = (0, 0, 0);
        for seed in 0..200u64 {
            let s = Scenario::generate(seed);
            kinds.insert(kind_name(s.stores[s.query_store].kind));
            if s.filter.is_some() {
                filtered += 1;
                gated += (!s.nopush.is_empty()) as u64;
                pushed_off += s.configs.iter().any(|c| !c.pushdown) as u64;
            }
            if s.fault.is_some() {
                faulty += 1;
            } else {
                clean += 1;
            }
            if !s.removals.is_empty() {
                removing += 1;
            }
            if let Some(c) = &s.crash {
                crashing += 1;
                torn += c.torn_tail as u64;
                partial += c.partial as u64;
                scheduled += (c.checkpoint_every > 0) as u64;
            }
        }
        assert_eq!(kinds.len(), 4, "all four store kinds appear as query targets");
        assert!(faulty >= 20 && clean >= 20, "both fault modes well represented");
        assert!(removing >= 20, "index removals well represented: {removing}");
        assert!(crashing >= 20, "crash plans well represented: {crashing}");
        assert!(
            torn >= 5 && partial >= 5 && scheduled >= 5,
            "crash shapes all drawn: torn {torn}, partial {partial}, scheduled {scheduled}"
        );
        assert!(
            filtered >= 20 && gated >= 5 && pushed_off >= 10,
            "pushdown regimes all drawn: filtered {filtered}, gated {gated}, off {pushed_off}"
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Scenario::parse("").is_err());
        assert!(Scenario::parse("quepa-scenario v1\n").is_err());
        assert!(Scenario::parse("quepa-scenario v1\nstore kv 4\nnonsense 1\n").is_err());
        assert!(Scenario::parse("quepa-scenario v1\nstore marble 4\n").is_err());
        assert!(Scenario::parse("quepa-scenario v1\nfamily uniform\nstore kv 4\n").is_err());
    }

    /// Satellite pin: the `family` header round-trips through the
    /// `.scenario` format for every topology family — a shrunk hostile
    /// reproduction replayed via `--replay` keeps its provenance.
    #[test]
    fn family_header_round_trips() {
        for family in TopologyFamily::ALL {
            for seed in 0..10u64 {
                let s = Scenario::generate_hostile(family, seed);
                assert_eq!(s.family, Some(family));
                let text = s.serialize();
                assert!(
                    text.contains(&format!("family {}", family.name())),
                    "family header missing:\n{text}"
                );
                let back = Scenario::parse(&text).expect("parses");
                assert_eq!(s, back, "{} seed {seed}\n{text}", family.name());
            }
        }
        // Familyless scenarios serialize without the header and parse
        // back to None — old files stay readable.
        let plain = Scenario::generate(3);
        assert!(!plain.serialize().contains("family "));
        assert_eq!(Scenario::parse(&plain.serialize()).unwrap().family, None);
    }

    #[test]
    fn hostile_generation_is_deterministic_and_well_formed() {
        for family in TopologyFamily::ALL {
            for seed in 0..30u64 {
                let s = Scenario::generate_hostile(family, seed);
                assert_eq!(s, Scenario::generate_hostile(family, seed));
                assert!((2..=4).contains(&s.stores.len()), "{} seed {seed}", family.name());
                assert_eq!(s.query_store, 0, "the focal object's store is the query target");
                assert!(s.query_size >= 1 && s.query_size <= s.stores[0].objects);
                assert!((1..=3).contains(&s.level));
                assert_eq!(s.configs.len(), AugmenterKind::ALL.len());
                for r in &s.relations {
                    assert!(r.a.0 < s.stores.len() && r.b.0 < s.stores.len());
                    assert!(r.a.1 <= s.stores[r.a.0].objects, "{} seed {seed}", family.name());
                    assert!(r.b.1 <= s.stores[r.b.0].objects, "{} seed {seed}", family.name());
                    assert!((1..=1000).contains(&r.prob_millis));
                }
                for &(store, obj) in &s.removals {
                    assert!(store < s.stores.len());
                    assert!(obj <= s.stores[store].objects);
                }
                if let Some(f) = &s.fault {
                    assert!(f.transient_pct > 0, "hostile fault plans always exercise transients");
                    assert!(f.max_streak < MAX_ATTEMPTS);
                    assert!(!f.outages.contains(&s.query_store));
                }
                match family {
                    TopologyFamily::Supernode => {
                        assert_eq!(s.removals.first(), Some(&(0, 0)), "the hub always dies");
                        let hub_degree =
                            s.relations.iter().filter(|r| r.a == (0, 0) || r.b == (0, 0)).count();
                        assert!(hub_degree >= 24, "{seed}: hub degree {hub_degree}");
                    }
                    TopologyFamily::DeepChain => {
                        assert!(s.relations.len() >= quepa_workload::hostile::DEEP_CHAIN_DEPTH);
                        assert!(s.level >= 2, "deep chains are checked at multi-level depth");
                    }
                    TopologyFamily::NearDup => {
                        let identity = s.relations.iter().filter(|r| r.identity).count();
                        assert!(identity >= 18, "{seed}: clusters must dominate: {identity}");
                    }
                }
            }
        }
    }
}
