//! Greedy scenario shrinking.
//!
//! Given a failing scenario and a predicate "does it still fail?", the
//! shrinker repeatedly tries structural reductions — fewer configs,
//! no fault plan, fewer relations (delta-debugging style chunks, then
//! singles), lower level, smaller query, smaller stores, unreferenced
//! stores removed — and keeps every reduction that preserves the
//! failure, looping to a fixpoint. The result is the minimal replayable
//! `.scenario` reproduction the harness reports.

use crate::scenario::{CrashSpec, Mutation, Scenario};

/// Shrinks `scenario` to a (locally) minimal scenario for which
/// `still_fails` holds. `still_fails(scenario)` must be true on entry.
pub fn shrink(scenario: &Scenario, still_fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    let mut best = scenario.clone();
    // Pin the planted mutation to a concrete relation index so removals
    // can track it.
    if let Some(Mutation::DropRelation(i)) = best.mutation {
        if !best.relations.is_empty() {
            best.mutation = Some(Mutation::DropRelation(i % best.relations.len()));
        }
    }

    loop {
        let mut changed = false;

        // One config is enough if any single config still reproduces —
        // this is also the biggest speed-up for later passes.
        if best.configs.len() > 1 {
            for i in 0..best.configs.len() {
                let mut cand = best.clone();
                cand.configs = vec![best.configs[i]];
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                    break;
                }
            }
        }

        // The fault plan, then individual outages.
        if best.fault.is_some() {
            let mut cand = best.clone();
            cand.fault = None;
            if still_fails(&cand) {
                best = cand;
                changed = true;
            }
        }
        if let Some(f) = &best.fault {
            for i in 0..f.outages.len() {
                let mut cand = best.clone();
                cand.fault.as_mut().expect("checked").outages.remove(i);
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                    break;
                }
            }
        }

        // The crash plan: drop it outright, then simplify each knob —
        // no torn tail, no partial record, no checkpoint schedule,
        // earlier crash points (halving).
        if best.crash.is_some() {
            let mut cand = best.clone();
            cand.crash = None;
            if still_fails(&cand) {
                best = cand;
                changed = true;
            }
        }
        if let Some(c) = best.crash {
            for simpler in [
                CrashSpec { torn_tail: false, ..c },
                CrashSpec { partial: false, ..c },
                CrashSpec { checkpoint_every: 0, ..c },
            ] {
                if simpler == c {
                    continue;
                }
                let mut cand = best.clone();
                cand.crash = Some(simpler);
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                    break;
                }
            }
        }
        while let Some(c) = best.crash {
            if c.after_ops == 0 {
                break;
            }
            let mut cand = best.clone();
            cand.crash = Some(CrashSpec { after_ops: c.after_ops / 2, ..c });
            if still_fails(&cand) {
                best = cand;
                changed = true;
            } else {
                break;
            }
        }

        // A planted skip-wal-tail bug: try the minimal single-record
        // skip.
        if let Some(Mutation::SkipWalTail(n)) = best.mutation {
            if n > 1 {
                let mut cand = best.clone();
                cand.mutation = Some(Mutation::SkipWalTail(1));
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                }
            }
        }

        // Interleaved removals: drop the whole list, then singles.
        if !best.removals.is_empty() {
            let mut cand = best.clone();
            cand.removals.clear();
            if still_fails(&cand) {
                best = cand;
                changed = true;
            }
        }
        let mut r = 0;
        while r < best.removals.len() {
            let mut cand = best.clone();
            cand.removals.remove(r);
            if still_fails(&cand) {
                best = cand;
                changed = true;
            } else {
                r += 1;
            }
        }

        // Relations: remove chunks (halving), then singles.
        let mut chunk = (best.relations.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.relations.len() {
                match without_relations(&best, start, chunk) {
                    Some(cand) if still_fails(&cand) => {
                        best = cand;
                        changed = true;
                        // Re-test the same offset against the shrunk list.
                    }
                    _ => start += chunk,
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Lower the augmentation level.
        while best.level > 0 {
            let mut cand = best.clone();
            cand.level -= 1;
            if still_fails(&cand) {
                best = cand;
                changed = true;
            } else {
                break;
            }
        }

        // Smaller local query.
        while best.query_size > 1 {
            let mut cand = best.clone();
            cand.query_size = best.query_size / 2;
            if still_fails(&cand) {
                best = cand;
                changed = true;
            } else {
                break;
            }
        }

        // Smaller stores (halving; objects referenced past the new size
        // simply become phantoms, which stays a valid scenario).
        for i in 0..best.stores.len() {
            while best.stores[i].objects > 1 {
                let mut cand = best.clone();
                cand.stores[i].objects /= 2;
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                } else {
                    break;
                }
            }
        }

        // Remove stores no relation references (except the query target),
        // renumbering everything that addresses stores by index.
        let mut i = 0;
        while best.stores.len() > 1 && i < best.stores.len() {
            if i != best.query_store && !best.relations.iter().any(|r| r.a.0 == i || r.b.0 == i) {
                let cand = without_store(&best, i);
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                    continue; // same index now holds the next store
                }
            }
            i += 1;
        }

        if !changed {
            return best;
        }
    }
}

/// `scenario` with relations `[start, start + len)` removed, tracking the
/// planted mutation's relation index. `None` when the range would remove
/// the mutated relation itself (dropping it would change what the
/// mutation means) or is empty.
fn without_relations(scenario: &Scenario, start: usize, len: usize) -> Option<Scenario> {
    let end = (start + len).min(scenario.relations.len());
    if start >= end {
        return None;
    }
    let mutated = match scenario.mutation {
        Some(Mutation::DropRelation(i)) => Some(i),
        _ => None,
    };
    if let Some(m) = mutated {
        if (start..end).contains(&m) {
            return None;
        }
    }
    let mut cand = scenario.clone();
    cand.relations.drain(start..end);
    if let Some(m) = mutated {
        if m >= end {
            cand.mutation = Some(Mutation::DropRelation(m - (end - start)));
        }
    }
    Some(cand)
}

/// `scenario` with store `i` removed and all store indices renumbered.
/// Only valid for stores no relation references and that are not the
/// query target.
fn without_store(scenario: &Scenario, i: usize) -> Scenario {
    let shift = |s: usize| if s > i { s - 1 } else { s };
    let mut cand = scenario.clone();
    cand.stores.remove(i);
    for r in &mut cand.relations {
        r.a.0 = shift(r.a.0);
        r.b.0 = shift(r.b.0);
    }
    cand.query_store = shift(cand.query_store);
    cand.removals.retain(|&(s, _)| s != i);
    for r in &mut cand.removals {
        r.0 = shift(r.0);
    }
    if let Some(f) = &mut cand.fault {
        f.outages.retain(|&s| s != i);
        for s in &mut f.outages {
            *s = shift(*s);
        }
    }
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::check_scenario;
    use crate::scenario::Mutation;

    /// End-to-end: plant a mutation, find a seed where it is caught, and
    /// shrink — the result must still fail, still carry the mutation, be
    /// no larger than the original, and round-trip through serialization.
    #[test]
    fn shrinks_a_planted_mutation_to_a_minimal_failing_scenario() {
        let failing = (0..40u64).find_map(|seed| {
            let mut s = Scenario::generate(seed);
            if s.relations.is_empty() {
                return None;
            }
            s.mutation = Some(Mutation::DropRelation(seed as usize % s.relations.len()));
            check_scenario(&s).is_err().then_some(s)
        });
        let failing = failing.expect("some seed catches a dropped relation");
        let still_fails = |s: &Scenario| check_scenario(s).is_err();
        let minimal = shrink(&failing, &still_fails);
        assert!(still_fails(&minimal), "shrunk scenario must still fail");
        assert!(minimal.relations.len() <= failing.relations.len());
        assert!(minimal.configs.len() <= failing.configs.len());
        assert_eq!(minimal.configs.len(), 1, "a single config should reproduce");
        let replayed = Scenario::parse(&minimal.serialize()).expect("round-trips");
        assert!(still_fails(&replayed), "replayed scenario must still fail");
    }

    #[test]
    fn without_store_renumbers_everything() {
        let mut s = Scenario::generate(3);
        while s.stores.len() < 3 {
            s = Scenario::generate(s.seed + 1);
        }
        s.relations.retain(|r| r.a.0 != 1 && r.b.0 != 1);
        if s.query_store == 1 {
            s.query_store = 0;
        }
        let cand = without_store(&s, 1);
        assert_eq!(cand.stores.len(), s.stores.len() - 1);
        for r in &cand.relations {
            assert!(r.a.0 < cand.stores.len() && r.b.0 < cand.stores.len());
        }
        assert!(cand.query_store < cand.stores.len());
    }
}
