//! The crash-point differential: kill a durable instance at a seeded
//! point, recover, and hold the recovered system to **bit-for-bit**
//! agreement with a never-crashed twin.
//!
//! One [`check_crash_scenario`] run turns the scenario's relation and
//! removal streams into a sequence of logical [`IndexOp`] mutations and
//! drives them through a durable [`Quepa`] (WAL + checkpoint cuts in a
//! scratch directory), honouring the [`CrashSpec`]'s checkpoint
//! schedule. At the crash point the instance is dropped and the
//! directory is optionally damaged the way real crashes damage it:
//!
//! * `partial` — the next record is appended to the WAL but never
//!   applied or acknowledged (the crash struck between write-ahead and
//!   apply). Recovery must replay it, so the recovered state runs one
//!   op *ahead* of anything the crashed instance served.
//! * `torn_tail` — an incomplete frame is appended (an in-flight write
//!   cut off mid-record). Recovery must truncate it and report it.
//!
//! The recovered instance is then compared against a volatile twin
//! that applied exactly the durable op prefix: raw index surface
//! (membership, neighbours, augmentation closures at every level),
//! the full augmented search answer (normal form, `missing` included),
//! and the deterministic store/cache metric sections. Both sides then
//! apply the remaining ops and a *second-generation* recovery repeats
//! the comparison — recovery must compose.
//!
//! The planted [`Mutation::SkipWalTail`] bug feeds the recovery's
//! fault-injection hook and must surface here as a differential
//! failure; `--inject-bug skip-wal-tail` in the binary proves the
//! harness catches, shrinks and replays it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use quepa_aindex::AIndex;
use quepa_core::{AugmenterKind, IndexOp, Quepa, RecoveryOptions, SyncPolicy};
use quepa_pdm::{GlobalKey, Probability};

use crate::driver::{CheckFailure, CheckReport};
use crate::scenario::{ConfigSpec, Mutation, Scenario};

/// A scratch durable directory, removed on drop.
struct CrashDir(PathBuf);

impl CrashDir {
    fn new(seed: u64) -> CrashDir {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let n = SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("quepa-crash-{}-{seed}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CrashDir(dir)
    }
}

impl Drop for CrashDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The scenario's mutation stream as logical ops: every relation as an
/// insert (in order), then every removal.
pub fn crash_ops(scenario: &Scenario) -> Vec<IndexOp> {
    let mut ops = Vec::with_capacity(scenario.relations.len() + scenario.removals.len());
    for rel in &scenario.relations {
        let a = scenario.key_of(rel.a.0, rel.a.1);
        let b = scenario.key_of(rel.b.0, rel.b.1);
        let p = Probability::of(rel.prob_millis as f64 / 1000.0);
        ops.push(if rel.identity {
            IndexOp::InsertIdentity { a, b, p }
        } else {
            IndexOp::InsertMatching { a, b, p }
        });
    }
    for &(s, o) in &scenario.removals {
        ops.push(IndexOp::RemoveObject { key: scenario.key_of(s, o) });
    }
    ops
}

/// The fixed configuration of the crash differential: cache-less so
/// every answer is planned from the live index, observability on so the
/// deterministic metric sections can be compared, augmenter varied by
/// seed so the smoke range exercises all of them against recovery.
fn crash_spec_config(scenario: &Scenario) -> ConfigSpec {
    let all = AugmenterKind::ALL;
    ConfigSpec {
        augmenter: all[(scenario.seed as usize) % all.len()],
        batch: 2,
        threads: 2,
        cache: 0,
        resilient: false,
        obs: true,
        pushdown: true,
    }
}

/// Every key the mutation stream mentions — the differential probe set.
fn probe_keys(ops: &[IndexOp]) -> Vec<GlobalKey> {
    let mut keys: Vec<GlobalKey> = Vec::new();
    let mut push = |k: &GlobalKey| {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    };
    for op in ops {
        match op {
            IndexOp::InsertIdentity { a, b, .. }
            | IndexOp::InsertMatching { a, b, .. }
            | IndexOp::InsertPromoted { a, b, .. }
            | IndexOp::DeleteRelation { a, b, .. } => {
                push(a);
                push(b);
            }
            IndexOp::RemoveObject { key } => push(key),
        }
    }
    keys
}

/// Holds two indexes to bit-identical answers over the probe surface.
fn diff_index(got: &AIndex, want: &AIndex, keys: &[GlobalKey], what: &str) -> Result<(), String> {
    if got.node_count() != want.node_count() {
        return Err(format!(
            "{what}: node_count {} vs twin {}",
            got.node_count(),
            want.node_count()
        ));
    }
    for key in keys {
        if got.contains(key) != want.contains(key) {
            return Err(format!(
                "{what}: contains({key}) {} vs twin {}",
                got.contains(key),
                want.contains(key)
            ));
        }
        let (g, w) = (got.neighbors(key), want.neighbors(key));
        if g != w {
            return Err(format!("{what}: neighbors({key}) diverge\n  real: {g:?}\n  twin: {w:?}"));
        }
    }
    for level in 0..4 {
        for chunk in keys.chunks(5) {
            let (g, w) = (got.augment(chunk, level), want.augment(chunk, level));
            if g != w {
                return Err(format!(
                    "{what}: augment level {level} of {chunk:?} diverges\n  real: {g:?}\n  twin: {w:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Runs the full crash-point differential for the scenario's crash
/// plan. Scenarios without one pass trivially (the caller gates on
/// `scenario.crash`).
pub fn check_crash_scenario(scenario: &Scenario) -> Result<CheckReport, CheckFailure> {
    let fail = |message: String| CheckFailure { seed: scenario.seed, message };
    let Some(crash) = scenario.crash else {
        return Ok(CheckReport::default());
    };
    let ops = crash_ops(scenario);
    let keys = probe_keys(&ops);
    let kill = crash.after_ops.min(ops.len());
    let spec = crash_spec_config(scenario);
    let config = scenario.config_of(&spec);
    let skip_tail = match scenario.mutation {
        Some(Mutation::SkipWalTail(n)) => n,
        _ => 0,
    };

    // Fault wrapping is deliberately absent here: the crash check pins
    // the durability layer, and the pristine polystore keeps both
    // sides' fetches identical by construction.
    let dir = CrashDir::new(scenario.seed);
    let durable = Quepa::create_durable(
        scenario.build_polystore(),
        AIndex::new(),
        config,
        &dir.0,
        SyncPolicy::Buffered,
    )
    .map_err(|e| fail(format!("create_durable failed: {e}")))?;
    let twin = Quepa::with_config(scenario.build_polystore(), AIndex::new(), config);

    for (i, op) in ops.iter().take(kill).enumerate() {
        durable
            .apply_mutations(std::slice::from_ref(op))
            .map_err(|e| fail(format!("durable apply of op {i} failed: {e}")))?;
        twin.apply_mutations(std::slice::from_ref(op)).expect("volatile apply cannot fail");
        if crash.checkpoint_every > 0 && (i + 1) % crash.checkpoint_every == 0 {
            durable
                .checkpoint_durable()
                .map_err(|e| fail(format!("scheduled checkpoint after op {i} failed: {e}")))?;
        }
    }

    // -- the crash -------------------------------------------------------
    drop(durable);
    let mut expected = kill;
    if crash.partial && kill < ops.len() {
        // The in-flight op made it into the WAL but was never applied
        // or acknowledged; recovery must replay it, so the twin runs
        // one op ahead of anything the crashed instance served.
        let (mut wal, _) = quepa_wal::Wal::open(&quepa_wal::wal_path(&dir.0), SyncPolicy::Buffered)
            .map_err(|e| fail(format!("reopening the WAL to plant the partial record: {e}")))?;
        // The crashed process's live WAL had its LSN clock past any cut
        // that truncated the log; the planted record must continue it.
        if let Ok(Some((cut_lsn, _))) = quepa_wal::latest_cut(&dir.0) {
            wal.advance_past(cut_lsn);
        }
        wal.append(std::slice::from_ref(&ops[kill]))
            .map_err(|e| fail(format!("planting the partial record: {e}")))?;
        twin.apply_mutations(std::slice::from_ref(&ops[kill])).expect("volatile apply cannot fail");
        expected += 1;
    }
    if crash.torn_tail {
        // An in-flight frame cut off mid-record: a length header that
        // promises more bytes than follow. Recovery must truncate it.
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(quepa_wal::wal_path(&dir.0))
            .map_err(|e| fail(format!("opening the WAL to tear it: {e}")))?;
        file.write_all(&[64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 7, 7])
            .map_err(|e| fail(format!("tearing the WAL: {e}")))?;
    }

    // -- recovery --------------------------------------------------------
    let options = RecoveryOptions { skip_wal_tail: skip_tail };
    let (recovered, report) = Quepa::recover_durable(
        scenario.build_polystore(),
        config,
        &dir.0,
        SyncPolicy::Buffered,
        &options,
    )
    .map_err(|e| fail(format!("recovery failed: {e}")))?;
    if crash.torn_tail && !report.torn_tail {
        return Err(fail("the torn final record went unnoticed by recovery".into()));
    }
    diff_index(
        &recovered.index_snapshot(),
        &twin.index_snapshot(),
        &keys,
        &format!("after recovery at op {expected}/{} ({report:?})", ops.len()),
    )
    .map_err(fail)?;

    // -- the served answer, missing set and deterministic metrics --------
    let database = scenario.query_database();
    let query = scenario.query();
    let got = recovered
        .augmented_search(&database, &query, scenario.level)
        .map_err(|e| fail(format!("recovered search failed: {e}")))?
        .normal_form();
    let want = twin
        .augmented_search(&database, &query, scenario.level)
        .map_err(|e| fail(format!("twin search failed: {e}")))?
        .normal_form();
    if got != want {
        return Err(fail(format!(
            "recovered answer diverges from the never-crashed twin\n--- recovered ---\n{got}--- twin ---\n{want}"
        )));
    }
    // The search triggered identical lazy deletions on both sides; the
    // store/cache metric sections are deterministic per search (stage
    // spans are not comparable — the twin recorded Commit spans for ops
    // the recovered instance replayed without instrumentation).
    let (gm, wm) = (recovered.metrics_snapshot(), twin.metrics_snapshot());
    if gm.stores != wm.stores || gm.cache != wm.cache {
        return Err(fail(format!(
            "deterministic metric sections diverge after recovery\n--- recovered ---\n{:?} {:?}\n--- twin ---\n{:?} {:?}",
            gm.stores, gm.cache, wm.stores, wm.cache
        )));
    }

    // -- life after recovery: the remaining ops, then a second crash ----
    for (i, op) in ops.iter().enumerate().skip(expected) {
        recovered
            .apply_mutations(std::slice::from_ref(op))
            .map_err(|e| fail(format!("post-recovery apply of op {i} failed: {e}")))?;
        twin.apply_mutations(std::slice::from_ref(op)).expect("volatile apply cannot fail");
    }
    diff_index(
        &recovered.index_snapshot(),
        &twin.index_snapshot(),
        &keys,
        "after applying the remaining ops post-recovery",
    )
    .map_err(fail)?;

    drop(recovered);
    let (second, _) = Quepa::recover_durable(
        scenario.build_polystore(),
        config,
        &dir.0,
        SyncPolicy::Buffered,
        &RecoveryOptions::default(),
    )
    .map_err(|e| fail(format!("second-generation recovery failed: {e}")))?;
    diff_index(
        &second.index_snapshot(),
        &twin.index_snapshot(),
        &keys,
        "second-generation recovery",
    )
    .map_err(fail)?;

    Ok(CheckReport {
        configs: 1,
        augmented: want.augmented.len(),
        missing: want.missing.len(),
        faulted: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CrashSpec;

    /// Every crash shape over a spread of seeds recovers bit-exactly.
    #[test]
    fn generated_crash_plans_recover_bit_exactly() {
        let mut checked = 0;
        for seed in 0..40u64 {
            let scenario = Scenario::generate(seed);
            if scenario.crash.is_none() {
                continue;
            }
            if let Err(e) = check_crash_scenario(&scenario) {
                panic!("seed {seed} failed the crash differential:\n{e}");
            }
            checked += 1;
            if checked == 8 {
                break;
            }
        }
        assert!(checked >= 5, "not enough crash scenarios exercised: {checked}");
    }

    /// Forced extreme crash points: before any op, after every op, torn
    /// and partial together, with and without a checkpoint schedule.
    #[test]
    fn forced_crash_shapes_recover_bit_exactly() {
        let mut scenario = Scenario::generate(3);
        while scenario.relations.len() < 4 {
            scenario = Scenario::generate(scenario.seed + 1);
        }
        let total = scenario.relations.len() + scenario.removals.len();
        for (after_ops, torn_tail, checkpoint_every, partial) in [
            (0, false, 0, false),
            (0, true, 0, true),
            (total, false, 0, false),
            (total, true, 1, false),
            (total / 2, true, 2, true),
            (total / 2, false, 3, true),
        ] {
            scenario.crash = Some(CrashSpec { after_ops, torn_tail, checkpoint_every, partial });
            if let Err(e) = check_crash_scenario(&scenario) {
                panic!("crash shape {:?} failed:\n{e}", scenario.crash);
            }
        }
    }

    /// The planted skip-wal-tail bug surfaces as a differential failure
    /// on some seed — the harness's own acceptance test.
    #[test]
    fn planted_skip_wal_tail_is_caught() {
        let mut caught = 0;
        for seed in 0..60u64 {
            let mut scenario = Scenario::generate(seed);
            if scenario.relations.is_empty() {
                continue;
            }
            let total = scenario.relations.len() + scenario.removals.len();
            scenario.crash = Some(CrashSpec {
                after_ops: total,
                torn_tail: false,
                checkpoint_every: 0,
                partial: false,
            });
            scenario.mutation = Some(Mutation::SkipWalTail(1));
            if check_crash_scenario(&scenario).is_err() {
                caught += 1;
                break;
            }
        }
        assert!(caught > 0, "skip-wal-tail was never detected across 60 seeds");
    }

    /// A crash plan over an empty mutation stream still round-trips
    /// (recovery of a freshly created directory).
    #[test]
    fn empty_stream_crash_is_sound() {
        let mut scenario = Scenario::generate(0);
        scenario.relations.clear();
        scenario.removals.clear();
        scenario.crash =
            Some(CrashSpec { after_ops: 5, torn_tail: true, checkpoint_every: 0, partial: true });
        check_crash_scenario(&scenario).expect("empty-stream crash recovers");
    }
}
