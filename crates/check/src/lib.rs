//! # quepa-check — deterministic simulation harness
//!
//! Model-based differential testing of QUEPA: a seeded generator imagines
//! polystore topologies, data, A' indexes, native queries, configuration
//! points and fault plans; a deliberately naive **reference model**
//! predicts the augmented answer (and, under faults, the `missing` set);
//! a **driver** runs the real [`quepa_core::Quepa`] on the same scenario
//! and asserts bit-for-bit equality, folding in system-level invariants
//! (cache transparency, `augment_multi` == per-seed union, metrics rerun
//! determinism, retry counters consistent with the fault plan). Failures
//! **shrink** to a minimal scenario serialized as a replayable
//! `.scenario` file.
//!
//! The `quepa-check` binary front-ends the harness for CI smoke runs and
//! nightly soaks; see `DESIGN.md` § "Testing model".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod driver;
pub mod model;
pub mod rng;
pub mod scenario;
pub mod shrink;

pub use crash::check_crash_scenario;
pub use driver::{check_concurrent_scenario, check_scenario, CheckFailure, CheckReport};
pub use model::{ModelAugmented, ModelIndex, ModelKind};
pub use rng::SplitMix;
pub use scenario::{
    ConfigSpec, CrashSpec, FaultSpec, Mutation, RelationSpec, Scenario, StoreKind, StoreSpec,
};
pub use shrink::shrink;
