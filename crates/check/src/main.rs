//! `quepa-check` — the simulation harness front-end.
//!
//! ```text
//! quepa-check [--scenarios N] [--seed S]        # fixed-count smoke run
//! quepa-check --concurrent M ...                # also race M clients per
//!                                               # scenario on one instance
//! quepa-check --crash ...                       # crash-only sweep: force a
//!                                               # crash plan on every seed
//! quepa-check --pushdown ...                    # filtered sweep: force a
//!                                               # pushdown predicate (and
//!                                               # per-store gates) on every
//!                                               # seed
//! quepa-check --soak [--time-budget-secs T]     # run until the budget ends
//! quepa-check --family NAME                     # hostile sweep: every seed
//!                                               # instantiates one topology
//!                                               # family (supernode,
//!                                               # deep-chain, near-dup)
//! quepa-check --replay FILE                     # re-run one .scenario file
//! quepa-check --inject-bug drop-relation[:i]    # self-test: plant a bug,
//!              | skip-wal-tail[:n]              # prove it is caught+shrunk
//! quepa-check --out-dir DIR                     # where failures are written
//! ```
//!
//! Every failing scenario is shrunk to a minimal reproduction and written
//! as `<out-dir>/fail-<seed>.scenario`; replay it with `--replay`.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use quepa_check::{
    check_concurrent_scenario, check_crash_scenario, check_scenario, shrink, CheckFailure,
    CheckReport, CrashSpec, Mutation, Scenario, SplitMix,
};
use quepa_workload::TopologyFamily;

struct Args {
    scenarios: u64,
    seed: u64,
    concurrent: usize,
    crash: bool,
    pushdown: bool,
    soak: bool,
    time_budget: Duration,
    replay: Option<String>,
    inject_bug: Option<Mutation>,
    out_dir: String,
    family: Option<TopologyFamily>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenarios: 200,
        seed: 1,
        concurrent: 0,
        crash: false,
        pushdown: false,
        soak: false,
        time_budget: Duration::from_secs(300),
        replay: None,
        inject_bug: None,
        out_dir: "target/quepa-check".into(),
        family: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scenarios" => {
                args.scenarios =
                    value("--scenarios")?.parse().map_err(|e| format!("--scenarios: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--concurrent" => {
                args.concurrent =
                    value("--concurrent")?.parse().map_err(|e| format!("--concurrent: {e}"))?
            }
            "--crash" => args.crash = true,
            "--pushdown" => args.pushdown = true,
            "--soak" => args.soak = true,
            "--time-budget-secs" => {
                args.time_budget = Duration::from_secs(
                    value("--time-budget-secs")?
                        .parse()
                        .map_err(|e| format!("--time-budget-secs: {e}"))?,
                );
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--inject-bug" => {
                let spec = value("--inject-bug")?;
                let (kind, idx) = spec.split_once(':').unwrap_or((spec.as_str(), "0"));
                let idx: usize = idx.parse().map_err(|e| format!("--inject-bug index: {e}"))?;
                args.inject_bug = Some(match kind {
                    "drop-relation" => Mutation::DropRelation(idx),
                    "skip-wal-tail" => Mutation::SkipWalTail(idx.max(1)),
                    other => {
                        return Err(format!(
                        "unknown bug `{other}` (supported: drop-relation[:i], skip-wal-tail[:n])"
                    ))
                    }
                });
            }
            "--out-dir" => args.out_dir = value("--out-dir")?,
            "--family" => {
                let name = value("--family")?;
                args.family = Some(TopologyFamily::parse(&name).ok_or_else(|| {
                    format!(
                        "unknown family `{name}` (supported: {})",
                        TopologyFamily::ALL.map(|f| f.name()).join(", ")
                    )
                })?);
            }
            "--help" | "-h" => {
                println!("quepa-check [--scenarios N] [--seed S] [--concurrent M] [--crash] [--pushdown] [--soak] [--time-budget-secs T] [--family NAME] [--replay FILE] [--inject-bug drop-relation[:i]|skip-wal-tail[:n]] [--out-dir DIR]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// The crash-only sweep runs every seed against a crash plan: seeds
/// that drew one keep it, the rest get a deterministic forced plan from
/// a labelled sub-stream (so the sweep stays replayable by seed).
fn with_forced_crash(mut scenario: Scenario) -> Scenario {
    if scenario.crash.is_none() {
        let mut rng = SplitMix::new(scenario.seed).fork("forced-crash");
        let total = scenario.relations.len() + scenario.removals.len();
        scenario.crash = Some(CrashSpec {
            after_ops: rng.below(total + 1),
            torn_tail: rng.chance(50),
            checkpoint_every: if rng.chance(50) { rng.range(1, 4) } else { 0 },
            partial: rng.chance(50),
        });
    }
    scenario
}

fn write_failure(out_dir: &str, scenario: &Scenario) -> String {
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/fail-{}.scenario", scenario.seed);
    if let Err(e) = std::fs::write(&path, scenario.serialize()) {
        eprintln!("warning: could not write {path}: {e}");
    }
    path
}

/// Shrinks (against the same check that failed) and reports one failure;
/// returns the failing exit code.
fn report_failure(
    args: &Args,
    scenario: &Scenario,
    message: &str,
    check: &dyn Fn(&Scenario) -> Result<CheckReport, CheckFailure>,
) -> ExitCode {
    eprintln!("FAIL: {message}");
    eprintln!("shrinking to a minimal reproduction ...");
    let minimal = shrink(scenario, &|s| check(s).is_err());
    let diagnosis = check(&minimal).expect_err("shrunk scenario still fails");
    let path = write_failure(&args.out_dir, &minimal);
    eprintln!(
        "minimal reproduction ({} stores, {} relations, {} configs): {path}",
        minimal.stores.len(),
        minimal.relations.len(),
        minimal.configs.len()
    );
    eprintln!("{diagnosis}");
    eprintln!("replay with: quepa-check --replay {path}");
    ExitCode::FAILURE
}

struct Coverage {
    kinds: BTreeSet<&'static str>,
    faulted: u64,
    clean: u64,
    removing: u64,
    filtered: u64,
    augmented: usize,
}

impl Coverage {
    fn new() -> Self {
        Coverage {
            kinds: BTreeSet::new(),
            faulted: 0,
            clean: 0,
            removing: 0,
            filtered: 0,
            augmented: 0,
        }
    }

    fn record(&mut self, scenario: &Scenario, augmented: usize) {
        self.kinds.insert(scenario.stores[scenario.query_store].kind.name());
        if scenario.fault.is_some() {
            self.faulted += 1;
        } else {
            self.clean += 1;
        }
        if !scenario.removals.is_empty() {
            self.removing += 1;
        }
        if scenario.filter.is_some() {
            self.filtered += 1;
        }
        self.augmented += augmented;
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("quepa-check: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("quepa-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scenario = match Scenario::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("quepa-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check_scenario(&scenario).and_then(|r| match args.concurrent {
            0 => Ok(r),
            m => check_concurrent_scenario(&scenario, m),
        }) {
            Ok(report) => {
                println!(
                    "PASS: {path} ({} configs, {} augmented, {} missing)",
                    report.configs, report.augmented, report.missing
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(bug) = args.inject_bug {
        // Self-test: the planted bug must be caught on some scenario and
        // shrunk to a replayable minimal reproduction. A recovery bug
        // (skip-wal-tail) only bites under a crash plan, so that variant
        // forces one covering the whole mutation stream and is hunted by
        // the crash differential alone.
        let check: &dyn Fn(&Scenario) -> Result<CheckReport, CheckFailure> = match bug {
            Mutation::DropRelation(_) => &check_scenario,
            Mutation::SkipWalTail(_) => &check_crash_scenario,
        };
        for seed in args.seed..args.seed + 500 {
            let mut scenario = Scenario::generate(seed);
            if scenario.relations.is_empty() {
                continue;
            }
            scenario.mutation = Some(bug);
            if matches!(bug, Mutation::SkipWalTail(_)) {
                let total = scenario.relations.len() + scenario.removals.len();
                scenario.crash = Some(CrashSpec {
                    after_ops: total,
                    torn_tail: false,
                    checkpoint_every: 0,
                    partial: false,
                });
            }
            if let Err(first) = check(&scenario) {
                println!("planted bug caught at seed {seed}: {first}");
                let minimal = shrink(&scenario, &|s| check(s).is_err());
                let path = write_failure(&args.out_dir, &minimal);
                println!(
                    "shrunk to {} stores / {} relations / {} configs: {path}",
                    minimal.stores.len(),
                    minimal.relations.len(),
                    minimal.configs.len()
                );
                // The reproduction must replay from its file form alone.
                let replayed = Scenario::parse(&minimal.serialize()).expect("round-trips");
                if check(&replayed).is_ok() {
                    eprintln!("ERROR: replayed minimal scenario no longer fails");
                    return ExitCode::FAILURE;
                }
                println!("replay verified: the minimal scenario still fails after parse");
                return ExitCode::SUCCESS;
            }
        }
        eprintln!("ERROR: planted bug was never caught in 500 scenarios");
        return ExitCode::FAILURE;
    }

    let start = Instant::now();
    let mut coverage = Coverage::new();
    let mut ran = 0u64;
    let mut seed = args.seed;
    loop {
        if args.soak {
            if start.elapsed() >= args.time_budget {
                break;
            }
        } else if ran >= args.scenarios {
            break;
        }
        let mut generated = match args.family {
            Some(family) => Scenario::generate_hostile(family, seed),
            None => Scenario::generate(seed),
        };
        if args.pushdown {
            generated.force_filter();
        }
        let scenario = if args.crash { with_forced_crash(generated) } else { generated };
        let check: &dyn Fn(&Scenario) -> Result<CheckReport, CheckFailure> =
            if args.crash { &check_crash_scenario } else { &check_scenario };
        match check(&scenario) {
            Ok(report) => coverage.record(&scenario, report.augmented),
            Err(e) => return report_failure(&args, &scenario, &e.to_string(), check),
        }
        if args.concurrent > 0 {
            if let Err(e) = check_concurrent_scenario(&scenario, args.concurrent) {
                let concurrently = |s: &Scenario| check_concurrent_scenario(s, args.concurrent);
                return report_failure(&args, &scenario, &e.to_string(), &concurrently);
            }
        }
        ran += 1;
        seed += 1;
    }
    let mut mode = match args.concurrent {
        0 => String::new(),
        m => format!(" (+{m}-client concurrent check)"),
    };
    if args.crash {
        mode.push_str(" (crash-recovery differential)");
    }
    if args.pushdown {
        mode.push_str(" (forced pushdown filters)");
    }
    if let Some(family) = args.family {
        mode.push_str(&format!(" [hostile family: {}]", family.name()));
    }
    println!(
        "PASS: {ran} scenarios{mode} in {:.1}s ({} faulted, {} clean, {} with removals, {} filtered, {} augmented keys, query kinds: {})",
        start.elapsed().as_secs_f64(),
        coverage.faulted,
        coverage.clean,
        coverage.removing,
        coverage.filtered,
        coverage.augmented,
        coverage.kinds.iter().copied().collect::<Vec<_>>().join(",")
    );
    ExitCode::SUCCESS
}
