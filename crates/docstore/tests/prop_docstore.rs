//! Property tests: the document store's filter evaluation against manual
//! filtering, and store CRUD invariants.

use proptest::prelude::*;
use quepa_docstore::{DocQuery, DocumentDb, Filter};
use quepa_pdm::Value;

fn doc(id: usize, n: i64, tag: &str) -> Value {
    Value::object([
        ("_id", Value::str(format!("d{id}"))),
        ("n", Value::Int(n)),
        ("tag", Value::str(tag)),
    ])
}

proptest! {
    /// Range filters agree with manual filtering for arbitrary data.
    #[test]
    fn range_filter_matches_manual(
        ns in prop::collection::vec(-50i64..50, 1..40),
        lo in -50i64..50,
        hi in -50i64..50,
    ) {
        let mut db = DocumentDb::new("x");
        for (i, &n) in ns.iter().enumerate() {
            db.insert("c", doc(i, n, if n % 2 == 0 { "even" } else { "odd" })).unwrap();
        }
        let q = format!(r#"db.c.find({{"n":{{"$gte":{lo},"$lt":{hi}}}}})"#);
        let got = db.find(&q).unwrap().len();
        let want = ns.iter().filter(|&&n| n >= lo && n < hi).count();
        prop_assert_eq!(got, want);
    }

    /// $in / $ne / $or compose correctly.
    #[test]
    fn compound_filters(ns in prop::collection::vec(0i64..10, 1..30)) {
        let mut db = DocumentDb::new("x");
        for (i, &n) in ns.iter().enumerate() {
            db.insert("c", doc(i, n, if n % 2 == 0 { "even" } else { "odd" })).unwrap();
        }
        let got = db
            .find(r#"db.c.find({"$or":[{"n":{"$in":[1,2,3]}},{"tag":"even"}]})"#)
            .unwrap()
            .len();
        let want = ns.iter().filter(|&&n| [1, 2, 3].contains(&n) || n % 2 == 0).count();
        prop_assert_eq!(got, want);
    }

    /// Sorting really sorts, descending included, with limit applied after.
    #[test]
    fn sort_limit(ns in prop::collection::vec(any::<i32>(), 1..30), limit in 0usize..40) {
        let mut db = DocumentDb::new("x");
        for (i, &n) in ns.iter().enumerate() {
            db.insert("c", doc(i, n as i64, "t")).unwrap();
        }
        let q = format!(r#"db.c.find().sort({{"n":-1}}).limit({limit})"#);
        let docs = db.find(&q).unwrap();
        prop_assert_eq!(docs.len(), ns.len().min(limit));
        let got: Vec<i64> = docs.iter().map(|d| d.get("n").unwrap().as_int().unwrap()).collect();
        let mut want: Vec<i64> = ns.iter().map(|&n| n as i64).collect();
        want.sort_unstable_by(|a, b| b.cmp(a));
        want.truncate(limit);
        prop_assert_eq!(got, want);
    }

    /// remove() deletes exactly the matching documents.
    #[test]
    fn remove_matches_filter(ns in prop::collection::vec(0i64..20, 1..30), cut in 0i64..20) {
        let mut db = DocumentDb::new("x");
        for (i, &n) in ns.iter().enumerate() {
            db.insert("c", doc(i, n, "t")).unwrap();
        }
        let removed = db
            .query(&format!(r#"db.c.remove({{"n":{{"$lt":{cut}}}}})"#))
            .unwrap()[0]
            .get("removed")
            .unwrap()
            .as_int()
            .unwrap() as usize;
        let want_removed = ns.iter().filter(|&&n| n < cut).count();
        prop_assert_eq!(removed, want_removed);
        prop_assert_eq!(db.len("c"), ns.len() - want_removed);
    }

    /// Filter compilation round-trips through the query parser: the parsed
    /// filter matches exactly the documents the direct API matches.
    #[test]
    fn parser_and_api_agree(ns in prop::collection::vec(0i64..10, 1..20), pick in 0i64..10) {
        let mut db = DocumentDb::new("x");
        for (i, &n) in ns.iter().enumerate() {
            db.insert("c", doc(i, n, "t")).unwrap();
        }
        let via_text =
            db.find(&format!(r#"db.c.find({{"n":{pick}}})"#)).unwrap().len();
        let filter = Filter::compile(&Value::object([("n", Value::Int(pick))])).unwrap();
        let q = DocQuery {
            collection: "c".into(),
            verb: quepa_docstore::QueryVerb::Find,
            filter,
            sort: None,
            limit: None,
        };
        let via_api = db.run_read(&q).unwrap().len();
        prop_assert_eq!(via_text, via_api);
    }
}
