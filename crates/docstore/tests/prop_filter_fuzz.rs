//! Fuzz corpus for the document filter compiler.
//!
//! Properties, mirroring the SQL fuzz suite:
//!
//! 1. **No panics**: `Filter::compile` classifies arbitrary values
//!    (including deeply nested arrays/objects, `$`-keyed operator soup
//!    and type-confused operands) into `Ok`/`Err` without panicking, and
//!    `matches` never panics on any compiled-filter × document pair.
//! 2. **Round trip**: `compile(&f.to_spec()) == f` — checked both for
//!    generated filter ASTs and for every arbitrary value that happens to
//!    compile.
//!
//! The vendored proptest has no shrinking and therefore no
//! `proptest-regressions` corpus files; failures print the generated
//! input and deterministic case number instead (see DESIGN.md).

use proptest::prelude::*;
use quepa_docstore::{FieldOp, Filter};
use quepa_pdm::Value;

/// Arbitrary values, biased toward filter-looking shapes: plenty of `$op`
/// keys, operator operands of the wrong type, and nesting.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100_000i64..100_000).prop_map(|n| Value::Float(n as f64 / 100.0)),
        "[a-c%_]{0,5}".prop_map(Value::str),
    ];
    let key = prop_oneof![
        "[a-c_.]{1,6}".prop_map(|s| s),
        Just("$eq".to_string()),
        Just("$ne".to_string()),
        Just("$gt".to_string()),
        Just("$gte".to_string()),
        Just("$lt".to_string()),
        Just("$lte".to_string()),
        Just("$in".to_string()),
        Just("$exists".to_string()),
        Just("$like".to_string()),
        Just("$contains".to_string()),
        Just("$prefix".to_string()),
        Just("$and".to_string()),
        Just("$or".to_string()),
        Just("$not".to_string()),
        Just("$bogus".to_string()),
    ];
    leaf.prop_recursive(4, 48, 4, move |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::btree_map(key.clone(), inner, 0..4).prop_map(Value::Object),
        ]
    })
}

fn arb_field_op() -> impl Strategy<Value = FieldOp> {
    let operand = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        "[a-c%_]{0,5}".prop_map(Value::str),
        // Equality against an all-`$`-keys object: the case the explicit
        // `$eq` spec form exists for.
        Just(Value::object([("$gt", Value::Int(1))])),
    ];
    prop_oneof![
        operand.clone().prop_map(FieldOp::Eq),
        operand.clone().prop_map(FieldOp::Ne),
        operand.clone().prop_map(FieldOp::Gt),
        operand.clone().prop_map(FieldOp::Gte),
        operand.clone().prop_map(FieldOp::Lt),
        operand.clone().prop_map(FieldOp::Lte),
        prop::collection::vec(operand, 0..4).prop_map(FieldOp::In),
        any::<bool>().prop_map(FieldOp::Exists),
        "[a-c%_]{0,6}".prop_map(FieldOp::Like),
        "[a-c]{0,4}".prop_map(FieldOp::Contains),
        "[a-c]{0,4}".prop_map(FieldOp::Prefix),
    ]
}

/// Filter ASTs within the `to_spec` contract: no `$`-prefixed paths, no
/// empty `And`/`Or` (neither is producible by `compile`).
fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::All),
        ("[a-c_.]{1,6}", arb_field_op()).prop_map(|(path, op)| Filter::Field { path, op }),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compilation classifies, never panics — and whatever compiles must
    /// survive the spec round trip and match documents without panicking.
    #[test]
    fn arbitrary_values_compile_or_reject_and_round_trip(spec in arb_value(), doc in arb_value()) {
        if let Ok(filter) = Filter::compile(&spec) {
            let respec = filter.to_spec();
            let recompiled = Filter::compile(&respec);
            prop_assert!(recompiled.is_ok(), "spec form {respec} of {spec} fails to compile");
            prop_assert_eq!(&filter, &recompiled.unwrap(), "round trip changed filter of {}", spec);
            let _ = filter.matches(&doc);
        }
    }

    /// Generated filter ASTs round-trip through their spec form exactly.
    #[test]
    fn generated_filters_round_trip_through_to_spec(filter in arb_filter(), doc in arb_value()) {
        let spec = filter.to_spec();
        let recompiled = Filter::compile(&spec);
        prop_assert!(recompiled.is_ok(), "spec {spec} fails to compile");
        prop_assert_eq!(&filter, &recompiled.unwrap(), "round trip changed filter via {}", spec);
        let _ = filter.matches(&doc);
    }
}
