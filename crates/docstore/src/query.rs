//! The query language: Mongo-shell-style method chains.
//!
//! Grammar (whitespace-insensitive between tokens):
//!
//! ```text
//! query  := "db" "." ident "." verb "(" [json] ")" modifier*
//! verb   := "find" | "count" | "remove"
//! modifier := "." "sort" "(" json ")" | "." "limit" "(" int ")"
//! ```

use quepa_pdm::{text, Value};

use crate::error::{DocError, Result};
use crate::filter::Filter;

/// What the query does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryVerb {
    /// Return matching documents.
    Find,
    /// Return the number of matching documents (an aggregate — the
    /// polystore Validator refuses to augment these).
    Count,
    /// Delete matching documents.
    Remove,
}

/// A parsed query: collection + verb + filter + modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct DocQuery {
    /// Target collection.
    pub collection: String,
    /// Find/count/remove.
    pub verb: QueryVerb,
    /// Compiled filter.
    pub filter: Filter,
    /// Optional `(field, ascending)` sort.
    pub sort: Option<(String, bool)>,
    /// Optional result cap.
    pub limit: Option<usize>,
}

impl DocQuery {
    /// Parses the textual form.
    pub fn parse(input: &str) -> Result<DocQuery> {
        let mut p = Chars { s: input, pos: 0 };
        p.skip_ws();
        p.expect_word("db")?;
        p.expect_char('.')?;
        let collection = p.ident()?;
        p.expect_char('.')?;
        let verb_name = p.ident()?;
        let verb = match verb_name.as_str() {
            "find" => QueryVerb::Find,
            "count" => QueryVerb::Count,
            "remove" => QueryVerb::Remove,
            other => return Err(DocError::Syntax(format!("unknown verb `{other}`"))),
        };
        let arg = p.paren_arg()?;
        let filter_spec = if arg.trim().is_empty() {
            Value::object(std::iter::empty::<(String, Value)>())
        } else {
            text::parse(arg.trim())?
        };
        let filter = Filter::compile(&filter_spec)?;

        let mut sort = None;
        let mut limit = None;
        loop {
            p.skip_ws();
            if !p.eat_char('.') {
                break;
            }
            p.skip_ws();
            let m = p.ident()?;
            let arg = p.paren_arg()?;
            match m.as_str() {
                "sort" => {
                    let spec = text::parse(arg.trim())?;
                    let obj = spec
                        .as_object()
                        .ok_or_else(|| DocError::Syntax("sort() requires an object".into()))?;
                    if obj.len() != 1 {
                        return Err(DocError::Syntax("sort() requires exactly one field".into()));
                    }
                    let (field, dir) = obj.iter().next().expect("len checked");
                    let asc = match dir.as_int() {
                        Some(1) => true,
                        Some(-1) => false,
                        _ => return Err(DocError::Syntax("sort direction must be 1 or -1".into())),
                    };
                    sort = Some((field.clone(), asc));
                }
                "limit" => {
                    let n: usize = arg
                        .trim()
                        .parse()
                        .map_err(|_| DocError::Syntax("limit() requires an integer".into()))?;
                    limit = Some(n);
                }
                other => return Err(DocError::Syntax(format!("unknown modifier `{other}`"))),
            }
        }
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(DocError::Syntax(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(DocQuery { collection, verb, filter, sort, limit })
    }
}

struct Chars<'a> {
    s: &'a str,
    pos: usize,
}

impl Chars<'_> {
    fn skip_ws(&mut self) {
        while self.s[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat_char(&mut self, c: char) -> bool {
        if self.s[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<()> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(DocError::Syntax(format!("expected `{c}` at byte {}", self.pos)))
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<()> {
        if self.s[self.pos..].starts_with(w) {
            self.pos += w.len();
            Ok(())
        } else {
            Err(DocError::Syntax(format!("expected `{w}` at byte {}", self.pos)))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let start = self.pos;
        while self.s[self.pos..]
            .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            Err(DocError::Syntax(format!("expected identifier at byte {start}")))
        } else {
            Ok(self.s[start..self.pos].to_owned())
        }
    }

    /// Consumes `( … )`, returning the raw text between balanced parens.
    /// Parentheses inside string literals are ignored.
    fn paren_arg(&mut self) -> Result<String> {
        self.skip_ws();
        self.expect_char('(')?;
        let start = self.pos;
        let mut depth = 1usize;
        let mut in_str = false;
        let mut escaped = false;
        for (i, c) in self.s[start..].char_indices() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let arg = self.s[start..start + i].to_owned();
                        self.pos = start + i + 1;
                        return Ok(arg);
                    }
                }
                _ => {}
            }
        }
        Err(DocError::Syntax("unbalanced parentheses".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_find() {
        let q = DocQuery::parse(r#"db.albums.find({"title": "Wish"})"#).unwrap();
        assert_eq!(q.collection, "albums");
        assert_eq!(q.verb, QueryVerb::Find);
        assert!(q.sort.is_none());
        assert!(q.limit.is_none());
    }

    #[test]
    fn empty_filter() {
        let q = DocQuery::parse("db.albums.find()").unwrap();
        assert_eq!(q.filter, Filter::All);
        let q = DocQuery::parse("db.albums.find({})").unwrap();
        assert_eq!(q.filter, Filter::All);
    }

    #[test]
    fn modifiers() {
        let q = DocQuery::parse(
            r#"db.albums.find({"year":{"$gte":1990}}).sort({"year": -1}).limit(5)"#,
        )
        .unwrap();
        assert_eq!(q.sort, Some(("year".into(), false)));
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn count_and_remove() {
        assert_eq!(DocQuery::parse("db.c.count()").unwrap().verb, QueryVerb::Count);
        assert_eq!(DocQuery::parse(r#"db.c.remove({"x":1})"#).unwrap().verb, QueryVerb::Remove);
    }

    #[test]
    fn strings_containing_parens_and_quotes() {
        let q = DocQuery::parse(r#"db.c.find({"t": "a (weird) \"title\""})"#).unwrap();
        assert!(matches!(q.filter, Filter::Field { .. }));
    }

    #[test]
    fn whitespace_tolerance() {
        let q = DocQuery::parse("  db.c.find( { \"a\" : 1 } ) . limit( 3 )  ").unwrap();
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn syntax_errors() {
        assert!(DocQuery::parse("albums.find({})").is_err());
        assert!(DocQuery::parse("db.albums.fetch({})").is_err());
        assert!(DocQuery::parse("db.albums.find({)").is_err());
        assert!(DocQuery::parse("db.albums.find({}) extra").is_err());
        assert!(DocQuery::parse("db.albums.find({}).sort({\"a\":2})").is_err());
        assert!(DocQuery::parse("db.albums.find({}).sort({\"a\":1,\"b\":1})").is_err());
        assert!(DocQuery::parse("db.albums.find({}).limit(x)").is_err());
        assert!(DocQuery::parse("db.albums.find({}).skip(3)").is_err());
        assert!(DocQuery::parse("db.albums.find({\"a\" 1})").is_err());
    }
}
