//! # quepa-docstore — an embedded document store
//!
//! Plays the role MongoDB plays in the paper's Polyphony polystore: the
//! *warehouse department* keeps its `catalogue` database as JSON documents
//! and queries it with a Mongo-flavoured native language.
//!
//! Documents are PDM [`Value`](quepa_pdm::Value) objects keyed by their
//! `_id` field. Queries use a method-chain syntax close to the Mongo shell:
//!
//! ```text
//! db.albums.find({"title": {"$like": "%wish%"}}).sort({"year": -1}).limit(5)
//! db.albums.count({"year": {"$gte": 1990}})
//! ```
//!
//! with filter operators `$eq` (implicit), `$ne`, `$gt`, `$gte`, `$lt`,
//! `$lte`, `$in`, `$exists`, `$like`, `$contains`, `$prefix`, `$and`,
//! `$or`, `$not`, and dotted field paths.
//!
//! ```
//! use quepa_docstore::DocumentDb;
//! use quepa_pdm::text;
//!
//! let mut db = DocumentDb::new("catalogue");
//! db.insert("albums", text::parse(r#"{"_id":"d1","title":"Wish","year":1992}"#).unwrap()).unwrap();
//! let docs = db.query(r#"db.albums.find({"title": {"$like": "%wish%"}})"#).unwrap();
//! assert_eq!(docs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod filter;
pub mod query;
pub mod store;

pub use error::{DocError, Result};
pub use filter::{FieldOp, Filter};
pub use query::{DocQuery, QueryVerb};
pub use store::DocumentDb;
