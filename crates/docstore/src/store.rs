//! The document store engine.

use std::collections::{BTreeMap, HashMap};

use quepa_pdm::Value;

use crate::error::{DocError, Result};
use crate::filter::Filter;
use crate::query::{DocQuery, QueryVerb};

/// One collection: documents keyed by `_id` (insertion order preserved via
/// the `order` vector so scans and ties in sorting stay deterministic).
#[derive(Debug, Clone, Default)]
struct Collection {
    docs: HashMap<String, Value>,
    order: Vec<String>,
    tombstones: usize,
}

impl Collection {
    fn compact_if_needed(&mut self) {
        // The order vector keeps ids of deleted docs as tombstones; compact
        // once they dominate to keep scans linear in live documents.
        if self.tombstones > self.docs.len() {
            self.order.retain(|id| self.docs.contains_key(id));
            self.tombstones = 0;
        }
    }

    fn iter_live(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.order.iter().filter_map(|id| self.docs.get_key_value(id))
    }
}

/// An embedded document database: named collections of JSON-like documents.
#[derive(Debug, Clone)]
pub struct DocumentDb {
    name: String,
    collections: BTreeMap<String, Collection>,
}

impl DocumentDb {
    /// Creates an empty document database.
    pub fn new(name: impl Into<String>) -> Self {
        DocumentDb { name: name.into(), collections: BTreeMap::new() }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The collection names, sorted.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Number of live documents in a collection (0 if absent).
    pub fn len(&self, collection: &str) -> usize {
        self.collections.get(collection).map_or(0, |c| c.docs.len())
    }

    /// True if the named collection is empty or absent.
    pub fn is_empty(&self, collection: &str) -> bool {
        self.len(collection) == 0
    }

    /// Inserts a document. It must be an object with a string or integer
    /// `_id`; integer ids are stored under their decimal rendering.
    /// Creates the collection on first use (Mongo behaviour).
    pub fn insert(&mut self, collection: &str, doc: Value) -> Result<String> {
        let id = match doc.get("_id") {
            Some(Value::Str(s)) => s.clone(),
            Some(Value::Int(i)) => i.to_string(),
            Some(other) => {
                return Err(DocError::BadDocument(format!(
                    "_id must be a string or int, got {}",
                    other.type_name()
                )))
            }
            None => return Err(DocError::BadDocument("document lacks an _id".into())),
        };
        if doc.as_object().is_none() {
            return Err(DocError::BadDocument(format!(
                "document must be an object, got {}",
                doc.type_name()
            )));
        }
        let coll = self.collections.entry(collection.to_owned()).or_default();
        if coll.docs.contains_key(&id) {
            return Err(DocError::DuplicateId(id));
        }
        coll.order.push(id.clone());
        coll.docs.insert(id.clone(), doc);
        Ok(id)
    }

    /// Point lookup by `_id`.
    pub fn get(&self, collection: &str, id: &str) -> Option<&Value> {
        self.collections.get(collection)?.docs.get(id)
    }

    /// Batched point lookup (one simulated round trip). Missing ids are
    /// skipped.
    pub fn multi_get(&self, collection: &str, ids: &[&str]) -> Vec<(String, Value)> {
        let Some(coll) = self.collections.get(collection) else { return Vec::new() };
        ids.iter()
            .filter_map(|id| coll.docs.get(*id).map(|d| ((*id).to_owned(), d.clone())))
            .collect()
    }

    /// Batched point lookup with a store-side filter: one simulated round
    /// trip that returns only the documents matching `filter`, plus the
    /// ids whose document exists but fails the filter (so callers can tell
    /// filtered-out apart from missing).
    pub fn multi_get_where(
        &self,
        collection: &str,
        ids: &[&str],
        filter: &Filter,
    ) -> (Vec<(String, Value)>, Vec<String>) {
        let Some(coll) = self.collections.get(collection) else {
            return (Vec::new(), Vec::new());
        };
        let mut matched = Vec::new();
        let mut rejected = Vec::new();
        for id in ids {
            let Some(doc) = coll.docs.get(*id) else { continue };
            if filter.matches(doc) {
                matched.push(((*id).to_owned(), doc.clone()));
            } else {
                rejected.push((*id).to_owned());
            }
        }
        (matched, rejected)
    }

    /// Deletes by `_id`; returns whether the document existed.
    pub fn delete(&mut self, collection: &str, id: &str) -> bool {
        if let Some(coll) = self.collections.get_mut(collection) {
            let existed = coll.docs.remove(id).is_some();
            if existed {
                coll.tombstones += 1;
                coll.compact_if_needed();
            }
            existed
        } else {
            false
        }
    }

    /// Parses and runs a query string. `find` returns documents, `count`
    /// returns a single `{ "count": n }` document, `remove` a single
    /// `{ "removed": n }` document.
    pub fn query(&mut self, input: &str) -> Result<Vec<Value>> {
        let q = DocQuery::parse(input)?;
        self.run(&q)
    }

    /// Read-only execution of `find`/`count` queries (errors on `remove`).
    pub fn find(&self, input: &str) -> Result<Vec<Value>> {
        let q = DocQuery::parse(input)?;
        if q.verb == QueryVerb::Remove {
            return Err(DocError::Syntax("find() API cannot run remove queries".into()));
        }
        self.run_read_inner(&q)
    }

    /// Runs a parsed query.
    pub fn run(&mut self, q: &DocQuery) -> Result<Vec<Value>> {
        match q.verb {
            QueryVerb::Find | QueryVerb::Count => self.run_read_inner(q),
            QueryVerb::Remove => {
                let coll = self
                    .collections
                    .get_mut(&q.collection)
                    .ok_or_else(|| DocError::UnknownCollection(q.collection.clone()))?;
                let doomed: Vec<String> = coll
                    .iter_live()
                    .filter(|(_, d)| q.filter.matches(d))
                    .map(|(id, _)| id.clone())
                    .collect();
                for id in &doomed {
                    coll.docs.remove(id);
                    coll.tombstones += 1;
                }
                coll.compact_if_needed();
                Ok(vec![Value::object([("removed", Value::Int(doomed.len() as i64))])])
            }
        }
    }

    /// Read-only execution of a parsed `find`/`count` query (errors on
    /// `remove`, which requires [`DocumentDb::run`]).
    pub fn run_read(&self, q: &DocQuery) -> Result<Vec<Value>> {
        if q.verb == QueryVerb::Remove {
            return Err(DocError::Syntax("run_read() cannot run remove queries".into()));
        }
        self.run_read_inner(q)
    }

    fn run_read_inner(&self, q: &DocQuery) -> Result<Vec<Value>> {
        let coll = self
            .collections
            .get(&q.collection)
            .ok_or_else(|| DocError::UnknownCollection(q.collection.clone()))?;

        let mut matched: Vec<&Value>;
        if let Some(id) = q.filter.as_id_lookup() {
            // Point lookup fast path.
            matched = coll.docs.get(id).into_iter().collect();
        } else {
            matched = coll.iter_live().map(|(_, d)| d).filter(|d| q.filter.matches(d)).collect();
        }

        if q.verb == QueryVerb::Count {
            return Ok(vec![Value::object([("count", Value::Int(matched.len() as i64))])]);
        }

        if let Some((field, asc)) = &q.sort {
            matched.sort_by(|a, b| {
                let av = a.get_path(field).unwrap_or(&Value::Null);
                let bv = b.get_path(field).unwrap_or(&Value::Null);
                let ord = av.total_cmp(bv);
                if *asc {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(limit) = q.limit {
            matched.truncate(limit);
        }
        Ok(matched.into_iter().cloned().collect())
    }

    /// Total live documents across collections.
    pub fn total_docs(&self) -> usize {
        self.collections.values().map(|c| c.docs.len()).sum()
    }

    /// Seedable population hook for the simulation harness (`quepa-check`):
    /// a database with one `albums` collection holding documents
    /// `d0..d{n-1}` with a dense integer `seq`, every value derived from
    /// `seed` alone so the database is bit-identical across hosts and runs.
    pub fn populate_seeded(name: impl Into<String>, seed: u64, n: usize) -> DocumentDb {
        let mut db = DocumentDb::new(name);
        for i in 0..n {
            db.insert(
                "albums",
                Value::object([
                    ("_id", Value::Str(format!("d{i}"))),
                    ("title", Value::Str(format!("album-{:08x}", seed_mix(seed, i as u64) >> 32))),
                    ("seq", Value::Int(i as i64)),
                ]),
            )
            .expect("generated documents carry unique _ids");
        }
        db
    }
}

/// splitmix64 finalizer over two words — the harness-wide convention for
/// deriving per-object values from a seed.
fn seed_mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::text;

    fn catalogue() -> DocumentDb {
        let mut db = DocumentDb::new("catalogue");
        for doc in [
            r#"{"_id":"d1","title":"Wish","artist":"The Cure","year":1992}"#,
            r#"{"_id":"d2","title":"Disintegration","artist":"The Cure","year":1989}"#,
            r#"{"_id":"d3","title":"OK Computer","artist":"Radiohead","year":1997}"#,
        ] {
            db.insert("albums", text::parse(doc).unwrap()).unwrap();
        }
        db
    }

    #[test]
    fn find_with_filter() {
        let db = catalogue();
        let docs = db.find(r#"db.albums.find({"artist":"The Cure"})"#).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn find_like() {
        let db = catalogue();
        let docs = db.find(r#"db.albums.find({"title":{"$like":"%wish%"}})"#).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].get("_id").unwrap().as_str(), Some("d1"));
    }

    #[test]
    fn sort_and_limit() {
        let db = catalogue();
        let docs = db.find(r#"db.albums.find().sort({"year":-1}).limit(2)"#).unwrap();
        let years: Vec<i64> =
            docs.iter().map(|d| d.get("year").unwrap().as_int().unwrap()).collect();
        assert_eq!(years, vec![1997, 1992]);
    }

    #[test]
    fn count() {
        let db = catalogue();
        let r = db.find(r#"db.albums.count({"year":{"$gte":1990}})"#).unwrap();
        assert_eq!(r[0].get("count").unwrap().as_int(), Some(2));
    }

    #[test]
    fn remove() {
        let mut db = catalogue();
        let r = db.query(r#"db.albums.remove({"artist":"The Cure"})"#).unwrap();
        assert_eq!(r[0].get("removed").unwrap().as_int(), Some(2));
        assert_eq!(db.len("albums"), 1);
        assert!(db.get("albums", "d1").is_none());
    }

    #[test]
    fn point_lookup_and_multi_get() {
        let db = catalogue();
        assert!(db.get("albums", "d2").is_some());
        assert!(db.get("albums", "zzz").is_none());
        let got = db.multi_get("albums", &["d3", "nope", "d1"]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "d3");
    }

    #[test]
    fn id_fast_path_equals_scan() {
        let db = catalogue();
        let fast = db.find(r#"db.albums.find({"_id":"d2"})"#).unwrap();
        let scan = db.find(r#"db.albums.find({"title":"Disintegration"})"#).unwrap();
        assert_eq!(fast, scan);
    }

    #[test]
    fn insert_validation() {
        let mut db = DocumentDb::new("x");
        assert!(matches!(
            db.insert("c", text::parse(r#"{"no_id":1}"#).unwrap()),
            Err(DocError::BadDocument(_))
        ));
        assert!(matches!(
            db.insert("c", text::parse(r#"{"_id":true}"#).unwrap()),
            Err(DocError::BadDocument(_))
        ));
        db.insert("c", text::parse(r#"{"_id":"a"}"#).unwrap()).unwrap();
        assert_eq!(
            db.insert("c", text::parse(r#"{"_id":"a"}"#).unwrap()),
            Err(DocError::DuplicateId("a".into()))
        );
        // Integer ids are normalised to strings.
        let id = db.insert("c", text::parse(r#"{"_id":42}"#).unwrap()).unwrap();
        assert_eq!(id, "42");
        assert!(db.get("c", "42").is_some());
    }

    #[test]
    fn unknown_collection() {
        let db = catalogue();
        assert!(matches!(db.find("db.ghost.find()"), Err(DocError::UnknownCollection(_))));
    }

    #[test]
    fn tombstone_compaction_keeps_scans_correct() {
        let mut db = DocumentDb::new("x");
        for i in 0..100 {
            db.insert(
                "c",
                Value::object([("_id", Value::str(format!("k{i}"))), ("n", Value::Int(i))]),
            )
            .unwrap();
        }
        for i in 0..80 {
            assert!(db.delete("c", &format!("k{i}")));
        }
        assert!(!db.delete("c", "k0"), "double delete returns false");
        let docs = db.find("db.c.find()").unwrap();
        assert_eq!(docs.len(), 20);
        let r = db.find(r#"db.c.count({"n":{"$gte":90}})"#).unwrap();
        assert_eq!(r[0].get("count").unwrap().as_int(), Some(10));
    }
}
