//! Filter documents: a compiled form of Mongo-style query filters and the
//! matcher that evaluates them against documents.

use quepa_pdm::Value;

use crate::error::{DocError, Result};

/// A single field condition.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldOp {
    /// `$eq` (also the implicit form `{"f": v}`).
    Eq(Value),
    /// `$ne`
    Ne(Value),
    /// `$gt`
    Gt(Value),
    /// `$gte`
    Gte(Value),
    /// `$lt`
    Lt(Value),
    /// `$lte`
    Lte(Value),
    /// `$in`: the field value is one of the listed values.
    In(Vec<Value>),
    /// `$exists`: the field is present (true) / absent (false).
    Exists(bool),
    /// `$like`: SQL-style pattern with `%`/`_`, case-insensitive.
    Like(String),
    /// `$contains`: case-insensitive substring.
    Contains(String),
    /// `$prefix`: case-sensitive prefix.
    Prefix(String),
}

/// A compiled filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// A condition on one (dotted) field path.
    Field {
        /// Dotted field path.
        path: String,
        /// The condition.
        op: FieldOp,
    },
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

impl Filter {
    /// Compiles a filter from its value form (the parsed JSON the query
    /// language carries).
    ///
    /// `{}` compiles to [`Filter::All`]; `{"a": 1, "b": {"$gt": 2}}` to a
    /// conjunction of field conditions; `{"$or": [f1, f2]}` and friends to
    /// boolean combinators.
    pub fn compile(spec: &Value) -> Result<Filter> {
        let obj = spec
            .as_object()
            .ok_or_else(|| DocError::BadFilter(format!("filter must be an object, got {spec}")))?;
        let mut clauses = Vec::with_capacity(obj.len());
        for (key, val) in obj {
            if let Some(op) = key.strip_prefix('$') {
                clauses.push(Self::compile_logical(op, val)?);
            } else {
                clauses.push(Self::compile_field(key, val)?);
            }
        }
        Ok(match clauses.len() {
            0 => Filter::All,
            1 => clauses.pop().expect("one clause"),
            _ => Filter::And(clauses),
        })
    }

    fn compile_logical(op: &str, val: &Value) -> Result<Filter> {
        match op {
            "and" | "or" => {
                let items = val.as_array().ok_or_else(|| {
                    DocError::BadFilter(format!("${op} requires an array of filters"))
                })?;
                let parts: Result<Vec<Filter>> = items.iter().map(Self::compile).collect();
                let parts = parts?;
                if parts.is_empty() {
                    return Err(DocError::BadFilter(format!("${op} requires at least one filter")));
                }
                Ok(if op == "and" { Filter::And(parts) } else { Filter::Or(parts) })
            }
            "not" => Ok(Filter::Not(Box::new(Self::compile(val)?))),
            other => Err(DocError::BadFilter(format!("unknown logical operator ${other}"))),
        }
    }

    fn compile_field(path: &str, val: &Value) -> Result<Filter> {
        // An object whose every key starts with `$` is an operator document;
        // any other value is an implicit equality.
        let ops = match val.as_object() {
            Some(m) if !m.is_empty() && m.keys().all(|k| k.starts_with('$')) => m,
            _ => return Ok(Filter::Field { path: path.to_owned(), op: FieldOp::Eq(val.clone()) }),
        };
        let mut clauses = Vec::with_capacity(ops.len());
        for (opname, operand) in ops {
            let op = match opname.as_str() {
                "$eq" => FieldOp::Eq(operand.clone()),
                "$ne" => FieldOp::Ne(operand.clone()),
                "$gt" => FieldOp::Gt(operand.clone()),
                "$gte" => FieldOp::Gte(operand.clone()),
                "$lt" => FieldOp::Lt(operand.clone()),
                "$lte" => FieldOp::Lte(operand.clone()),
                "$in" => FieldOp::In(
                    operand
                        .as_array()
                        .ok_or_else(|| DocError::BadFilter("$in requires an array".into()))?
                        .to_vec(),
                ),
                "$exists" => FieldOp::Exists(
                    operand
                        .as_bool()
                        .ok_or_else(|| DocError::BadFilter("$exists requires a bool".into()))?,
                ),
                "$like" => FieldOp::Like(str_operand(opname, operand)?),
                "$contains" => FieldOp::Contains(str_operand(opname, operand)?),
                "$prefix" => FieldOp::Prefix(str_operand(opname, operand)?),
                other => return Err(DocError::BadFilter(format!("unknown operator {other}"))),
            };
            clauses.push(Filter::Field { path: path.to_owned(), op });
        }
        Ok(if clauses.len() == 1 {
            clauses.pop().expect("one clause")
        } else {
            Filter::And(clauses)
        })
    }

    /// The canonical value form of the filter: `compile(&f.to_spec())`
    /// reconstructs a structurally equal filter — the round-trip property
    /// the fuzz suite checks.
    ///
    /// The form is fully explicit (always `{"path": {"$op": v}}`, never
    /// the implicit-equality shorthand), so it is unambiguous even when
    /// an equality operand is itself an all-`$`-keys object. The contract
    /// covers every filter `compile` can produce; hand-built filters with
    /// a `$`-prefixed field path or an empty `And`/`Or` have no spec form
    /// (neither does `compile` ever produce them).
    pub fn to_spec(&self) -> Value {
        match self {
            Filter::All => Value::Object(Default::default()),
            Filter::Field { path, op } => Value::object([(path.clone(), op.to_spec())]),
            Filter::And(fs) => {
                Value::object([("$and", Value::array(fs.iter().map(Filter::to_spec)))])
            }
            Filter::Or(fs) => {
                Value::object([("$or", Value::array(fs.iter().map(Filter::to_spec)))])
            }
            Filter::Not(f) => Value::object([("$not", f.to_spec())]),
        }
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Filter::All => true,
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
            Filter::Field { path, op } => {
                let field = doc.get_path(path);
                match op {
                    FieldOp::Exists(want) => field.is_some() == *want,
                    FieldOp::Eq(v) => field.is_some_and(|f| value_eq(f, v)),
                    FieldOp::Ne(v) => field.is_some_and(|f| !value_eq(f, v)),
                    FieldOp::Gt(v) => cmp_ok(field, v, |o| o.is_gt()),
                    FieldOp::Gte(v) => cmp_ok(field, v, |o| o.is_ge()),
                    FieldOp::Lt(v) => cmp_ok(field, v, |o| o.is_lt()),
                    FieldOp::Lte(v) => cmp_ok(field, v, |o| o.is_le()),
                    FieldOp::In(vs) => field.is_some_and(|f| vs.iter().any(|v| value_eq(f, v))),
                    FieldOp::Like(p) => {
                        field.and_then(Value::as_str).is_some_and(|s| quepa_relstore_like(p, s))
                    }
                    FieldOp::Contains(needle) => field
                        .and_then(Value::as_str)
                        .is_some_and(|s| s.to_lowercase().contains(&needle.to_lowercase())),
                    FieldOp::Prefix(p) => {
                        field.and_then(Value::as_str).is_some_and(|s| s.starts_with(p))
                    }
                }
            }
        }
    }

    /// If this filter is exactly `_id = <string>` (possibly the only clause),
    /// returns the id — the store uses it for a point lookup.
    pub fn as_id_lookup(&self) -> Option<&str> {
        match self {
            Filter::Field { path, op: FieldOp::Eq(Value::Str(s)) } if path == "_id" => Some(s),
            _ => None,
        }
    }
}

impl FieldOp {
    /// The operator document for this condition, e.g. `{"$gt": 3}`.
    fn to_spec(&self) -> Value {
        let (name, operand) = match self {
            FieldOp::Eq(v) => ("$eq", v.clone()),
            FieldOp::Ne(v) => ("$ne", v.clone()),
            FieldOp::Gt(v) => ("$gt", v.clone()),
            FieldOp::Gte(v) => ("$gte", v.clone()),
            FieldOp::Lt(v) => ("$lt", v.clone()),
            FieldOp::Lte(v) => ("$lte", v.clone()),
            FieldOp::In(vs) => ("$in", Value::Array(vs.clone())),
            FieldOp::Exists(b) => ("$exists", Value::Bool(*b)),
            FieldOp::Like(s) => ("$like", Value::str(s.clone())),
            FieldOp::Contains(s) => ("$contains", Value::str(s.clone())),
            FieldOp::Prefix(s) => ("$prefix", Value::str(s.clone())),
        };
        Value::object([(name, operand)])
    }
}

fn str_operand(op: &str, operand: &Value) -> Result<String> {
    operand
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| DocError::BadFilter(format!("{op} requires a string")))
}

fn value_eq(a: &Value, b: &Value) -> bool {
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        return x == y;
    }
    a == b
}

fn cmp_ok(field: Option<&Value>, v: &Value, pred: impl Fn(std::cmp::Ordering) -> bool) -> bool {
    // Range comparisons only apply between two numerics or two strings;
    // mismatched types never match (Mongo's BSON type-bracketing, simplified).
    match field {
        None => false,
        Some(f) => {
            let comparable = (f.as_f64().is_some() && v.as_f64().is_some())
                || (f.as_str().is_some() && v.as_str().is_some());
            comparable && pred(f.total_cmp(v))
        }
    }
}

/// SQL-LIKE matching, duplicated from the relational engine's semantics so
/// the two stores agree on the pattern dialect without a cross-store
/// dependency. Case-insensitive; `%` any run, `_` one char.
fn quepa_relstore_like(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().flat_map(|c| c.to_lowercase()).collect();
    let t: Vec<char> = text.chars().flat_map(|c| c.to_lowercase()).collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::text;

    fn filter(s: &str) -> Filter {
        Filter::compile(&text::parse(s).unwrap()).unwrap()
    }

    fn doc(s: &str) -> Value {
        text::parse(s).unwrap()
    }

    #[test]
    fn empty_filter_matches_all() {
        assert_eq!(filter("{}"), Filter::All);
        assert!(filter("{}").matches(&doc(r#"{"a":1}"#)));
    }

    #[test]
    fn implicit_equality() {
        let f = filter(r#"{"title":"Wish"}"#);
        assert!(f.matches(&doc(r#"{"title":"Wish","year":1992}"#)));
        assert!(!f.matches(&doc(r#"{"title":"Faith"}"#)));
        assert!(!f.matches(&doc(r#"{"year":1992}"#)));
    }

    #[test]
    fn comparison_operators() {
        let f = filter(r#"{"year":{"$gte":1990,"$lt":1995}}"#);
        assert!(f.matches(&doc(r#"{"year":1992}"#)));
        assert!(!f.matches(&doc(r#"{"year":1989}"#)));
        assert!(!f.matches(&doc(r#"{"year":1995}"#)));
        assert!(!f.matches(&doc(r#"{"year":"1992"}"#)), "type bracketing");
        assert!(!f.matches(&doc(r#"{}"#)));
    }

    #[test]
    fn string_operators() {
        assert!(filter(r#"{"t":{"$like":"%wish%"}}"#).matches(&doc(r#"{"t":"Wish"}"#)));
        assert!(filter(r#"{"t":{"$contains":"CURE"}}"#).matches(&doc(r#"{"t":"The Cure"}"#)));
        assert!(filter(r#"{"t":{"$prefix":"The"}}"#).matches(&doc(r#"{"t":"The Cure"}"#)));
        assert!(!filter(r#"{"t":{"$prefix":"the"}}"#).matches(&doc(r#"{"t":"The Cure"}"#)));
    }

    #[test]
    fn in_and_exists() {
        let f = filter(r#"{"g":{"$in":["rock","pop"]}}"#);
        assert!(f.matches(&doc(r#"{"g":"rock"}"#)));
        assert!(!f.matches(&doc(r#"{"g":"jazz"}"#)));
        assert!(filter(r#"{"g":{"$exists":true}}"#).matches(&doc(r#"{"g":null}"#)));
        assert!(filter(r#"{"g":{"$exists":false}}"#).matches(&doc(r#"{"x":1}"#)));
    }

    #[test]
    fn logical_combinators() {
        let f = filter(r#"{"$or":[{"a":1},{"b":2}]}"#);
        assert!(f.matches(&doc(r#"{"a":1}"#)));
        assert!(f.matches(&doc(r#"{"b":2}"#)));
        assert!(!f.matches(&doc(r#"{"a":2,"b":1}"#)));
        let f = filter(r#"{"$not":{"a":1}}"#);
        assert!(!f.matches(&doc(r#"{"a":1}"#)));
        assert!(f.matches(&doc(r#"{"a":2}"#)));
        // Top-level multi-field object is an implicit AND.
        let f = filter(r#"{"a":1,"b":2}"#);
        assert!(f.matches(&doc(r#"{"a":1,"b":2}"#)));
        assert!(!f.matches(&doc(r#"{"a":1,"b":3}"#)));
    }

    #[test]
    fn dotted_paths() {
        let f = filter(r#"{"meta.artist":"The Cure"}"#);
        assert!(f.matches(&doc(r#"{"meta":{"artist":"The Cure"}}"#)));
        assert!(!f.matches(&doc(r#"{"meta":{}}"#)));
    }

    #[test]
    fn ne_requires_presence() {
        // Mongo semantics differ here ($ne matches missing); we use the
        // stricter interpretation: missing fields match nothing.
        let f = filter(r#"{"a":{"$ne":1}}"#);
        assert!(f.matches(&doc(r#"{"a":2}"#)));
        assert!(!f.matches(&doc(r#"{}"#)));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(filter(r#"{"n":3}"#).matches(&doc(r#"{"n":3.0}"#)));
    }

    #[test]
    fn id_lookup_detection() {
        assert_eq!(filter(r#"{"_id":"d1"}"#).as_id_lookup(), Some("d1"));
        assert_eq!(filter(r#"{"_id":{"$ne":"d1"}}"#).as_id_lookup(), None);
        assert_eq!(filter(r#"{"x":"d1"}"#).as_id_lookup(), None);
    }

    #[test]
    fn bad_filters_rejected() {
        assert!(Filter::compile(&doc(r#"{"a":{"$bogus":1}}"#)).is_err());
        assert!(Filter::compile(&doc(r#"{"$or":{}}"#)).is_err());
        assert!(Filter::compile(&doc(r#"{"$or":[]}"#)).is_err());
        assert!(Filter::compile(&doc(r#"{"a":{"$in":3}}"#)).is_err());
        assert!(Filter::compile(&doc(r#"{"a":{"$exists":"yes"}}"#)).is_err());
        assert!(Filter::compile(&doc("[1]")).is_err());
        assert!(Filter::compile(&doc(r#"{"$xyz":[]}"#)).is_err());
    }

    #[test]
    fn operator_mixed_with_plain_field_is_equality_on_object() {
        // {"a": {"$gt": 1, "plain": 2}} — not all keys are operators, so the
        // whole object is an equality operand.
        let f = filter(r#"{"a":{"$gt":1,"plain":2}}"#);
        assert!(f.matches(&doc(r#"{"a":{"$gt":1,"plain":2}}"#)));
    }
}
