//! Errors of the document store.

use std::fmt;

use quepa_pdm::PdmError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DocError>;

/// Errors raised by the document store and its query language.
#[derive(Debug, Clone, PartialEq)]
pub enum DocError {
    /// Malformed query text.
    Syntax(String),
    /// Malformed filter document (unknown operator, wrong operand shape…).
    BadFilter(String),
    /// The referenced collection does not exist.
    UnknownCollection(String),
    /// The inserted document is not an object or lacks a usable `_id`.
    BadDocument(String),
    /// A document with this `_id` already exists in the collection.
    DuplicateId(String),
    /// Underlying value parse error.
    Pdm(PdmError),
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::Syntax(m) => write!(f, "query syntax error: {m}"),
            DocError::BadFilter(m) => write!(f, "bad filter: {m}"),
            DocError::UnknownCollection(c) => write!(f, "unknown collection: {c}"),
            DocError::BadDocument(m) => write!(f, "bad document: {m}"),
            DocError::DuplicateId(id) => write!(f, "duplicate _id: {id}"),
            DocError::Pdm(e) => write!(f, "value error: {e}"),
        }
    }
}

impl std::error::Error for DocError {}

impl From<PdmError> for DocError {
    fn from(e: PdmError) -> Self {
        DocError::Pdm(e)
    }
}
