//! Property-based tests for the SQL engine.

use proptest::prelude::*;
use quepa_pdm::Value;
use quepa_relstore::engine::Database;
use quepa_relstore::eval::like_match;

/// Reference implementation of LIKE by naive recursion, to cross-check the
/// iterative backtracking matcher.
fn like_naive(p: &[char], t: &[char]) -> bool {
    match (p.first(), t.first()) {
        (None, None) => true,
        (Some('%'), _) => like_naive(&p[1..], t) || (!t.is_empty() && like_naive(p, &t[1..])),
        (Some('_'), Some(_)) => like_naive(&p[1..], &t[1..]),
        (Some(pc), Some(tc)) if pc == tc => like_naive(&p[1..], &t[1..]),
        _ => false,
    }
}

proptest! {
    /// The fast LIKE matcher agrees with the naive recursive one.
    #[test]
    fn like_agrees_with_reference(
        pattern in "[ab%_]{0,8}",
        text in "[ab]{0,10}",
    ) {
        let p: Vec<char> = pattern.chars().collect();
        let t: Vec<char> = text.chars().collect();
        prop_assert_eq!(like_match(&pattern, &text), like_naive(&p, &t));
    }

    /// `%text%` always matches any string containing `text`.
    #[test]
    fn like_contains(needle in "[a-z]{1,5}", pre in "[a-z]{0,5}", post in "[a-z]{0,5}") {
        let text = format!("{pre}{needle}{post}");
        let pattern = format!("%{needle}%");
        prop_assert!(like_match(&pattern, &text));
    }

    /// Insert-then-get returns exactly what was stored; delete removes it.
    #[test]
    fn insert_get_delete_roundtrip(rows in prop::collection::btree_map("[a-z0-9]{1,8}", any::<i64>(), 1..40)) {
        let mut db = Database::new("d");
        db.create_table("t", "id", &["id", "n"]).unwrap();
        for (k, n) in &rows {
            db.insert_row("t", vec![Value::str(k.clone()), Value::Int(*n)]).unwrap();
        }
        prop_assert_eq!(db.table("t").unwrap().len(), rows.len());
        for (k, n) in &rows {
            let row = db.get("t", k).unwrap().unwrap();
            prop_assert_eq!(row["n"].clone(), Value::Int(*n));
        }
        // Delete half of the rows, check membership afterwards.
        let doomed: Vec<_> = rows.keys().take(rows.len() / 2).cloned().collect();
        for k in &doomed {
            db.execute(&format!("DELETE FROM t WHERE id = '{k}'")).unwrap();
        }
        for k in rows.keys() {
            let present = db.get("t", k).unwrap().is_some();
            prop_assert_eq!(present, !doomed.contains(k));
        }
    }

    /// A filtered scan returns exactly the rows a manual filter selects,
    /// with and without a secondary index.
    #[test]
    fn scan_matches_manual_filter(ns in prop::collection::vec(0i64..50, 1..60), threshold in 0i64..50) {
        let mut db = Database::new("d");
        db.create_table("t", "id", &["id", "n"]).unwrap();
        for (i, n) in ns.iter().enumerate() {
            db.insert_row("t", vec![Value::str(format!("k{i}")), Value::Int(*n)]).unwrap();
        }
        let rows = db.query(&format!("SELECT * FROM t WHERE n > {threshold}")).unwrap();
        let expected = ns.iter().filter(|&&n| n > threshold).count();
        prop_assert_eq!(rows.len(), expected);

        // Equality via index agrees with scan.
        db.create_index("t", "n").unwrap();
        let eq_indexed = db.query(&format!("SELECT * FROM t WHERE n = {threshold}")).unwrap();
        let expected_eq = ns.iter().filter(|&&n| n == threshold).count();
        prop_assert_eq!(eq_indexed.len(), expected_eq);
    }

    /// ORDER BY really sorts and LIMIT truncates.
    #[test]
    fn order_and_limit(ns in prop::collection::vec(any::<i32>(), 1..50), limit in 0usize..60) {
        let mut db = Database::new("d");
        db.create_table("t", "id", &["id", "n"]).unwrap();
        for (i, n) in ns.iter().enumerate() {
            db.insert_row("t", vec![Value::str(format!("k{i:03}")), Value::Int(*n as i64)]).unwrap();
        }
        let rows = db.query(&format!("SELECT n FROM t ORDER BY n ASC LIMIT {limit}")).unwrap();
        prop_assert_eq!(rows.len(), ns.len().min(limit));
        let got: Vec<i64> = rows.iter().map(|r| r["n"].as_int().unwrap()).collect();
        let mut sorted: Vec<i64> = ns.iter().map(|&n| n as i64).collect();
        sorted.sort_unstable();
        sorted.truncate(limit);
        prop_assert_eq!(got, sorted);
    }

    /// COUNT(*) equals the number of live rows under any filter.
    #[test]
    fn count_agrees(ns in prop::collection::vec(0i64..20, 0..40), threshold in 0i64..20) {
        let mut db = Database::new("d");
        db.create_table("t", "id", &["id", "n"]).unwrap();
        for (i, n) in ns.iter().enumerate() {
            db.insert_row("t", vec![Value::str(format!("k{i}")), Value::Int(*n)]).unwrap();
        }
        let r = db.query(&format!("SELECT COUNT(*) FROM t WHERE n < {threshold}")).unwrap();
        let expected = ns.iter().filter(|&&n| n < threshold).count() as i64;
        prop_assert_eq!(r[0]["count"].clone(), Value::Int(expected));
    }
}
