//! Fuzz corpus for the SQL front-end.
//!
//! Two properties, per the harness's testing model:
//!
//! 1. **No panics**: `parse_statement` returns `Err` on garbage, it never
//!    panics — driven both by token soup (valid tokens in random order)
//!    and by raw character noise.
//! 2. **Round trip**: for any input that parses, printing the AST and
//!    re-parsing yields a structurally equal AST. Statements are also
//!    generated *as ASTs* (recursive expression strategy) so the printer
//!    is exercised on deep structure the string generators rarely hit.
//!
//! The vendored proptest has no shrinking and therefore no
//! `proptest-regressions` corpus files; failures print the generated
//! input and deterministic case number instead (see DESIGN.md).

use proptest::prelude::*;
use quepa_relstore::sql::{parse_statement, Expr, Literal, Statement};

// ---------------------------------------------------------------------
// String-level fuzzing
// ---------------------------------------------------------------------

/// A pool of lexically valid SQL fragments: keywords, idents, literals,
/// operators, punctuation. Random sequences exercise every parser error
/// path and, now and then, form a valid statement.
fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT".to_string()),
        Just("FROM".to_string()),
        Just("WHERE".to_string()),
        Just("ORDER".to_string()),
        Just("BY".to_string()),
        Just("LIMIT".to_string()),
        Just("INSERT".to_string()),
        Just("INTO".to_string()),
        Just("VALUES".to_string()),
        Just("DELETE".to_string()),
        Just("UPDATE".to_string()),
        Just("SET".to_string()),
        Just("AND".to_string()),
        Just("OR".to_string()),
        Just("NOT".to_string()),
        Just("IS".to_string()),
        Just("NULL".to_string()),
        Just("TRUE".to_string()),
        Just("FALSE".to_string()),
        Just("LIKE".to_string()),
        Just("IN".to_string()),
        Just("BETWEEN".to_string()),
        Just("COUNT".to_string()),
        Just("SUM".to_string()),
        Just("ASC".to_string()),
        Just("DESC".to_string()),
        Just("*".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(",".to_string()),
        Just(";".to_string()),
        Just("=".to_string()),
        Just("!=".to_string()),
        Just("<>".to_string()),
        Just("<".to_string()),
        Just("<=".to_string()),
        Just(">".to_string()),
        Just(">=".to_string()),
        "[a-c_]{1,3}".prop_map(|s| s),
        (-99i64..100).prop_map(|i| i.to_string()),
        (-999i64..1000).prop_map(|i| format!("{}.{}", i, i.unsigned_abs() % 100)),
        "[a-z ]{0,5}".prop_map(|s| format!("'{s}'")),
        Just("'it''s'".to_string()),
    ]
}

fn arb_token_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_token(), 0..14).prop_map(|toks| toks.join(" "))
}

// ---------------------------------------------------------------------
// AST-level generation for the round-trip property
// ---------------------------------------------------------------------

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        any::<i64>()
            .prop_filter("i64::MIN has no lexable spelling", |i| *i != i64::MIN)
            .prop_map(Literal::Int),
        // Finite decimals of widely varying magnitude; constructed from
        // integers so every generated float has an exact decimal form.
        (-1_000_000_000i64..1_000_000_000, 0u32..12)
            .prop_map(|(m, e)| Literal::Float(m as f64 / 10f64.powi(e as i32))),
        "[a-z '%_]{0,8}".prop_map(Literal::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-f_]{1,6}".prop_map(|s| s)
}

/// `NULL`/`TRUE`/`FALSE` parse as literals even in column position, so an
/// identifier that spells a literal keyword would break AST round-trips
/// for reasons the printer cannot fix; real parses never produce such
/// columns either.
fn arb_column() -> impl Strategy<Value = String> {
    arb_ident().prop_filter("column must not spell a literal keyword", |s| {
        !s.eq_ignore_ascii_case("null")
            && !s.eq_ignore_ascii_case("true")
            && !s.eq_ignore_ascii_case("false")
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf =
        prop_oneof![arb_column().prop_map(Expr::Column), arb_literal().prop_map(Expr::Literal),];
    leaf.prop_recursive(4, 32, 3, |inner| {
        let cmp = prop_oneof![
            Just(quepa_relstore::sql::BinOp::Eq),
            Just(quepa_relstore::sql::BinOp::Ne),
            Just(quepa_relstore::sql::BinOp::Lt),
            Just(quepa_relstore::sql::BinOp::Le),
            Just(quepa_relstore::sql::BinOp::Gt),
            Just(quepa_relstore::sql::BinOp::Ge),
            Just(quepa_relstore::sql::BinOp::Like),
            Just(quepa_relstore::sql::BinOp::And),
            Just(quepa_relstore::sql::BinOp::Or),
        ];
        prop_oneof![
            (cmp, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
            (inner.clone(), prop::collection::vec(arb_literal(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
            (inner, arb_literal(), arb_literal(), any::<bool>()).prop_map(
                |(e, low, high, negated)| Expr::Between { expr: Box::new(e), low, high, negated }
            ),
        ]
    })
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    use quepa_relstore::sql::{OrderDir, SelectItem, SelectStmt};
    let select_item = prop_oneof![
        Just(SelectItem::Wildcard),
        arb_ident().prop_map(SelectItem::Column),
        Just(SelectItem::Aggregate(quepa_relstore::sql::AggFunc::Count, None)),
        arb_ident().prop_map(|c| SelectItem::Aggregate(quepa_relstore::sql::AggFunc::Sum, Some(c))),
    ];
    let select = (
        prop::collection::vec(select_item, 1..4),
        arb_ident(),
        prop::option::of(arb_expr()),
        prop::option::of((arb_ident(), prop_oneof![Just(OrderDir::Asc), Just(OrderDir::Desc)])),
        prop::option::of(0usize..5000),
    )
        .prop_map(|(items, table, filter, order_by, limit)| {
            Statement::Select(SelectStmt { items, table, filter, order_by, limit })
        });
    let insert =
        (arb_ident(), prop::collection::vec(prop::collection::vec(arb_literal(), 1..4), 1..4))
            .prop_map(|(table, rows)| Statement::Insert { table, rows });
    let delete = (arb_ident(), prop::option::of(arb_expr()))
        .prop_map(|(table, filter)| Statement::Delete { table, filter });
    let update = (
        arb_ident(),
        prop::collection::vec((arb_ident(), arb_literal()), 1..4),
        prop::option::of(arb_expr()),
    )
        .prop_map(|(table, sets, filter)| Statement::Update { table, sets, filter });
    prop_oneof![select, insert, delete, update]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token soup: the parser must classify, never panic — and anything it
    /// accepts must survive the print/re-parse round trip.
    #[test]
    fn token_soup_never_panics_and_accepted_inputs_round_trip(sql in arb_token_soup()) {
        if let Ok(ast) = parse_statement(&sql) {
            let printed = ast.to_string();
            let reparsed = parse_statement(&printed);
            prop_assert!(reparsed.is_ok(), "printed form {printed:?} of {sql:?} fails to parse");
            prop_assert_eq!(&ast, &reparsed.unwrap(), "round trip changed {}", sql);
        }
    }

    /// Raw character noise: arbitrary ASCII-ish strings, including quote
    /// and operator characters in pathological positions.
    #[test]
    fn character_noise_never_panics(sql in "[a-zA-Z0-9 '%_.,;()*=<>!-]{0,40}") {
        let _ = parse_statement(&sql);
    }

    /// Generated ASTs survive print → parse exactly: probabilistically the
    /// strongest form of the round-trip property, since the AST strategy
    /// reaches nesting depths the string generators essentially never do.
    #[test]
    fn printed_statements_reparse_to_the_same_ast(stmt in arb_statement()) {
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed);
        prop_assert!(reparsed.is_ok(), "printed statement fails to parse: {:?}", printed);
        prop_assert_eq!(&stmt, &reparsed.unwrap(), "round trip changed {}", printed);
    }
}
