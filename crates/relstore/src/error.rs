//! Errors of the relational engine.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RelError>;

/// Errors raised by the relational engine and its SQL front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// Lexer/parser error, with byte offset into the SQL text.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Reference to a table that does not exist.
    UnknownTable(String),
    /// Reference to a column that does not exist in the queried table.
    UnknownColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Wrong number of values in an `INSERT`.
    ArityMismatch {
        /// Columns in the table.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// Duplicate primary key on insert.
    DuplicateKey(String),
    /// The statement is valid SQL but not supported by this engine subset.
    Unsupported(String),
    /// A runtime type error while evaluating an expression.
    Eval(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Syntax { offset, message } => {
                write!(f, "SQL syntax error at byte {offset}: {message}")
            }
            RelError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelError::TableExists(t) => write!(f, "table already exists: {t}"),
            RelError::ArityMismatch { expected, found } => {
                write!(f, "INSERT arity mismatch: table has {expected} columns, got {found}")
            }
            RelError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            RelError::Unsupported(s) => write!(f, "unsupported SQL feature: {s}"),
            RelError::Eval(s) => write!(f, "evaluation error: {s}"),
        }
    }
}

impl std::error::Error for RelError {}
