//! # quepa-relstore — an embedded relational engine
//!
//! Plays the role MySQL plays in the paper's Polyphony polystore: the
//! *sales department* runs its `transactions` database (tables `inventory`,
//! `sales`, `sales_details`, `customers`) on a relational system and queries
//! it with SQL.
//!
//! The engine is deliberately small but real: a hand-written SQL
//! lexer/parser ([`sql`]), a row store with a primary-key index and optional
//! equality secondary indexes ([`engine`]), an expression evaluator with
//! SQL `LIKE` semantics ([`eval`]), `ORDER BY`/`LIMIT`, whole-table
//! aggregates, `INSERT`/`DELETE`, and dynamic (SQLite-style) typing over the
//! PDM [`Value`](quepa_pdm::Value) model.
//!
//! ```
//! use quepa_relstore::engine::Database;
//!
//! let mut db = Database::new("transactions");
//! db.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
//! db.execute("INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish')").unwrap();
//! let rows = db
//!     .query("SELECT * FROM inventory WHERE name LIKE '%wish%'")
//!     .unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].get("artist").unwrap().as_str(), Some("Cure"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod eval;
pub mod row;
pub mod sql;

pub use engine::{Database, Table};
pub use error::{RelError, Result};
pub use sql::ast::{Expr, SelectStmt, Statement};
