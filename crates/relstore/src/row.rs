//! Row representation and an orderable wrapper over PDM values.

use std::cmp::Ordering;

use quepa_pdm::Value;

/// A stored row: one value per column, positionally aligned with the table
/// schema.
pub type Row = Vec<Value>;

/// Wrapper giving [`Value`] a total order (via `Value::total_cmp`) so it can
/// serve as a `BTreeMap` key in secondary indexes and in `ORDER BY` sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<Value> for OrdValue {
    fn from(v: Value) -> Self {
        OrdValue(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn ord_value_usable_as_btree_key() {
        let mut m: BTreeMap<OrdValue, usize> = BTreeMap::new();
        m.insert(OrdValue(Value::Int(3)), 1);
        m.insert(OrdValue(Value::str("x")), 2);
        m.insert(OrdValue(Value::Float(2.5)), 3);
        // Int(3) and Float(2.5) are comparable; string sorts after numerics.
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys[0], OrdValue(Value::Float(2.5)));
        assert_eq!(keys[1], OrdValue(Value::Int(3)));
        assert_eq!(keys[2], OrdValue(Value::str("x")));
    }

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(OrdValue(Value::Int(2)).cmp(&OrdValue(Value::Float(2.0))), Ordering::Equal);
    }
}
