//! Expression evaluation over rows, with SQL three-valued logic reduced to
//! two values (NULL comparisons evaluate to false, as in most engines'
//! final WHERE semantics) and SQL `LIKE` pattern matching.

use quepa_pdm::Value;

use crate::error::{RelError, Result};
use crate::sql::ast::{BinOp, Expr};

/// Something that can resolve column names to values (a row bound to its
/// schema, a document, …).
pub trait ColumnSource {
    /// The value of the named column, or `None` if the column is unknown.
    fn column(&self, name: &str) -> Option<&Value>;
}

impl ColumnSource for std::collections::BTreeMap<String, Value> {
    fn column(&self, name: &str) -> Option<&Value> {
        self.get(name)
    }
}

/// Evaluates a predicate expression to a boolean over `src`.
///
/// Unknown columns are an error (the engine resolves them against the
/// schema before evaluation); comparisons involving `NULL` are false.
pub fn eval_predicate<S: ColumnSource>(expr: &Expr, src: &S) -> Result<bool> {
    Ok(truthy(&eval(expr, src)?))
}

/// Evaluates an expression to a value.
pub fn eval<S: ColumnSource>(expr: &Expr, src: &S) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            src.column(name).cloned().ok_or_else(|| RelError::UnknownColumn(name.clone()))
        }
        Expr::Literal(l) => Ok(l.to_value()),
        Expr::Not(e) => Ok(Value::Bool(!truthy(&eval(e, src)?))),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, src)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, src)?;
            if v.is_null() {
                return Ok(Value::Bool(false));
            }
            let found = list.iter().any(|l| {
                let lv = l.to_value();
                if let (Some(a), Some(b)) = (v.as_f64(), lv.as_f64()) {
                    a == b
                } else {
                    v == lv
                }
            });
            Ok(Value::Bool(found != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, src)?;
            let (lo, hi) = (low.to_value(), high.to_value());
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Bool(false));
            }
            let inside = v.total_cmp(&lo).is_ge() && v.total_cmp(&hi).is_le();
            Ok(Value::Bool(inside != *negated))
        }
        Expr::Binary { op, left, right } => {
            match op {
                BinOp::And => {
                    // Short-circuit.
                    if !truthy(&eval(left, src)?) {
                        return Ok(Value::Bool(false));
                    }
                    Ok(Value::Bool(truthy(&eval(right, src)?)))
                }
                BinOp::Or => {
                    if truthy(&eval(left, src)?) {
                        return Ok(Value::Bool(true));
                    }
                    Ok(Value::Bool(truthy(&eval(right, src)?)))
                }
                _ => {
                    let l = eval(left, src)?;
                    let r = eval(right, src)?;
                    eval_comparison(*op, &l, &r)
                }
            }
        }
    }
}

fn eval_comparison(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // SQL semantics: any comparison with NULL is not-true.
    if l.is_null() || r.is_null() {
        return Ok(Value::Bool(false));
    }
    let b = match op {
        BinOp::Eq => compare_eq(l, r),
        BinOp::Ne => !compare_eq(l, r),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = l.total_cmp(r);
            match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            }
        }
        BinOp::Like => {
            let (Some(text), Some(pattern)) = (l.as_str(), r.as_str()) else {
                return Err(RelError::Eval(format!(
                    "LIKE requires strings, found {} and {}",
                    l.type_name(),
                    r.type_name()
                )));
            };
            like_match(pattern, text)
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval"),
    };
    Ok(Value::Bool(b))
}

fn compare_eq(l: &Value, r: &Value) -> bool {
    // Numeric equality crosses Int/Float; everything else is structural.
    if let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) {
        return a == b;
    }
    l == r
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        _ => true,
    }
}

/// SQL `LIKE`: `%` matches any sequence (including empty), `_` matches one
/// character. Matching is case-insensitive, mirroring MySQL's default
/// collation — which is what makes the paper's `'%wish%'` query find
/// `"Wish"`.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().flat_map(|c| c.to_lowercase()).collect();
    let t: Vec<char> = text.chars().flat_map(|c| c.to_lowercase()).collect();
    like_rec(&p, &t)
}

fn like_rec(p: &[char], t: &[char]) -> bool {
    // Iterative two-pointer algorithm with backtracking on the last `%`,
    // O(|p|·|t|) worst case and O(1) space.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;
    use std::collections::BTreeMap;

    fn row(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    fn filter_of(sql: &str) -> Expr {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s.filter.unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn like_semantics() {
        assert!(like_match("%wish%", "Wish"));
        assert!(like_match("wish", "WISH"));
        assert!(like_match("w_sh", "wish"));
        assert!(like_match("%", ""));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(!like_match("w_sh", "wiish"));
        assert!(like_match("%cure%wish%", "the cure - wish - 1992"));
        assert!(!like_match("%cure%wish%", "wish by the cure"));
        assert!(like_match("a%", "a"));
        assert!(!like_match("a%b", "a"));
        assert!(like_match("%%%a", "a"));
        assert!(like_match("é%", "Était"));
    }

    #[test]
    fn comparisons() {
        let r = row(&[("total", Value::Float(19.5)), ("name", Value::str("Wish"))]);
        let f = filter_of("SELECT * FROM t WHERE total > 15");
        assert!(eval_predicate(&f, &r).unwrap());
        let f = filter_of("SELECT * FROM t WHERE total > 20");
        assert!(!eval_predicate(&f, &r).unwrap());
        let f = filter_of("SELECT * FROM t WHERE name = 'Wish' AND total <= 19.5");
        assert!(eval_predicate(&f, &r).unwrap());
        let f = filter_of("SELECT * FROM t WHERE name != 'Wish' OR total >= 19");
        assert!(eval_predicate(&f, &r).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let r = row(&[("x", Value::Null)]);
        for sql in [
            "SELECT * FROM t WHERE x = 1",
            "SELECT * FROM t WHERE x != 1",
            "SELECT * FROM t WHERE x < 1",
        ] {
            assert!(!eval_predicate(&filter_of(sql), &r).unwrap(), "{sql}");
        }
        assert!(eval_predicate(&filter_of("SELECT * FROM t WHERE x IS NULL"), &r).unwrap());
        assert!(!eval_predicate(&filter_of("SELECT * FROM t WHERE x IS NOT NULL"), &r).unwrap());
    }

    #[test]
    fn int_float_equality() {
        let r = row(&[("n", Value::Int(3))]);
        assert!(eval_predicate(&filter_of("SELECT * FROM t WHERE n = 3.0"), &r).unwrap());
    }

    #[test]
    fn unknown_column_is_error() {
        let r = row(&[]);
        let e = eval_predicate(&filter_of("SELECT * FROM t WHERE ghost = 1"), &r);
        assert_eq!(e, Err(RelError::UnknownColumn("ghost".into())));
    }

    #[test]
    fn like_type_error() {
        let r = row(&[("n", Value::Int(3))]);
        assert!(matches!(
            eval_predicate(&filter_of("SELECT * FROM t WHERE n LIKE 'x'"), &r),
            Err(RelError::Eval(_))
        ));
    }

    #[test]
    fn not_and_nested() {
        let r = row(&[("a", Value::Int(1)), ("b", Value::Int(2))]);
        let f = filter_of("SELECT * FROM t WHERE NOT (a = 1 AND b = 3)");
        assert!(eval_predicate(&f, &r).unwrap());
        let f = filter_of("SELECT * FROM t WHERE NOT a = 1");
        assert!(!eval_predicate(&f, &r).unwrap());
    }
}
