//! The storage engine: tables, indexes and statement execution.

use std::collections::{BTreeMap, HashMap};

use quepa_pdm::{Pushdown, Value};

use crate::error::{RelError, Result};
use crate::eval::{eval_predicate, ColumnSource};
use crate::row::{OrdValue, Row};
use crate::sql::ast::{AggFunc, OrderDir, SelectItem, SelectStmt, Statement};
use crate::sql::parser::parse_statement;

/// A query result row: column name → value. Using the map form keeps result
/// handling uniform with the other stores' connectors.
pub type ResultRow = BTreeMap<String, Value>;

/// The result of a predicated keyed lookup: matching `(pk, row)` pairs
/// plus the keys whose row exists but fails the predicate.
pub type FilteredRows = (Vec<(String, ResultRow)>, Vec<String>);

/// One table: schema + row storage + indexes.
///
/// Rows live in a slab (`Vec<Option<Row>>`); deletion leaves a tombstone so
/// row ids in indexes stay stable. The primary key has a unique hash index;
/// any column can additionally get a non-unique equality index.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    pk_column: usize,
    rows: Vec<Option<Row>>,
    live_rows: usize,
    pk_index: HashMap<String, usize>,
    secondary: HashMap<String, BTreeMap<OrdValue, Vec<usize>>>,
}

impl Table {
    fn new(name: &str, pk: &str, columns: &[&str]) -> Result<Self> {
        let pk_column = columns
            .iter()
            .position(|c| *c == pk)
            .ok_or_else(|| RelError::UnknownColumn(pk.to_owned()))?;
        Ok(Table {
            name: name.to_owned(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            pk_column,
            rows: Vec::new(),
            live_rows: 0,
            pk_index: HashMap::new(),
            secondary: HashMap::new(),
        })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The primary-key column name.
    pub fn pk_column(&self) -> &str {
        &self.columns[self.pk_column]
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// True if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    fn column_pos(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| RelError::UnknownColumn(name.to_owned()))
    }

    /// Renders the primary key of a row as the string local key.
    fn pk_string(&self, row: &Row) -> String {
        match &row[self.pk_column] {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }

    fn insert_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::ArityMismatch { expected: self.columns.len(), found: row.len() });
        }
        let pk = self.pk_string(&row);
        if self.pk_index.contains_key(&pk) {
            return Err(RelError::DuplicateKey(pk));
        }
        let id = self.rows.len();
        for (col, index) in &mut self.secondary {
            let pos = self.columns.iter().position(|c| c == col).expect("indexed column");
            index.entry(OrdValue(row[pos].clone())).or_default().push(id);
        }
        self.pk_index.insert(pk, id);
        self.rows.push(Some(row));
        self.live_rows += 1;
        Ok(())
    }

    fn delete_row(&mut self, id: usize) {
        let Some(row) = self.rows[id].take() else { return };
        self.live_rows -= 1;
        let pk = self.pk_string(&row);
        self.pk_index.remove(&pk);
        for (col, index) in &mut self.secondary {
            let pos = self.columns.iter().position(|c| c == col).expect("indexed column");
            if let Some(ids) = index.get_mut(&OrdValue(row[pos].clone())) {
                ids.retain(|&i| i != id);
                if ids.is_empty() {
                    index.remove(&OrdValue(row[pos].clone()));
                }
            }
        }
    }

    /// Fetches a row by primary key.
    pub fn get(&self, pk: &str) -> Option<ResultRow> {
        let id = *self.pk_index.get(pk)?;
        self.rows[id].as_ref().map(|r| self.to_result_row(r))
    }

    fn to_result_row(&self, row: &Row) -> ResultRow {
        self.columns.iter().cloned().zip(row.iter().cloned()).collect()
    }

    /// Iterates over live rows.
    fn live(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }
}

/// A column-addressed view of a row, used during predicate evaluation
/// without materialising a map per row.
struct BoundRow<'a> {
    table: &'a Table,
    row: &'a Row,
}

impl ColumnSource for BoundRow<'_> {
    fn column(&self, name: &str) -> Option<&Value> {
        let pos = self.table.columns.iter().position(|c| c == name)?;
        Some(&self.row[pos])
    }
}

/// A relational database: a set of named tables plus the SQL entry points.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database { name: name.into(), tables: BTreeMap::new() }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a table with the given primary key and columns.
    pub fn create_table(&mut self, name: &str, pk: &str, columns: &[&str]) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        self.tables.insert(name.to_owned(), Table::new(name, pk, columns)?);
        Ok(())
    }

    /// Adds a non-unique equality index on `column` of `table`, backfilling
    /// from existing rows.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let t = self.table_mut(table)?;
        let pos = t.column_pos(column)?;
        let mut index: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
        for (id, row) in t.live() {
            index.entry(OrdValue(row[pos].clone())).or_default().push(id);
        }
        t.secondary.insert(column.to_owned(), index);
        Ok(())
    }

    /// The table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Borrows a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables.get_mut(name).ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    /// Inserts a row given as `(column, value)` pairs must cover all columns
    /// positionally; convenience for loaders.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<()> {
        self.table_mut(table)?.insert_row(row)
    }

    /// Parses and executes any statement. `SELECT` returns its rows;
    /// `INSERT`/`DELETE` return the affected row count in a one-cell row
    /// (`{"affected": n}`).
    pub fn execute(&mut self, sql: &str) -> Result<Vec<ResultRow>> {
        match parse_statement(sql)? {
            Statement::Select(s) => self.run_select(&s),
            Statement::Insert { table, rows } => {
                let n = rows.len();
                for lits in rows {
                    let row: Row = lits.iter().map(|l| l.to_value()).collect();
                    self.table_mut(&table)?.insert_row(row)?;
                }
                Ok(vec![affected(n)])
            }
            Statement::Update { table, sets, filter } => {
                let t = self.table_mut(&table)?;
                // Resolve target columns; updating the primary key would
                // invalidate every global key minted from it.
                let mut positions = Vec::with_capacity(sets.len());
                for (col, lit) in &sets {
                    let pos = t.column_pos(col)?;
                    if pos == t.pk_column {
                        return Err(RelError::Unsupported(
                            "updating the primary-key column".into(),
                        ));
                    }
                    positions.push((pos, lit.to_value()));
                }
                let mut doomed = Vec::new();
                for (id, row) in t.live() {
                    let hit = match &filter {
                        None => true,
                        Some(f) => eval_predicate(f, &BoundRow { table: t, row })?,
                    };
                    if hit {
                        doomed.push(id);
                    }
                }
                for &id in &doomed {
                    // Secondary indexes: detach the old values, attach new.
                    let old_row = t.rows[id].clone().expect("live row");
                    for (col, index) in &mut t.secondary {
                        let pos = t.columns.iter().position(|c| c == col).expect("indexed column");
                        if positions.iter().any(|(p, _)| *p == pos) {
                            if let Some(ids) = index.get_mut(&OrdValue(old_row[pos].clone())) {
                                ids.retain(|&i| i != id);
                                if ids.is_empty() {
                                    index.remove(&OrdValue(old_row[pos].clone()));
                                }
                            }
                        }
                    }
                    let row = t.rows[id].as_mut().expect("live row");
                    for (pos, value) in &positions {
                        row[*pos] = value.clone();
                    }
                    let new_row = t.rows[id].clone().expect("live row");
                    for (col, index) in &mut t.secondary {
                        let pos = t.columns.iter().position(|c| c == col).expect("indexed column");
                        if positions.iter().any(|(p, _)| *p == pos) {
                            index.entry(OrdValue(new_row[pos].clone())).or_default().push(id);
                        }
                    }
                }
                Ok(vec![affected(doomed.len())])
            }
            Statement::Delete { table, filter } => {
                let t = self.table_mut(&table)?;
                let mut doomed = Vec::new();
                for (id, row) in t.live() {
                    let keep = match &filter {
                        None => false,
                        Some(f) => !eval_predicate(f, &BoundRow { table: t, row })?,
                    };
                    if !keep {
                        doomed.push(id);
                    }
                }
                for id in &doomed {
                    t.delete_row(*id);
                }
                Ok(vec![affected(doomed.len())])
            }
        }
    }

    /// Parses and runs a `SELECT` (errors on other statements).
    pub fn query(&self, sql: &str) -> Result<Vec<ResultRow>> {
        match parse_statement(sql)? {
            Statement::Select(s) => self.run_select(&s),
            other => Err(RelError::Unsupported(format!("query() requires SELECT, got {other:?}"))),
        }
    }

    /// Parses a statement without executing it (used by the Validator).
    pub fn prepare(&self, sql: &str) -> Result<Statement> {
        parse_statement(sql)
    }

    /// Executes a parsed `SELECT`.
    pub fn run_select(&self, stmt: &SelectStmt) -> Result<Vec<ResultRow>> {
        let t = self.table(&stmt.table)?;
        // Validate referenced columns up front for crisp errors.
        if let Some(f) = &stmt.filter {
            let mut cols = Vec::new();
            f.referenced_columns(&mut cols);
            for c in cols {
                t.column_pos(&c)?;
            }
        }

        // Plan: use an index when the filter is a single equality on an
        // indexed column, else scan.
        let mut matched: Vec<&Row> = Vec::new();
        let index_hit = stmt
            .filter
            .as_ref()
            .and_then(|f| f.as_equality())
            .and_then(|(col, v)| t.secondary.get(col).map(|idx| (idx, v)));
        if let Some((idx, v)) = index_hit {
            if let Some(ids) = idx.get(&OrdValue(v)) {
                for &id in ids {
                    if let Some(row) = t.rows[id].as_ref() {
                        matched.push(row);
                    }
                }
            }
        } else {
            for (_, row) in t.live() {
                let keep = match &stmt.filter {
                    None => true,
                    Some(f) => eval_predicate(f, &BoundRow { table: t, row })?,
                };
                if keep {
                    matched.push(row);
                }
            }
        }

        if stmt.has_aggregates() {
            return self.run_aggregates(t, stmt, &matched);
        }

        if let Some((col, dir)) = &stmt.order_by {
            let pos = t.column_pos(col)?;
            matched.sort_by(|a, b| {
                let ord = a[pos].total_cmp(&b[pos]);
                match dir {
                    OrderDir::Asc => ord,
                    OrderDir::Desc => ord.reverse(),
                }
            });
        } else {
            // Deterministic order even without ORDER BY: primary key order.
            matched.sort_by(|a, b| a[t.pk_column].total_cmp(&b[t.pk_column]));
        }
        if let Some(limit) = stmt.limit {
            matched.truncate(limit);
        }

        // Projection.
        let mut out = Vec::with_capacity(matched.len());
        if stmt.is_wildcard() {
            for row in matched {
                out.push(t.to_result_row(row));
            }
        } else {
            let mut positions = Vec::with_capacity(stmt.items.len());
            for item in &stmt.items {
                match item {
                    SelectItem::Column(c) => positions.push((c.clone(), t.column_pos(c)?)),
                    SelectItem::Wildcard => {
                        return Err(RelError::Unsupported(
                            "mixing * with other select items".into(),
                        ))
                    }
                    SelectItem::Aggregate(..) => unreachable!("handled above"),
                }
            }
            for row in matched {
                out.push(
                    positions.iter().map(|(name, pos)| (name.clone(), row[*pos].clone())).collect(),
                );
            }
        }
        Ok(out)
    }

    fn run_aggregates(
        &self,
        t: &Table,
        stmt: &SelectStmt,
        matched: &[&Row],
    ) -> Result<Vec<ResultRow>> {
        let mut out = ResultRow::new();
        for item in &stmt.items {
            let SelectItem::Aggregate(func, arg) = item else {
                return Err(RelError::Unsupported(
                    "mixing aggregates and plain columns without GROUP BY".into(),
                ));
            };
            let label = match (func, arg) {
                (AggFunc::Count, None) => "count".to_string(),
                (f, Some(c)) => format!("{}({c})", agg_name(*f)),
                (f, None) => agg_name(*f).to_string(),
            };
            let value = match func {
                AggFunc::Count => match arg {
                    None => Value::Int(matched.len() as i64),
                    Some(c) => {
                        let pos = t.column_pos(c)?;
                        Value::Int(matched.iter().filter(|r| !r[pos].is_null()).count() as i64)
                    }
                },
                _ => {
                    let c = arg.as_ref().ok_or_else(|| {
                        RelError::Unsupported(format!("{} requires a column", agg_name(*func)))
                    })?;
                    let pos = t.column_pos(c)?;
                    let nums: Vec<f64> = matched.iter().filter_map(|r| r[pos].as_f64()).collect();
                    match func {
                        AggFunc::Sum => Value::Float(nums.iter().sum()),
                        AggFunc::Avg => {
                            if nums.is_empty() {
                                Value::Null
                            } else {
                                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                            }
                        }
                        AggFunc::Min => nums
                            .iter()
                            .copied()
                            .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.min(x))))
                            .map_or(Value::Null, Value::Float),
                        AggFunc::Max => nums
                            .iter()
                            .copied()
                            .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.max(x))))
                            .map_or(Value::Null, Value::Float),
                        AggFunc::Count => unreachable!(),
                    }
                }
            };
            out.insert(label, value);
        }
        Ok(vec![out])
    }

    /// Point lookup by primary key, the access path augmentation uses.
    pub fn get(&self, table: &str, pk: &str) -> Result<Option<ResultRow>> {
        Ok(self.table(table)?.get(pk))
    }

    /// Batched point lookup: one "round trip" for many keys. Missing keys
    /// are skipped.
    pub fn multi_get(&self, table: &str, pks: &[&str]) -> Result<Vec<(String, ResultRow)>> {
        let t = self.table(table)?;
        let mut out = Vec::with_capacity(pks.len());
        for pk in pks {
            if let Some(row) = t.get(pk) {
                out.push(((*pk).to_owned(), row));
            }
        }
        Ok(out)
    }

    /// Keyed lookup with a store-side predicate — the `SELECT … WHERE pk
    /// IN (…) AND <pred>` access path: one pk-index probe per key, the row
    /// predicate applied before the row leaves the engine. Returns the
    /// matching rows plus the keys whose row exists but fails the
    /// predicate, so callers can tell filtered-out apart from missing.
    pub fn multi_get_where(
        &self,
        table: &str,
        pks: &[&str],
        pred: &Pushdown,
    ) -> Result<FilteredRows> {
        let t = self.table(table)?;
        let mut matched = Vec::new();
        let mut rejected = Vec::new();
        for pk in pks {
            let Some(row) = t.get(pk) else { continue };
            let value = Value::Object(row);
            if pred.matches(pk, &value) {
                let Value::Object(row) = value else { unreachable!() };
                matched.push(((*pk).to_owned(), row));
            } else {
                rejected.push((*pk).to_owned());
            }
        }
        Ok((matched, rejected))
    }

    /// Total number of live rows across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Seedable population hook for the simulation harness (`quepa-check`):
    /// a database with one `inventory` table (`id` pk, `name`, `seq`)
    /// holding rows `a0..a{n-1}` with a dense integer `seq`, every value
    /// derived from `seed` alone so the database is bit-identical across
    /// hosts and runs.
    pub fn populate_seeded(name: impl Into<String>, seed: u64, n: usize) -> Database {
        let mut db = Database::new(name);
        db.create_table("inventory", "id", &["id", "name", "seq"])
            .expect("fresh database accepts the table");
        for i in 0..n {
            db.insert_row(
                "inventory",
                vec![
                    Value::Str(format!("a{i}")),
                    Value::Str(format!("item-{:08x}", seed_mix(seed, i as u64) >> 32)),
                    Value::Int(i as i64),
                ],
            )
            .expect("generated rows are schema-valid");
        }
        db
    }
}

/// splitmix64 finalizer over two words — the harness-wide convention for
/// deriving per-object values from a seed.
fn seed_mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn affected(n: usize) -> ResultRow {
    let mut r = ResultRow::new();
    r.insert("affected".into(), Value::Int(n as i64));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_db() -> Database {
        let mut db = Database::new("transactions");
        db.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
        db.create_table("sales", "id", &["id", "first", "last", "total"]).unwrap();
        db.execute(
            "INSERT INTO inventory VALUES \
             ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Disintegration'), \
             ('a34', 'Radiohead', 'OK Computer')",
        )
        .unwrap();
        db.execute(
            "INSERT INTO sales VALUES \
             ('s8', 'John', 'Doe', 20.0), ('s9', 'Jane', 'Roe', 12.5)",
        )
        .unwrap();
        db
    }

    #[test]
    fn lucy_query() {
        let db = sales_db();
        let rows = db.query("SELECT * FROM inventory WHERE name like '%wish%'").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["id"], Value::str("a32"));
    }

    #[test]
    fn projection_and_order() {
        let db = sales_db();
        let rows = db.query("SELECT name FROM inventory ORDER BY name DESC").unwrap();
        let names: Vec<_> = rows.iter().map(|r| r["name"].as_str().unwrap().to_string()).collect();
        assert_eq!(names, vec!["Wish", "OK Computer", "Disintegration"]);
        assert_eq!(rows[0].len(), 1, "projection keeps only selected columns");
    }

    #[test]
    fn default_order_is_pk() {
        let db = sales_db();
        let rows = db.query("SELECT id FROM inventory").unwrap();
        let ids: Vec<_> = rows.iter().map(|r| r["id"].as_str().unwrap()).collect();
        assert_eq!(ids, vec!["a32", "a33", "a34"]);
    }

    #[test]
    fn limit() {
        let db = sales_db();
        assert_eq!(db.query("SELECT * FROM inventory LIMIT 2").unwrap().len(), 2);
        assert_eq!(db.query("SELECT * FROM inventory LIMIT 0").unwrap().len(), 0);
    }

    #[test]
    fn aggregates() {
        let db = sales_db();
        let r = db.query("SELECT COUNT(*) FROM inventory").unwrap();
        assert_eq!(r[0]["count"], Value::Int(3));
        let r =
            db.query("SELECT SUM(total), AVG(total), MIN(total), MAX(total) FROM sales").unwrap();
        assert_eq!(r[0]["sum(total)"], Value::Float(32.5));
        assert_eq!(r[0]["avg(total)"], Value::Float(16.25));
        assert_eq!(r[0]["min(total)"], Value::Float(12.5));
        assert_eq!(r[0]["max(total)"], Value::Float(20.0));
    }

    #[test]
    fn aggregate_on_empty_filter() {
        let db = sales_db();
        let r = db.query("SELECT AVG(total) FROM sales WHERE total > 1000").unwrap();
        assert_eq!(r[0]["avg(total)"], Value::Null);
    }

    #[test]
    fn point_and_multi_get() {
        let db = sales_db();
        let row = db.get("inventory", "a33").unwrap().unwrap();
        assert_eq!(row["name"], Value::str("Disintegration"));
        assert!(db.get("inventory", "zzz").unwrap().is_none());
        let batch = db.multi_get("inventory", &["a34", "missing", "a32"]).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].0, "a34");
    }

    #[test]
    fn delete_with_and_without_filter() {
        let mut db = sales_db();
        let r = db.execute("DELETE FROM inventory WHERE artist = 'Cure'").unwrap();
        assert_eq!(r[0]["affected"], Value::Int(2));
        assert_eq!(db.table("inventory").unwrap().len(), 1);
        assert!(db.get("inventory", "a32").unwrap().is_none());
        let r = db.execute("DELETE FROM sales").unwrap();
        assert_eq!(r[0]["affected"], Value::Int(2));
        assert!(db.table("sales").unwrap().is_empty());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut db = sales_db();
        let e = db.execute("INSERT INTO inventory VALUES ('a32', 'X', 'Y')");
        assert_eq!(e, Err(RelError::DuplicateKey("a32".into())));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = sales_db();
        assert!(matches!(
            db.execute("INSERT INTO inventory VALUES ('only-one')"),
            Err(RelError::ArityMismatch { expected: 3, found: 1 })
        ));
    }

    #[test]
    fn secondary_index_agrees_with_scan() {
        let mut db = sales_db();
        let scan = db.query("SELECT * FROM inventory WHERE artist = 'Cure'").unwrap();
        db.create_index("inventory", "artist").unwrap();
        let indexed = db.query("SELECT * FROM inventory WHERE artist = 'Cure'").unwrap();
        assert_eq!(scan, indexed);
        // Index stays correct across deletion and insertion.
        db.execute("DELETE FROM inventory WHERE id = 'a32'").unwrap();
        db.execute("INSERT INTO inventory VALUES ('a99', 'Cure', 'Faith')").unwrap();
        let rows = db.query("SELECT id FROM inventory WHERE artist = 'Cure'").unwrap();
        let ids: Vec<_> = rows.iter().map(|r| r["id"].as_str().unwrap()).collect();
        assert_eq!(ids, vec!["a33", "a99"]);
    }

    #[test]
    fn unknown_entities() {
        let db = sales_db();
        assert_eq!(db.query("SELECT * FROM ghost"), Err(RelError::UnknownTable("ghost".into())));
        assert_eq!(
            db.query("SELECT ghost FROM inventory"),
            Err(RelError::UnknownColumn("ghost".into()))
        );
        assert_eq!(
            db.query("SELECT * FROM inventory WHERE ghost = 1"),
            Err(RelError::UnknownColumn("ghost".into()))
        );
        assert_eq!(
            db.query("SELECT * FROM inventory ORDER BY ghost"),
            Err(RelError::UnknownColumn("ghost".into()))
        );
    }

    #[test]
    fn numeric_pk_rendering() {
        let mut db = Database::new("d");
        db.create_table("t", "n", &["n", "v"]).unwrap();
        db.execute("INSERT INTO t VALUES (7, 'x')").unwrap();
        assert!(db.get("t", "7").unwrap().is_some());
    }

    #[test]
    fn update_statement() {
        let mut db = sales_db();
        let r = db
            .execute("UPDATE inventory SET artist = 'The Cure', name = 'Wish!' WHERE id = 'a32'")
            .unwrap();
        assert_eq!(r[0]["affected"], Value::Int(1));
        let row = db.get("inventory", "a32").unwrap().unwrap();
        assert_eq!(row["artist"], Value::str("The Cure"));
        assert_eq!(row["name"], Value::str("Wish!"));
        // Unfiltered update touches every row.
        let r = db.execute("UPDATE sales SET total = 0.0").unwrap();
        assert_eq!(r[0]["affected"], Value::Int(2));
        let rows = db.query("SELECT * FROM sales WHERE total = 0.0").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn update_pk_rejected() {
        let mut db = sales_db();
        assert!(matches!(
            db.execute("UPDATE inventory SET id = 'zzz'"),
            Err(RelError::Unsupported(_))
        ));
    }

    #[test]
    fn update_maintains_secondary_index() {
        let mut db = sales_db();
        db.create_index("inventory", "artist").unwrap();
        db.execute("UPDATE inventory SET artist = 'Renamed' WHERE id = 'a32'").unwrap();
        let old = db.query("SELECT * FROM inventory WHERE artist = 'Cure'").unwrap();
        assert_eq!(old.len(), 1, "only a33 keeps the old artist");
        let new = db.query("SELECT * FROM inventory WHERE artist = 'Renamed'").unwrap();
        assert_eq!(new.len(), 1);
    }

    #[test]
    fn in_and_between_predicates() {
        let db = sales_db();
        let rows = db.query("SELECT id FROM inventory WHERE id IN ('a32', 'a34', 'nope')").unwrap();
        assert_eq!(rows.len(), 2);
        let rows = db.query("SELECT id FROM inventory WHERE id NOT IN ('a32')").unwrap();
        assert_eq!(rows.len(), 2);
        let rows = db.query("SELECT * FROM sales WHERE total BETWEEN 12.5 AND 20.0").unwrap();
        assert_eq!(rows.len(), 2, "BETWEEN is inclusive");
        let rows = db.query("SELECT * FROM sales WHERE total NOT BETWEEN 12.5 AND 19.0").unwrap();
        assert_eq!(rows.len(), 1);
        // NULL never matches IN.
        let mut db = Database::new("d");
        db.create_table("t", "id", &["id", "x"]).unwrap();
        db.execute("INSERT INTO t VALUES ('a', NULL)").unwrap();
        assert!(db.query("SELECT * FROM t WHERE x IN (1, 2)").unwrap().is_empty());
        assert!(db.query("SELECT * FROM t WHERE x NOT IN (1, 2)").unwrap().is_empty());
    }

    #[test]
    fn query_rejects_dml() {
        let db = sales_db();
        assert!(matches!(db.query("DELETE FROM inventory"), Err(RelError::Unsupported(_))));
    }
}
