//! Recursive-descent parser for the SQL subset.

use crate::error::{RelError, Result};
use crate::sql::ast::{AggFunc, BinOp, Expr, Literal, OrderDir, SelectItem, SelectStmt, Statement};
use crate::sql::lexer::{Lexer, Token, TokenKind};

/// Parses a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_if(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> RelError {
        RelError::Syntax { offset: self.offset(), message: message.into() }
    }

    /// Returns true (and advances) if the next token is the keyword `kw`
    /// (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing token {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("SELECT") {
            self.parse_select().map(Statement::Select)
        } else if self.eat_keyword("INSERT") {
            self.parse_insert()
        } else if self.eat_keyword("DELETE") {
            self.parse_delete()
        } else if self.eat_keyword("UPDATE") {
            self.parse_update()
        } else {
            Err(self.err("expected SELECT, INSERT, UPDATE or DELETE"))
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        let items = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let col = self.expect_ident()?;
            let dir = if self.eat_keyword("DESC") {
                OrderDir::Desc
            } else {
                self.eat_keyword("ASC");
                OrderDir::Asc
            };
            Some((col, dir))
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt { items, table, filter, order_by, limit })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            let item = if self.eat_if(&TokenKind::Star) {
                SelectItem::Wildcard
            } else {
                let name = self.expect_ident()?;
                if self.peek() == &TokenKind::LParen {
                    let func = AggFunc::from_name(&name)
                        .ok_or_else(|| self.err(format!("unknown function {name}")))?;
                    self.bump(); // (
                    let arg = if self.eat_if(&TokenKind::Star) {
                        if func != AggFunc::Count {
                            return Err(self.err("only COUNT accepts *"));
                        }
                        None
                    } else {
                        Some(self.expect_ident()?)
                    };
                    self.expect_token(TokenKind::RParen)?;
                    SelectItem::Aggregate(func, arg)
                } else {
                    SelectItem::Column(name)
                }
            };
            items.push(item);
            if !self.eat_if(&TokenKind::Comma) {
                return Ok(items);
            }
        }
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_token(TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_literal()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_token(TokenKind::RParen)?;
            rows.push(row);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_token(TokenKind::Eq)?;
            sets.push((col, self.parse_literal()?));
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, sets, filter })
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Literal::Int(i)),
            TokenKind::Float(f) => Ok(Literal::Float(f)),
            TokenKind::Str(s) => Ok(Literal::Str(s)),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Literal::Null),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Literal::Bool(true)),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Literal::Bool(false)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    // Expression grammar (precedence climbing):
    //   expr      := or_expr
    //   or_expr   := and_expr (OR and_expr)*
    //   and_expr  := not_expr (AND not_expr)*
    //   not_expr  := NOT not_expr | predicate
    //   predicate := primary ((cmp | LIKE | NOT LIKE) primary | IS [NOT] NULL)?
    //   primary   := literal | column | ( expr )
    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_primary()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("LIKE") => Some(BinOp::Like),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("IS") => {
                self.bump();
                let negated = self.eat_keyword("NOT");
                self.expect_keyword("NULL")?;
                return Ok(Expr::IsNull { expr: Box::new(left), negated });
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("IN") => {
                self.bump();
                return self.parse_in_list(left, false);
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("BETWEEN") => {
                self.bump();
                return self.parse_between(left, false);
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NOT") => {
                // `x NOT LIKE y` / `x NOT IN (…)` / `x NOT BETWEEN a AND b`
                self.bump();
                if self.eat_keyword("IN") {
                    return self.parse_in_list(left, true);
                }
                if self.eat_keyword("BETWEEN") {
                    return self.parse_between(left, true);
                }
                self.expect_keyword("LIKE")?;
                let right = self.parse_primary()?;
                return Ok(Expr::Not(Box::new(Expr::Binary {
                    op: BinOp::Like,
                    left: Box::new(left),
                    right: Box::new(right),
                })));
            }
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.bump();
                let right = self.parse_primary()?;
                Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) })
            }
        }
    }

    fn parse_in_list(&mut self, left: Expr, negated: bool) -> Result<Expr> {
        self.expect_token(TokenKind::LParen)?;
        let mut list = Vec::new();
        loop {
            list.push(self.parse_literal()?);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_token(TokenKind::RParen)?;
        Ok(Expr::InList { expr: Box::new(left), list, negated })
    }

    fn parse_between(&mut self, left: Expr, negated: bool) -> Result<Expr> {
        let low = self.parse_literal()?;
        self.expect_keyword("AND")?;
        let high = self.parse_literal()?;
        Ok(Expr::Between { expr: Box::new(left), low, high, negated })
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_token(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) => {
                Ok(Expr::Literal(self.parse_literal()?))
            }
            TokenKind::Ident(s)
                if s.eq_ignore_ascii_case("NULL")
                    || s.eq_ignore_ascii_case("TRUE")
                    || s.eq_ignore_ascii_case("FALSE") =>
            {
                Ok(Expr::Literal(self.parse_literal()?))
            }
            TokenKind::Ident(_) => Ok(Expr::Column(self.expect_ident()?)),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn paper_running_example_query() {
        // The query Lucy submits in §I.
        let s = select("SELECT * FROM inventory WHERE name like '%wish%'");
        assert!(s.is_wildcard());
        assert_eq!(s.table, "inventory");
        let f = s.filter.unwrap();
        match f {
            Expr::Binary { op: BinOp::Like, .. } => {}
            other => panic!("expected LIKE, got {other:?}"),
        }
    }

    #[test]
    fn projection_order_limit() {
        let s = select("SELECT a, b FROM t WHERE a > 1 AND b <= 2 ORDER BY a DESC LIMIT 10");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.order_by, Some(("a".into(), OrderDir::Desc)));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn aggregates() {
        let s = select("SELECT COUNT(*) FROM t");
        assert!(s.has_aggregates());
        let s = select("SELECT sum(total) FROM sales WHERE total > 15");
        assert!(matches!(s.items[0], SelectItem::Aggregate(AggFunc::Sum, Some(_))));
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn boolean_precedence() {
        // OR binds looser than AND: a OR b AND c == a OR (b AND c).
        let s = select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match s.filter.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => match *right {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("expected AND on the right, got {other:?}"),
            },
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let s = select("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        match s.filter.unwrap() {
            Expr::Binary { op: BinOp::And, left, .. } => match *left {
                Expr::Binary { op: BinOp::Or, .. } => {}
                other => panic!("expected OR on the left, got {other:?}"),
            },
            other => panic!("expected AND at the top, got {other:?}"),
        }
    }

    #[test]
    fn not_like_and_is_null() {
        let s = select("SELECT * FROM t WHERE name NOT LIKE 'a%' AND x IS NOT NULL");
        let mut cols = Vec::new();
        s.filter.unwrap().referenced_columns(&mut cols);
        assert_eq!(cols, vec!["name".to_string(), "x".to_string()]);
    }

    #[test]
    fn insert_multi_row() {
        let stmt =
            parse_statement("INSERT INTO t VALUES ('a', 1, 2.5), ('b', NULL, TRUE);").unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Literal::Str("a".into()));
                assert_eq!(rows[1][1], Literal::Null);
                assert_eq!(rows[1][2], Literal::Bool(true));
            }
            other => panic!("expected INSERT, got {other:?}"),
        }
    }

    #[test]
    fn delete_forms() {
        assert!(matches!(
            parse_statement("DELETE FROM t").unwrap(),
            Statement::Delete { filter: None, .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE id = 'x'").unwrap(),
            Statement::Delete { filter: Some(_), .. }
        ));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_statement("SELECT").is_err());
        assert!(parse_statement("SELECT * FROM").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(parse_statement("SELECT * FROM t LIMIT 'x'").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("UPDATE t a = 1").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a IN ()").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a BETWEEN 1").is_err());
        assert!(parse_statement("SELECT * FROM t extra").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a = ").is_err());
    }

    #[test]
    fn update_and_list_predicates_parse() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c > 2").unwrap(),
            Statement::Update { ref sets, filter: Some(_), .. } if sets.len() == 2
        ));
        let s = select("SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT BETWEEN 0 AND 9");
        let mut cols = Vec::new();
        s.filter.unwrap().referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = select("select * from T where A like 'x%' order by A asc limit 1");
        assert_eq!(s.table, "T");
        assert_eq!(s.limit, Some(1));
    }
}
