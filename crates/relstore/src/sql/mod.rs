//! The SQL front-end: lexer, AST and recursive-descent parser.
//!
//! The supported subset is the one the paper's workload needs (plus enough
//! DML to exercise the lazy-deletion path of the A' index):
//!
//! ```sql
//! SELECT <cols | *> FROM <table>
//!   [WHERE <expr>] [ORDER BY <col> [ASC|DESC]] [LIMIT <n>]
//! SELECT COUNT(*) | SUM(c) | AVG(c) | MIN(c) | MAX(c) FROM <table> [WHERE ...]
//! INSERT INTO <table> VALUES (<literal>, ...)
//! DELETE FROM <table> [WHERE <expr>]
//! ```
//!
//! Expressions support `= != <> < <= > >= LIKE NOT AND OR IS [NOT] NULL`,
//! parentheses, string/number/bool/NULL literals and column references.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod print;

pub use ast::{AggFunc, BinOp, Expr, Literal, OrderDir, SelectItem, SelectStmt, Statement};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse_statement;
