//! Canonical SQL printing: `Display` for the AST.
//!
//! The printed form is the *canonical* text of a statement: re-parsing it
//! yields a structurally equal AST (`parse(print(parse(s))) ==
//! parse(s)`), which is the round-trip property the fuzz suite leans on.
//!
//! Precedence is restored with the minimum parentheses the grammar needs:
//! `OR` < `AND` < `NOT` < comparison/predicate < primary. Operands of a
//! comparison must be primaries, so any nested expression there is
//! parenthesized; right-nested `AND`/`OR` chains are parenthesized to
//! preserve associativity.
//!
//! The contract covers every AST the parser itself can produce. Two
//! hand-constructible corner cases fall outside it, matching the lexer's
//! input language: `Literal::Int(i64::MIN)` (its absolute value overflows
//! the lexer's positive-digits-then-negate path) and non-finite floats
//! (no lexable spelling).

use std::fmt;

use crate::sql::ast::{AggFunc, BinOp, Expr, Literal, OrderDir, SelectItem, SelectStmt, Statement};

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Bool(true) => write!(f, "TRUE"),
            Literal::Bool(false) => write!(f, "FALSE"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                // `{}` on f64 never uses scientific notation, but prints
                // integral values without a dot; the lexer needs one to
                // see a float.
                let s = format!("{x}");
                if s.contains('.') {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl AggFunc {
    /// The canonical (upper-case) function name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate(func, None) => write!(f, "{}(*)", func.name()),
            SelectItem::Aggregate(func, Some(col)) => write!(f, "{}({col})", func.name()),
        }
    }
}

impl BinOp {
    fn symbol(&self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Like => "LIKE",
        }
    }
}

impl Expr {
    /// Grammar level of this node: `OR` 1, `AND` 2, `NOT` 3,
    /// comparison/predicate 4, primary 5.
    fn level(&self) -> u8 {
        match self {
            Expr::Binary { op: BinOp::Or, .. } => 1,
            Expr::Binary { op: BinOp::And, .. } => 2,
            Expr::Not(_) => 3,
            Expr::Binary { .. }
            | Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::Between { .. } => 4,
            Expr::Column(_) | Expr::Literal(_) => 5,
        }
    }

    /// Writes the expression, parenthesizing if its level is below what
    /// the surrounding grammar position requires.
    fn write_at(&self, f: &mut fmt::Formatter<'_>, min_level: u8) -> fmt::Result {
        if self.level() < min_level {
            write!(f, "(")?;
            self.write_node(f)?;
            write!(f, ")")
        } else {
            self.write_node(f)
        }
    }

    fn write_node(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Binary { op: op @ (BinOp::Or | BinOp::And), left, right } => {
                // Left-associative chains print bare; a same-level right
                // child must re-parenthesize to survive re-parsing.
                let lvl = if *op == BinOp::Or { 1 } else { 2 };
                left.write_at(f, lvl)?;
                write!(f, " {} ", op.symbol())?;
                right.write_at(f, lvl + 1)
            }
            Expr::Binary { op, left, right } => {
                left.write_at(f, 5)?;
                write!(f, " {} ", op.symbol())?;
                right.write_at(f, 5)
            }
            Expr::Not(e) => {
                write!(f, "NOT ")?;
                e.write_at(f, 3)
            }
            Expr::IsNull { expr, negated } => {
                expr.write_at(f, 5)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                expr.write_at(f, 5)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, lit) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{lit}")?;
                }
                write!(f, ")")
            }
            Expr::Between { expr, low, high, negated } => {
                expr.write_at(f, 5)?;
                write!(f, " {}BETWEEN {low} AND {high}", if *negated { "NOT " } else { "" })
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_at(f, 0)
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.table)?;
        if let Some(filter) = &self.filter {
            write!(f, " WHERE {filter}")?;
        }
        if let Some((col, dir)) = &self.order_by {
            let dir = match dir {
                OrderDir::Asc => "ASC",
                OrderDir::Desc => "DESC",
            };
            write!(f, " ORDER BY {col} {dir}")?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert { table, rows } => {
                write!(f, "INSERT INTO {table} VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, lit) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{lit}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(e) = filter {
                    write!(f, " WHERE {e}")?;
                }
                Ok(())
            }
            Statement::Update { table, sets, filter } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, lit)) in sets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} = {lit}")?;
                }
                if let Some(e) = filter {
                    write!(f, " WHERE {e}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sql::parse_statement;

    /// Parse, print, re-parse: the round trip must be the identity on the
    /// AST for each representative statement form.
    #[test]
    fn canonical_round_trips() {
        for sql in [
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            "SELECT a, b FROM t WHERE a > 1 AND b <= 2 ORDER BY a DESC LIMIT 10",
            "SELECT COUNT(*), SUM(total) FROM sales",
            "SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT c IS NULL",
            "SELECT * FROM t WHERE a OR (b OR c)",
            "SELECT * FROM t WHERE x NOT IN (1, 2.5, 'it''s', NULL, TRUE)",
            "SELECT * FROM t WHERE y NOT BETWEEN -3 AND 9 ORDER BY y ASC",
            "INSERT INTO t VALUES ('a', 1, 2.5), ('b', NULL, FALSE)",
            "DELETE FROM t WHERE id = 'x'",
            "UPDATE t SET a = 1, b = 'x' WHERE c > 2",
        ] {
            let ast = parse_statement(sql).unwrap();
            let printed = ast.to_string();
            let reparsed = parse_statement(&printed).unwrap_or_else(|e| {
                panic!("printed form of {sql:?} fails to parse: {printed:?}: {e}")
            });
            assert_eq!(ast, reparsed, "round trip changed the AST of {sql:?} via {printed:?}");
        }
    }

    /// Parenthesization restores exactly the structures the grammar needs.
    #[test]
    fn printing_restores_precedence() {
        let cases = [
            ("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3", "a = 1 OR b = 2 AND c = 3"),
            ("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3", "(a = 1 OR b = 2) AND c = 3"),
            ("SELECT * FROM t WHERE NOT (a AND b)", "NOT (a AND b)"),
            ("SELECT * FROM t WHERE (a < b) < c", "(a < b) < c"),
        ];
        for (sql, expected_where) in cases {
            let ast = parse_statement(sql).unwrap();
            let printed = ast.to_string();
            let tail = printed.split(" WHERE ").nth(1).unwrap();
            assert_eq!(tail, expected_where, "for {sql:?}");
        }
    }
}
