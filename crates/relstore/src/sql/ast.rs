//! The SQL abstract syntax tree.

use quepa_pdm::Value;

/// A literal value in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// `TRUE` / `FALSE`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

impl Literal {
    /// Converts the literal into a PDM value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Null => Value::Null,
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// Binary operators in `WHERE` expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `LIKE`
    Like,
}

/// A boolean/scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (negated = the NOT form).
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (lit, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The literal list.
        list: Vec<Literal>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive).
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Literal,
        /// Upper bound.
        high: Literal,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
}

impl Expr {
    /// Collects the names of all columns referenced by the expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) => e.referenced_columns(out),
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::InList { expr, .. } => expr.referenced_columns(out),
            Expr::Between { expr, .. } => expr.referenced_columns(out),
        }
    }

    /// If the expression is exactly `column = literal` (in either operand
    /// order), returns the pair — the planner uses this to hit equality
    /// indexes.
    pub fn as_equality(&self) -> Option<(&str, Value)> {
        if let Expr::Binary { op: BinOp::Eq, left, right } = self {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(l)) | (Expr::Literal(l), Expr::Column(c)) => {
                    return Some((c, l.to_value()));
                }
                _ => {}
            }
        }
        None
    }
}

/// Aggregate functions (whole-table only in this subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

impl AggFunc {
    /// Parses an aggregate-function name, case-insensitively.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// An item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column.
    Column(String),
    /// An aggregate call; `None` argument means `COUNT(*)`.
    Aggregate(AggFunc, Option<String>),
}

/// Sort direction in `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderDir {
    /// Ascending (the default).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The select list.
    pub items: Vec<SelectItem>,
    /// The table queried.
    pub table: String,
    /// Optional `WHERE` clause.
    pub filter: Option<Expr>,
    /// Optional `ORDER BY col dir`.
    pub order_by: Option<(String, OrderDir)>,
    /// Optional `LIMIT`.
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// True if the select list contains any aggregate function. Aggregated
    /// queries cannot be augmented (paper §III-A, the Validator).
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|i| matches!(i, SelectItem::Aggregate(..)))
    }

    /// True if the select list is exactly `*`.
    pub fn is_wildcard(&self) -> bool {
        self.items.len() == 1 && matches!(self.items[0], SelectItem::Wildcard)
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT`.
    Select(SelectStmt),
    /// `INSERT INTO table VALUES (…)`, possibly multiple rows.
    Insert {
        /// Target table.
        table: String,
        /// One literal list per row.
        rows: Vec<Vec<Literal>>,
    },
    /// `DELETE FROM table [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter (absent = delete all).
        filter: Option<Expr>,
    },
    /// `UPDATE table SET col = lit, … [WHERE expr]`.
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        sets: Vec<(String, Literal)>,
        /// Optional filter (absent = update all).
        filter: Option<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_equality_both_orders() {
        let e = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::Column("id".into())),
            right: Box::new(Expr::Literal(Literal::Str("a32".into()))),
        };
        assert_eq!(e.as_equality(), Some(("id", Value::str("a32"))));
        let flipped = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::Literal(Literal::Int(3))),
            right: Box::new(Expr::Column("n".into())),
        };
        assert_eq!(flipped.as_equality(), Some(("n", Value::Int(3))));
        let non_eq = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::Column("n".into())),
            right: Box::new(Expr::Literal(Literal::Int(3))),
        };
        assert_eq!(non_eq.as_equality(), None);
    }

    #[test]
    fn referenced_columns_walks_tree() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Not(Box::new(Expr::Column("a".into())))),
            right: Box::new(Expr::IsNull {
                expr: Box::new(Expr::Column("b".into())),
                negated: true,
            }),
        };
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn aggregate_names() {
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("Sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
