//! A hand-written SQL lexer.

use crate::error::{RelError, Result};

/// The kinds of token the parser consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare identifier or keyword (keywords are matched case-insensitively
    /// by the parser; the lexer does not distinguish them).
    Ident(String),
    /// A single-quoted string literal with `''` escaping.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

/// A token plus its byte offset, for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// The lexer: turns SQL text into a vector of tokens.
pub struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer { bytes: input.as_bytes(), pos: 0 }
    }

    /// Lexes the whole input, appending a trailing [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> RelError {
        RelError::Syntax { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_token(&mut self) -> Result<Token> {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
        let offset = self.pos;
        let kind = match self.peek() {
            None => TokenKind::Eof,
            Some(b',') => {
                self.pos += 1;
                TokenKind::Comma
            }
            Some(b'(') => {
                self.pos += 1;
                TokenKind::LParen
            }
            Some(b')') => {
                self.pos += 1;
                TokenKind::RParen
            }
            Some(b'*') => {
                self.pos += 1;
                TokenKind::Star
            }
            Some(b';') => {
                self.pos += 1;
                TokenKind::Semi
            }
            Some(b'=') => {
                self.pos += 1;
                TokenKind::Eq
            }
            Some(b'!') => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ne
                } else {
                    return Err(self.err("expected `=` after `!`"));
                }
            }
            Some(b'<') => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                }
            }
            Some(b'>') => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            Some(b'\'') => self.lex_string()?,
            Some(b'0'..=b'9') => self.lex_number(false)?,
            Some(b'-') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.lex_number(true)?
                } else {
                    return Err(self.err("expected digit after `-`"));
                }
            }
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.lex_ident(),
            Some(b) => return Err(self.err(format!("unexpected character `{}`", b as char))),
        };
        Ok(Token { kind, offset })
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\'') => {
                    self.pos += 1;
                    // SQL escapes a quote by doubling it.
                    if self.peek() == Some(b'\'') {
                        s.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    let width = match self.bytes[start] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = (start + width).min(self.bytes.len());
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn lex_number(&mut self, negative: bool) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid float literal"))?;
            Ok(TokenKind::Float(if negative { -f } else { f }))
        } else {
            let i: i64 = text.parse().map_err(|_| self.err("integer literal overflow"))?;
            Ok(TokenKind::Int(if negative { -i } else { i }))
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii ident");
        TokenKind::Ident(text.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT * FROM t WHERE a >= 10"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Int(10),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into()), TokenKind::Eof]);
        assert_eq!(kinds("'caffè'"), vec![TokenKind::Str("caffè".into()), TokenKind::Eof]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("3 2.5 -7 -1.25"),
            vec![
                TokenKind::Int(3),
                TokenKind::Float(2.5),
                TokenKind::Int(-7),
                TokenKind::Float(-1.25),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("'unterminated").tokenize().is_err());
        assert!(Lexer::new("a ! b").tokenize().is_err());
        assert!(Lexer::new("#").tokenize().is_err());
        assert!(Lexer::new("- x").tokenize().is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::new("SELECT x").tokenize().unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
