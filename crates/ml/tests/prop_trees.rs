//! Property tests for the tree learners.

use proptest::prelude::*;
use quepa_ml::c45::{C45Params, DecisionTree};
use quepa_ml::dataset::{AttrKind, DatasetBuilder, FeatureValue, Schema};
use quepa_ml::eval::{accuracy, majority_baseline};
use quepa_ml::reptree::{RegressionTree, RepTreeParams};

fn num(x: f64) -> FeatureValue {
    FeatureValue::Num(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The classifier always predicts a valid class and reaches 100% on its
    /// own training data when fully grown (min_leaf=2, no two rows with the
    /// same features and different labels).
    #[test]
    fn classifier_memorizes_consistent_data(
        xs in prop::collection::btree_set(-100i32..100, 4..40),
        threshold in -100i32..100,
    ) {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for &x in &xs {
            b.push_classified(vec![num(x as f64)], if x >= threshold { "hi" } else { "lo" });
        }
        let d = b.build();
        let tree = DecisionTree::fit(&d, C45Params { min_leaf: 2, ..Default::default() });
        let acc = accuracy(&tree, &d);
        prop_assert!(acc >= 0.99, "training accuracy {acc}");
        prop_assert!(acc >= majority_baseline(&d) - 1e-9);
    }

    /// Regression predictions always lie within the training target range.
    #[test]
    fn regression_predictions_bounded(
        rows in prop::collection::vec((-100f64..100.0, -1000f64..1000.0), 4..60),
        probe in -200f64..200.0,
    ) {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for &(x, y) in &rows {
            b.push_regression(vec![num(x)], y);
        }
        let d = b.build();
        let tree = RegressionTree::fit(&d, RepTreeParams::default());
        let lo = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let hi = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
        let y = tree.predict(&[num(probe)]);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "{y} outside [{lo}, {hi}]");
    }

    /// Prediction is deterministic and total: any numeric input gets a class.
    #[test]
    fn classifier_total_on_numeric_inputs(
        xs in prop::collection::vec(-10f64..10.0, 4..20),
        probes in prop::collection::vec(-1e6f64..1e6, 1..10),
    ) {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for (i, &x) in xs.iter().enumerate() {
            b.push_classified(vec![num(x)], if i % 2 == 0 { "a" } else { "b" });
        }
        let d = b.build();
        let tree = DecisionTree::fit_default(&d);
        for &p in &probes {
            let c1 = tree.predict(&[num(p)]);
            let c2 = tree.predict(&[num(p)]);
            prop_assert_eq!(c1, c2);
            prop_assert!(c1 < d.classes.len());
        }
    }

    /// Pruned trees are never larger than unpruned ones.
    #[test]
    fn pruning_never_grows(rows in prop::collection::vec((-50f64..50.0, -50f64..50.0), 10..80)) {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for &(x, y) in &rows {
            b.push_regression(vec![num(x)], y);
        }
        let d = b.build();
        let grown = RegressionTree::fit(
            &d,
            RepTreeParams { prune_fraction: 0.0, min_leaf: 2, ..Default::default() },
        );
        let pruned = RegressionTree::fit(
            &d,
            RepTreeParams { prune_fraction: 0.25, min_leaf: 2, ..Default::default() },
        );
        // Not directly comparable node-for-node (different grow sets), but
        // the pruned tree must not explode.
        prop_assert!(pruned.node_count() <= grown.node_count() + rows.len());
        prop_assert!(pruned.leaf_count() >= 1);
    }
}
