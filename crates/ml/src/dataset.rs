//! Feature/label representation shared by the learners.

use std::collections::HashMap;
use std::fmt;

/// The kind of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrKind {
    /// Real-valued.
    Numeric,
    /// Finite vocabulary; values are interned to dense ids.
    Categorical,
}

/// The schema of a dataset: attribute names, kinds and — for categorical
/// attributes — the interned vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    names: Vec<String>,
    kinds: Vec<AttrKind>,
    vocabs: Vec<Vec<String>>,
    vocab_ids: Vec<HashMap<String, u32>>,
}

impl Schema {
    /// Creates a schema from `(name, kind)` pairs.
    pub fn new(attrs: &[(&str, AttrKind)]) -> Self {
        let mut s = Schema::default();
        for (name, kind) in attrs {
            s.names.push((*name).to_owned());
            s.kinds.push(kind.clone());
            s.vocabs.push(Vec::new());
            s.vocab_ids.push(HashMap::new());
        }
        s
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The kind of attribute `i`.
    pub fn kind(&self, i: usize) -> &AttrKind {
        &self.kinds[i]
    }

    /// Interns a categorical value of attribute `attr`, growing the
    /// vocabulary on first sight.
    pub fn intern(&mut self, attr: usize, value: &str) -> u32 {
        if let Some(&id) = self.vocab_ids[attr].get(value) {
            return id;
        }
        let id = self.vocabs[attr].len() as u32;
        self.vocabs[attr].push(value.to_owned());
        self.vocab_ids[attr].insert(value.to_owned(), id);
        id
    }

    /// Looks up an already-interned categorical value.
    pub fn category_id(&self, attr: usize, value: &str) -> Option<u32> {
        self.vocab_ids[attr].get(value).copied()
    }

    /// The printable name of category `id` of attribute `attr`.
    pub fn category_name(&self, attr: usize, id: u32) -> &str {
        &self.vocabs[attr][id as usize]
    }

    /// Vocabulary size of attribute `attr`.
    pub fn vocab_size(&self, attr: usize) -> usize {
        self.vocabs[attr].len()
    }
}

/// One feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureValue {
    /// A numeric value.
    Num(f64),
    /// An interned categorical id.
    Cat(u32),
}

impl FeatureValue {
    /// The numeric content; panics on categorical (caller consults the
    /// schema first).
    pub fn num(self) -> f64 {
        match self {
            FeatureValue::Num(x) => x,
            FeatureValue::Cat(_) => panic!("categorical feature used as numeric"),
        }
    }

    /// The categorical content; panics on numeric.
    pub fn cat(self) -> u32 {
        match self {
            FeatureValue::Cat(c) => c,
            FeatureValue::Num(_) => panic!("numeric feature used as categorical"),
        }
    }
}

/// A labelled dataset. The label is a `f64` for regression or an interned
/// class id (stored in the same field) for classification — the class
/// vocabulary lives in `classes`.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The feature schema.
    pub schema: Schema,
    /// Feature rows.
    pub rows: Vec<Vec<FeatureValue>>,
    /// Labels: class ids (as f64) or regression targets.
    pub labels: Vec<f64>,
    /// Class vocabulary; empty for regression datasets.
    pub classes: Vec<String>,
}

impl Dataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The class id of a label (classification datasets only).
    pub fn class_of(&self, row: usize) -> usize {
        self.labels[row] as usize
    }

    /// The printable class name of an id.
    pub fn class_name(&self, id: usize) -> &str {
        &self.classes[id]
    }

    /// Splits rows into two datasets: indices where `pick` is true and the
    /// rest. Schema and class vocabulary are shared (cloned).
    pub fn partition(&self, pick: impl Fn(usize) -> bool) -> (Dataset, Dataset) {
        let mut a = Dataset {
            schema: self.schema.clone(),
            classes: self.classes.clone(),
            ..Default::default()
        };
        let mut b = Dataset {
            schema: self.schema.clone(),
            classes: self.classes.clone(),
            ..Default::default()
        };
        for i in 0..self.len() {
            let dst = if pick(i) { &mut a } else { &mut b };
            dst.rows.push(self.rows[i].clone());
            dst.labels.push(self.labels[i]);
        }
        (a, b)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} rows × {} attrs{})",
            self.len(),
            self.schema.len(),
            if self.classes.is_empty() {
                ", regression".to_owned()
            } else {
                format!(", {} classes", self.classes.len())
            }
        )
    }
}

/// Incremental builder interning categorical features and class labels.
#[derive(Debug, Clone, Default)]
pub struct DatasetBuilder {
    dataset: Dataset,
    class_ids: HashMap<String, usize>,
}

impl DatasetBuilder {
    /// Starts a builder over a schema.
    pub fn new(schema: Schema) -> Self {
        DatasetBuilder {
            dataset: Dataset { schema, ..Default::default() },
            class_ids: HashMap::new(),
        }
    }

    /// Borrow the schema mutably (to intern categorical feature values).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.dataset.schema
    }

    /// Adds a row with a class label (classification).
    pub fn push_classified(&mut self, row: Vec<FeatureValue>, class: &str) {
        assert_eq!(row.len(), self.dataset.schema.len(), "row arity mismatch");
        let id = match self.class_ids.get(class) {
            Some(&id) => id,
            None => {
                let id = self.dataset.classes.len();
                self.dataset.classes.push(class.to_owned());
                self.class_ids.insert(class.to_owned(), id);
                id
            }
        };
        self.dataset.rows.push(row);
        self.dataset.labels.push(id as f64);
    }

    /// Adds a row with a numeric target (regression).
    pub fn push_regression(&mut self, row: Vec<FeatureValue>, target: f64) {
        assert_eq!(row.len(), self.dataset.schema.len(), "row arity mismatch");
        self.dataset.rows.push(row);
        self.dataset.labels.push(target);
    }

    /// Finishes the build.
    pub fn build(self) -> Dataset {
        self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_interning() {
        let mut s = Schema::new(&[("color", AttrKind::Categorical), ("size", AttrKind::Numeric)]);
        assert_eq!(s.intern(0, "red"), 0);
        assert_eq!(s.intern(0, "blue"), 1);
        assert_eq!(s.intern(0, "red"), 0);
        assert_eq!(s.vocab_size(0), 2);
        assert_eq!(s.category_name(0, 1), "blue");
        assert_eq!(s.category_id(0, "green"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn builder_classification() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        b.push_classified(vec![FeatureValue::Num(1.0)], "yes");
        b.push_classified(vec![FeatureValue::Num(2.0)], "no");
        b.push_classified(vec![FeatureValue::Num(3.0)], "yes");
        let d = b.build();
        assert_eq!(d.len(), 3);
        assert_eq!(d.classes, vec!["yes", "no"]);
        assert_eq!(d.class_of(0), 0);
        assert_eq!(d.class_of(1), 1);
        assert_eq!(d.class_of(2), 0);
        assert_eq!(d.class_name(1), "no");
    }

    #[test]
    fn partition_splits_rows() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..10 {
            b.push_regression(vec![FeatureValue::Num(i as f64)], i as f64 * 2.0);
        }
        let d = b.build();
        let (even, odd) = d.partition(|i| i % 2 == 0);
        assert_eq!(even.len(), 5);
        assert_eq!(odd.len(), 5);
        assert_eq!(even.labels[1], 4.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        b.push_regression(vec![], 0.0);
    }

    #[test]
    fn display() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let d = DatasetBuilder::new(schema).build();
        assert!(d.to_string().contains("regression"));
    }
}
