//! A REPTree-style regression tree: variance-reduction splits with
//! reduced-error pruning (REP) against a held-out fraction of the training
//! data — the algorithm Weka's `REPTree` uses for the paper's `T2`–`T4`
//! models.

use crate::dataset::{AttrKind, Dataset, FeatureValue};

/// Hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepTreeParams {
    /// Do not split nodes with fewer rows than this.
    pub min_leaf: usize,
    /// Maximum depth.
    pub max_depth: usize,
    /// Fraction of the data held out for reduced-error pruning
    /// (0 disables pruning).
    pub prune_fraction: f64,
}

impl Default for RepTreeParams {
    fn default() -> Self {
        RepTreeParams { min_leaf: 5, max_depth: 20, prune_fraction: 0.25 }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf,
    NumericSplit { attr: usize, threshold: f64, children: [usize; 2] },
    CategoricalSplit { attr: usize, children: Vec<Option<usize>> },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    /// Mean target at this node — the prediction if we stop here.
    mean: f64,
}

/// A trained regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Trains a tree, holding out `prune_fraction` of the rows
    /// (deterministically: every ⌈1/f⌉-th row) for reduced-error pruning.
    pub fn fit(data: &Dataset, params: RepTreeParams) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut grow_rows = Vec::new();
        let mut prune_rows = Vec::new();
        if params.prune_fraction > 0.0 && data.len() >= 8 {
            let every = (1.0 / params.prune_fraction).round().max(2.0) as usize;
            for i in 0..data.len() {
                if i % every == every - 1 {
                    prune_rows.push(i);
                } else {
                    grow_rows.push(i);
                }
            }
        } else {
            grow_rows = (0..data.len()).collect();
        }
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(data, &grow_rows, &params, 0);
        if !prune_rows.is_empty() {
            tree.reduced_error_prune(data, &prune_rows, 0);
        }
        tree
    }

    /// Trains with default parameters.
    pub fn fit_default(data: &Dataset) -> Self {
        Self::fit(data, RepTreeParams::default())
    }

    /// Predicts the target of a feature row.
    pub fn predict(&self, row: &[FeatureValue]) -> f64 {
        let mut at = 0usize;
        loop {
            let node = &self.nodes[at];
            match &node.kind {
                NodeKind::Leaf => return node.mean,
                NodeKind::NumericSplit { attr, threshold, children } => {
                    at = if row[*attr].num() <= *threshold { children[0] } else { children[1] };
                }
                NodeKind::CategoricalSplit { attr, children } => {
                    let cat = row[*attr].cat() as usize;
                    match children.get(cat).copied().flatten() {
                        Some(child) => at = child,
                        None => return node.mean,
                    }
                }
            }
        }
    }

    /// Number of nodes reachable from the root (pruning orphans the
    /// collapsed subtrees in the arena; those are not counted).
    pub fn node_count(&self) -> usize {
        self.walk_count().0
    }

    /// Number of reachable leaves.
    pub fn leaf_count(&self) -> usize {
        self.walk_count().1
    }

    fn walk_count(&self) -> (usize, usize) {
        fn rec(nodes: &[Node], at: usize, counts: &mut (usize, usize)) {
            counts.0 += 1;
            match &nodes[at].kind {
                NodeKind::Leaf => counts.1 += 1,
                NodeKind::NumericSplit { children, .. } => {
                    for &c in children {
                        rec(nodes, c, counts);
                    }
                }
                NodeKind::CategoricalSplit { children, .. } => {
                    for &c in children.iter().flatten() {
                        rec(nodes, c, counts);
                    }
                }
            }
        }
        let mut counts = (0, 0);
        if !self.nodes.is_empty() {
            rec(&self.nodes, 0, &mut counts);
        }
        counts
    }

    fn grow(
        &mut self,
        data: &Dataset,
        rows: &[usize],
        params: &RepTreeParams,
        depth: usize,
    ) -> usize {
        let mean = mean_of(data, rows);
        let id = self.nodes.len();
        self.nodes.push(Node { kind: NodeKind::Leaf, mean });

        if rows.len() < params.min_leaf.max(2) || depth >= params.max_depth {
            return id;
        }
        let var = variance_of(data, rows);
        if var <= 1e-12 {
            return id;
        }
        let Some(split) = best_split(data, rows) else { return id };
        match split {
            Split::Numeric { attr, threshold } => {
                let (le, gt): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| data.rows[r][attr].num() <= threshold);
                if le.is_empty() || gt.is_empty() {
                    return id;
                }
                let l = self.grow(data, &le, params, depth + 1);
                let r = self.grow(data, &gt, params, depth + 1);
                self.nodes[id].kind = NodeKind::NumericSplit { attr, threshold, children: [l, r] };
            }
            Split::Categorical { attr } => {
                let vocab = data.schema.vocab_size(attr);
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); vocab];
                for &r in rows {
                    buckets[data.rows[r][attr].cat() as usize].push(r);
                }
                let mut children: Vec<Option<usize>> = vec![None; vocab];
                let mut non_empty = 0;
                for (cat, bucket) in buckets.iter().enumerate() {
                    if !bucket.is_empty() {
                        non_empty += 1;
                        children[cat] = Some(self.grow(data, bucket, params, depth + 1));
                    }
                }
                if non_empty < 2 {
                    self.nodes.truncate(id + 1);
                    return id;
                }
                self.nodes[id].kind = NodeKind::CategoricalSplit { attr, children };
            }
        }
        id
    }

    /// Bottom-up reduced-error pruning: collapse a subtree into a leaf when
    /// the leaf's squared error on the held-out rows is no worse than the
    /// subtree's. Returns the subtree's squared error after pruning.
    fn reduced_error_prune(&mut self, data: &Dataset, rows: &[usize], at: usize) -> f64 {
        let leaf_err: f64 = rows
            .iter()
            .map(|&r| {
                let d = data.labels[r] - self.nodes[at].mean;
                d * d
            })
            .sum();
        let subtree_err = match self.nodes[at].kind.clone() {
            NodeKind::Leaf => return leaf_err,
            NodeKind::NumericSplit { attr, threshold, children } => {
                let (le, gt): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| data.rows[r][attr].num() <= threshold);
                self.reduced_error_prune(data, &le, children[0])
                    + self.reduced_error_prune(data, &gt, children[1])
            }
            NodeKind::CategoricalSplit { attr, children } => {
                let mut err = 0.0;
                let vocab = children.len();
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); vocab];
                let mut fallback: Vec<usize> = Vec::new();
                for &r in rows {
                    let cat = data.rows[r][attr].cat() as usize;
                    if cat < vocab && children[cat].is_some() {
                        buckets[cat].push(r);
                    } else {
                        fallback.push(r);
                    }
                }
                for (cat, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        err += self.reduced_error_prune(data, &buckets[cat], *child);
                    }
                }
                // Rows with unmapped categories are predicted by this
                // node's mean either way.
                err += fallback
                    .iter()
                    .map(|&r| {
                        let d = data.labels[r] - self.nodes[at].mean;
                        d * d
                    })
                    .sum::<f64>();
                err
            }
        };
        if leaf_err <= subtree_err {
            self.nodes[at].kind = NodeKind::Leaf;
            leaf_err
        } else {
            subtree_err
        }
    }
}

fn mean_of(data: &Dataset, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&r| data.labels[r]).sum::<f64>() / rows.len() as f64
}

fn variance_of(data: &Dataset, rows: &[usize]) -> f64 {
    if rows.len() < 2 {
        return 0.0;
    }
    let m = mean_of(data, rows);
    rows.iter().map(|&r| (data.labels[r] - m).powi(2)).sum::<f64>() / rows.len() as f64
}

enum Split {
    Numeric { attr: usize, threshold: f64 },
    Categorical { attr: usize },
}

/// Picks the split with the largest variance reduction.
fn best_split(data: &Dataset, rows: &[usize]) -> Option<Split> {
    let base = variance_of(data, rows) * rows.len() as f64;
    let mut best: Option<(f64, Split)> = None;

    for attr in 0..data.schema.len() {
        match data.schema.kind(attr) {
            AttrKind::Numeric => {
                let mut sorted: Vec<(f64, f64)> =
                    rows.iter().map(|&r| (data.rows[r][attr].num(), data.labels[r])).collect();
                sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
                // Prefix sums of y and y² for O(1) variance per threshold.
                let n = sorted.len();
                let mut sum = 0.0;
                let mut sum2 = 0.0;
                let total_sum: f64 = sorted.iter().map(|(_, y)| y).sum();
                let total_sum2: f64 = sorted.iter().map(|(_, y)| y * y).sum();
                for i in 0..n.saturating_sub(1) {
                    sum += sorted[i].1;
                    sum2 += sorted[i].1 * sorted[i].1;
                    if sorted[i].0 == sorted[i + 1].0 {
                        continue;
                    }
                    let nl = (i + 1) as f64;
                    let nr = (n - i - 1) as f64;
                    let sse_l = sum2 - sum * sum / nl;
                    let sse_r = (total_sum2 - sum2) - (total_sum - sum).powi(2) / nr;
                    let reduction = base - (sse_l + sse_r);
                    if best.as_ref().is_none_or(|(b, _)| reduction > *b) && reduction > 1e-12 {
                        let threshold = (sorted[i].0 + sorted[i + 1].0) / 2.0;
                        best = Some((reduction, Split::Numeric { attr, threshold }));
                    }
                }
            }
            AttrKind::Categorical => {
                let vocab = data.schema.vocab_size(attr);
                if vocab < 2 {
                    continue;
                }
                let mut sums = vec![0.0f64; vocab];
                let mut sums2 = vec![0.0f64; vocab];
                let mut counts = vec![0usize; vocab];
                for &r in rows {
                    let c = data.rows[r][attr].cat() as usize;
                    sums[c] += data.labels[r];
                    sums2[c] += data.labels[r] * data.labels[r];
                    counts[c] += 1;
                }
                let non_empty = counts.iter().filter(|&&c| c > 0).count();
                if non_empty < 2 {
                    continue;
                }
                let sse: f64 = (0..vocab)
                    .filter(|&c| counts[c] > 0)
                    .map(|c| sums2[c] - sums[c] * sums[c] / counts[c] as f64)
                    .sum();
                let reduction = base - sse;
                if best.as_ref().is_none_or(|(b, _)| reduction > *b) && reduction > 1e-12 {
                    best = Some((reduction, Split::Categorical { attr }));
                }
            }
        }
    }
    best.map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, Schema};

    fn num(x: f64) -> FeatureValue {
        FeatureValue::Num(x)
    }

    /// y = 10 for x <= 5, y = 20 otherwise.
    fn step_data() -> Dataset {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..40 {
            let x = i as f64 / 4.0;
            b.push_regression(vec![num(x)], if x <= 5.0 { 10.0 } else { 20.0 });
        }
        b.build()
    }

    #[test]
    fn learns_step_function() {
        let t = RegressionTree::fit_default(&step_data());
        assert!((t.predict(&[num(2.0)]) - 10.0).abs() < 0.5);
        assert!((t.predict(&[num(8.0)]) - 20.0).abs() < 0.5);
    }

    #[test]
    fn approximates_linear_function() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..200 {
            let x = i as f64 / 10.0;
            b.push_regression(vec![num(x)], 3.0 * x + 1.0);
        }
        let t =
            RegressionTree::fit(&b.build(), RepTreeParams { min_leaf: 4, ..Default::default() });
        // Piecewise-constant fit: within a leaf-width of the true line.
        for x in [1.0, 5.0, 10.0, 15.0, 19.0] {
            let y = t.predict(&[num(x)]);
            assert!((y - (3.0 * x + 1.0)).abs() < 3.0, "x={x} y={y}");
        }
    }

    #[test]
    fn categorical_split() {
        let mut schema = Schema::new(&[("store", AttrKind::Categorical)]);
        let a = schema.intern(0, "mysql");
        let bb = schema.intern(0, "mongo");
        let mut b = DatasetBuilder::new(schema);
        for _ in 0..20 {
            b.push_regression(vec![FeatureValue::Cat(a)], 100.0);
            b.push_regression(vec![FeatureValue::Cat(bb)], 200.0);
        }
        let t = RegressionTree::fit_default(&b.build());
        assert!((t.predict(&[FeatureValue::Cat(a)]) - 100.0).abs() < 1.0);
        assert!((t.predict(&[FeatureValue::Cat(bb)]) - 200.0).abs() < 1.0);
    }

    #[test]
    fn pruning_shrinks_noisy_tree() {
        // Pure noise: pruning should collapse (or strongly shrink) the tree.
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        let mut state = 12345u64;
        for i in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64;
            b.push_regression(vec![num(i as f64)], noise);
        }
        let d = b.build();
        let unpruned = RegressionTree::fit(
            &d,
            RepTreeParams { prune_fraction: 0.0, min_leaf: 2, ..Default::default() },
        );
        let pruned = RegressionTree::fit(
            &d,
            RepTreeParams { prune_fraction: 0.3, min_leaf: 2, ..Default::default() },
        );
        assert!(
            pruned.leaf_count() < unpruned.leaf_count(),
            "pruned {} vs unpruned {}",
            pruned.leaf_count(),
            unpruned.leaf_count()
        );
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..50 {
            b.push_regression(vec![num(i as f64)], 7.0);
        }
        let t = RegressionTree::fit_default(&b.build());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[num(999.0)]), 7.0);
    }

    #[test]
    fn min_leaf_respected() {
        let t = RegressionTree::fit(
            &step_data(),
            RepTreeParams { min_leaf: 1000, ..Default::default() },
        );
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn two_dimensional_surface() {
        let schema = Schema::new(&[("a", AttrKind::Numeric), ("b", AttrKind::Numeric)]);
        let mut builder = DatasetBuilder::new(schema);
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64, j as f64);
                let target = if x > 10.0 {
                    5.0
                } else if y > 10.0 {
                    50.0
                } else {
                    500.0
                };
                builder.push_regression(vec![num(x), num(y)], target);
            }
        }
        let t = RegressionTree::fit_default(&builder.build());
        assert!((t.predict(&[num(15.0), num(2.0)]) - 5.0).abs() < 2.0);
        assert!((t.predict(&[num(2.0), num(15.0)]) - 50.0).abs() < 10.0);
        assert!((t.predict(&[num(2.0), num(2.0)]) - 500.0).abs() < 50.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        RegressionTree::fit_default(&DatasetBuilder::new(schema).build());
    }
}
