//! Streaming training sets: a bounded, deterministic reservoir.
//!
//! The online optimizer retrains its trees from the live run-log stream.
//! Keeping *every* log would grow without bound; keeping only the last
//! `N` would forget the rare situations the planner most needs (a
//! high-fanout filtered query seen once an hour). A reservoir sample
//! keeps a uniform sample over the whole stream in `O(capacity)` memory
//! — Vitter's Algorithm R — with one twist: the replacement draws come
//! from a SplitMix64 hash of `(seed, items-seen counter)` instead of a
//! stateful RNG, so the reservoir contents are a pure function of the
//! seed and the stream prefix. Two instances fed the same stream hold
//! the same sample, refit the same trees and make the same pushdown
//! decisions — the determinism contract the differential checker leans
//! on.

/// A fixed-capacity uniform sample over an unbounded stream.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seed: u64,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// An empty reservoir holding at most `capacity` items. The seed
    /// fixes the replacement draws; same seed + same stream ⇒ same
    /// sample.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Reservoir { capacity, seed, seen: 0, items: Vec::new() }
    }

    /// Offers one stream item. The first `capacity` items are always
    /// kept; the `i`-th item thereafter replaces a uniformly drawn slot
    /// with probability `capacity / i` (Algorithm R).
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        // j uniform in [0, seen); keep when it lands inside the sample.
        // The modulo bias is ≤ capacity/2^64 — irrelevant at this scale.
        let j = splitmix64(self.seed ^ self.seen) % self.seen;
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// The current sample, in slot order (not stream order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total items offered over the stream's lifetime.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// SplitMix64: a strong 64-bit finalizer (public-domain constants).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_stays_bounded() {
        let mut r = Reservoir::new(4, 7);
        for i in 0..100u32 {
            r.push(i);
            assert!(r.len() <= 4);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn short_streams_are_kept_whole() {
        let mut r = Reservoir::new(10, 0);
        for i in 0..5u32 {
            r.push(i);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn deterministic_per_seed_and_stream() {
        let sample = |seed: u64| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..1000u32 {
                r.push(i);
            }
            r.items().to_vec()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43), "different seeds sample differently");
    }

    #[test]
    fn samples_across_the_whole_stream() {
        // A uniform sample over 0..10_000 should not be stuck in the
        // prefix: with capacity 16 the odds of all samples < 1000 are
        // astronomically small for any reasonable hash.
        let mut r = Reservoir::new(16, 3);
        for i in 0..10_000u32 {
            r.push(i);
        }
        assert!(r.items().iter().any(|&i| i >= 1000), "{:?}", r.items());
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut r = Reservoir::new(0, 1);
        r.push(1u8);
        assert!(r.is_empty());
        assert_eq!(r.seen(), 1);
    }
}
