//! Train/test utilities: splits, accuracy, error metrics.

use crate::c45::DecisionTree;
use crate::dataset::{Dataset, FeatureValue};
use crate::reptree::RegressionTree;

/// Deterministic train/test split: every `k`-th row goes to the test set,
/// where `k = round(1 / test_fraction)`.
pub fn train_test_split(data: &Dataset, test_fraction: f64) -> (Dataset, Dataset) {
    assert!((0.0..1.0).contains(&test_fraction), "fraction must be in [0, 1)");
    if test_fraction == 0.0 {
        return data.partition(|_| true);
    }
    let every = (1.0 / test_fraction).round().max(2.0) as usize;
    let (test, train) = data.partition(|i| i % every == every - 1);
    (train, test)
}

/// Classification accuracy of a tree on a dataset.
pub fn accuracy(tree: &DecisionTree, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let correct =
        (0..data.len()).filter(|&i| tree.predict(&data.rows[i]) == data.class_of(i)).count();
    correct as f64 / data.len() as f64
}

/// Mean absolute error of a regression tree on a dataset.
pub fn mae(tree: &RegressionTree, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let total: f64 =
        (0..data.len()).map(|i| (tree.predict(&data.rows[i]) - data.labels[i]).abs()).sum();
    total / data.len() as f64
}

/// Root mean squared error of a regression tree on a dataset.
pub fn rmse(tree: &RegressionTree, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let total: f64 =
        (0..data.len()).map(|i| (tree.predict(&data.rows[i]) - data.labels[i]).powi(2)).sum();
    (total / data.len() as f64).sqrt()
}

/// Confusion matrix `[actual][predicted]` of a classifier.
pub fn confusion_matrix(tree: &DecisionTree, data: &Dataset) -> Vec<Vec<usize>> {
    let k = data.classes.len();
    let mut m = vec![vec![0usize; k]; k];
    for i in 0..data.len() {
        m[data.class_of(i)][tree.predict(&data.rows[i])] += 1;
    }
    m
}

/// The majority-class baseline accuracy — any useful classifier must beat
/// this.
pub fn majority_baseline(data: &Dataset) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let mut counts = vec![0usize; data.classes.len()];
    for i in 0..data.len() {
        counts[data.class_of(i)] += 1;
    }
    *counts.iter().max().unwrap_or(&0) as f64 / data.len() as f64
}

/// Convenience: predicts a class name from raw features.
pub fn predict_class<'t>(tree: &'t DecisionTree, row: &[FeatureValue]) -> &'t str {
    tree.predict_name(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{AttrKind, DatasetBuilder, Schema};

    fn num(x: f64) -> FeatureValue {
        FeatureValue::Num(x)
    }

    fn labelled() -> Dataset {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..100 {
            let x = i as f64;
            b.push_classified(vec![num(x)], if x >= 50.0 { "hi" } else { "lo" });
        }
        b.build()
    }

    #[test]
    fn split_sizes() {
        let d = labelled();
        let (train, test) = train_test_split(&d, 0.25);
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        let (train, test) = train_test_split(&d, 0.1);
        assert_eq!(test.len(), 10);
        assert_eq!(train.len(), 90);
    }

    #[test]
    fn classifier_generalizes() {
        let d = labelled();
        let (train, test) = train_test_split(&d, 0.2);
        let tree = DecisionTree::fit_default(&train);
        let acc = accuracy(&tree, &test);
        assert!(acc >= 0.95, "accuracy {acc}");
        assert!(acc > majority_baseline(&test));
    }

    #[test]
    fn confusion_matrix_sums_to_len() {
        let d = labelled();
        let tree = DecisionTree::fit_default(&d);
        let m = confusion_matrix(&tree, &d);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, d.len());
        // Diagonal dominates for a good classifier.
        let diag: usize = (0..m.len()).map(|i| m[i][i]).sum();
        assert!(diag as f64 / total as f64 > 0.95);
    }

    #[test]
    fn regression_metrics() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..100 {
            let x = i as f64;
            b.push_regression(vec![num(x)], if x >= 50.0 { 100.0 } else { 0.0 });
        }
        let d = b.build();
        let (train, test) = train_test_split(&d, 0.2);
        let tree = RegressionTree::fit_default(&train);
        // One test point sits exactly on the learnt boundary (the midpoint
        // moved by the held-out rows), so allow a single 100-unit miss.
        assert!(mae(&tree, &test) <= 6.0);
        assert!(rmse(&tree, &test) <= 25.0);
        assert!(rmse(&tree, &test) >= mae(&tree, &test) - 1e-9, "RMSE ≥ MAE always");
    }

    #[test]
    fn empty_edge_cases() {
        let d = labelled();
        let tree = DecisionTree::fit_default(&d);
        let (empty, _) = d.partition(|_| false);
        assert_eq!(accuracy(&tree, &empty), 1.0);
        assert_eq!(majority_baseline(&empty), 1.0);
    }
}
