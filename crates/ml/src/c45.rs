//! A C4.5-style decision-tree classifier: gain-ratio splits, multiway
//! splits on categorical attributes, binary threshold splits on numeric
//! attributes.

use crate::dataset::{AttrKind, Dataset, FeatureValue};

/// Hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C45Params {
    /// Do not split nodes with fewer rows than this.
    pub min_leaf: usize,
    /// Ignore splits whose information gain is below this floor.
    pub min_gain: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for C45Params {
    fn default() -> Self {
        C45Params { min_leaf: 4, min_gain: 1e-6, max_depth: 24 }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf {
        class: usize,
    },
    NumericSplit {
        attr: usize,
        threshold: f64,
        /// `<= threshold` child, `> threshold` child.
        children: [usize; 2],
    },
    CategoricalSplit {
        attr: usize,
        /// Child per category id; categories unseen in this branch fall
        /// back to the majority class stored alongside.
        children: Vec<Option<usize>>,
        fallback_class: usize,
    },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    classes: Vec<String>,
}

impl DecisionTree {
    /// Trains a tree on a classification dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty or has no class vocabulary.
    pub fn fit(data: &Dataset, params: C45Params) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(!data.classes.is_empty(), "classification dataset required");
        let mut tree = DecisionTree { nodes: Vec::new(), classes: data.classes.clone() };
        let all: Vec<usize> = (0..data.len()).collect();
        tree.grow(data, &all, params, 0);
        tree
    }

    /// Trains with default parameters.
    pub fn fit_default(data: &Dataset) -> Self {
        Self::fit(data, C45Params::default())
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (1 = a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at].kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::NumericSplit { children, .. } => {
                    1 + children.iter().map(|&c| depth_of(nodes, c)).max().unwrap_or(0)
                }
                NodeKind::CategoricalSplit { children, .. } => {
                    1 + children.iter().flatten().map(|&c| depth_of(nodes, c)).max().unwrap_or(0)
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Predicts the class id of a feature row.
    pub fn predict(&self, row: &[FeatureValue]) -> usize {
        let mut at = 0usize;
        loop {
            match &self.nodes[at].kind {
                NodeKind::Leaf { class } => return *class,
                NodeKind::NumericSplit { attr, threshold, children } => {
                    at = if row[*attr].num() <= *threshold { children[0] } else { children[1] };
                }
                NodeKind::CategoricalSplit { attr, children, fallback_class } => {
                    let cat = row[*attr].cat() as usize;
                    match children.get(cat).copied().flatten() {
                        Some(child) => at = child,
                        None => return *fallback_class,
                    }
                }
            }
        }
    }

    /// Predicts the class *name*.
    pub fn predict_name(&self, row: &[FeatureValue]) -> &str {
        &self.classes[self.predict(row)]
    }

    /// Renders the tree as indented text, like the paper's Fig. 8 — one
    /// line per branch, leaves showing the decided class.
    ///
    /// `attr_names` labels the attributes; `category_name` resolves the
    /// category ids of categorical splits.
    pub fn render(
        &self,
        attr_names: &[String],
        category_name: impl Fn(usize, u32) -> String,
    ) -> String {
        fn rec(
            tree: &DecisionTree,
            at: usize,
            depth: usize,
            attr_names: &[String],
            category_name: &impl Fn(usize, u32) -> String,
            out: &mut String,
        ) {
            use std::fmt::Write;
            let pad = "  ".repeat(depth);
            match &tree.nodes[at].kind {
                NodeKind::Leaf { class } => {
                    let _ = writeln!(out, "{pad}→ {}", tree.classes[*class]);
                }
                NodeKind::NumericSplit { attr, threshold, children } => {
                    let name = &attr_names[*attr];
                    let _ = writeln!(out, "{pad}{name} <= {threshold:.2}?");
                    rec(tree, children[0], depth + 1, attr_names, category_name, out);
                    let _ = writeln!(out, "{pad}{name} > {threshold:.2}?");
                    rec(tree, children[1], depth + 1, attr_names, category_name, out);
                }
                NodeKind::CategoricalSplit { attr, children, .. } => {
                    let name = &attr_names[*attr];
                    for (cat, child) in children.iter().enumerate() {
                        if let Some(child) = child {
                            let label = category_name(*attr, cat as u32);
                            let _ = writeln!(out, "{pad}{name} = {label}?");
                            rec(tree, *child, depth + 1, attr_names, category_name, out);
                        }
                    }
                }
            }
        }
        let mut out = String::new();
        rec(self, 0, 0, attr_names, &category_name, &mut out);
        out
    }

    fn grow(&mut self, data: &Dataset, rows: &[usize], params: C45Params, depth: usize) -> usize {
        let majority = majority_class(data, rows);
        let id = self.nodes.len();
        self.nodes.push(Node { kind: NodeKind::Leaf { class: majority } });

        if rows.len() < params.min_leaf.max(2) || depth >= params.max_depth || is_pure(data, rows) {
            return id;
        }
        let Some(split) = best_split(data, rows, params.min_gain) else { return id };

        match split {
            Split::Numeric { attr, threshold, .. } => {
                let (le, gt): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| data.rows[r][attr].num() <= threshold);
                if le.is_empty() || gt.is_empty() {
                    return id;
                }
                let l = self.grow(data, &le, params, depth + 1);
                let r = self.grow(data, &gt, params, depth + 1);
                self.nodes[id].kind = NodeKind::NumericSplit { attr, threshold, children: [l, r] };
            }
            Split::Categorical { attr, .. } => {
                let vocab = data.schema.vocab_size(attr);
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); vocab];
                for &r in rows {
                    buckets[data.rows[r][attr].cat() as usize].push(r);
                }
                let mut children: Vec<Option<usize>> = vec![None; vocab];
                let mut non_empty = 0;
                for (cat, bucket) in buckets.iter().enumerate() {
                    if !bucket.is_empty() {
                        non_empty += 1;
                        children[cat] = Some(self.grow(data, bucket, params, depth + 1));
                    }
                }
                if non_empty < 2 {
                    // Degenerate: every row has the same category. Trim the
                    // children we just grew back off and stay a leaf.
                    self.nodes.truncate(id + 1);
                    self.nodes[id].kind = NodeKind::Leaf { class: majority };
                    return id;
                }
                self.nodes[id].kind =
                    NodeKind::CategoricalSplit { attr, children, fallback_class: majority };
            }
        }
        id
    }
}

enum Split {
    Numeric { attr: usize, threshold: f64, gain_ratio: f64 },
    Categorical { attr: usize, gain_ratio: f64 },
}

impl Split {
    fn gain_ratio(&self) -> f64 {
        match self {
            Split::Numeric { gain_ratio, .. } | Split::Categorical { gain_ratio, .. } => {
                *gain_ratio
            }
        }
    }
}

fn majority_class(data: &Dataset, rows: &[usize]) -> usize {
    let mut counts = vec![0usize; data.classes.len()];
    for &r in rows {
        counts[data.class_of(r)] += 1;
    }
    counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap_or(0)
}

fn is_pure(data: &Dataset, rows: &[usize]) -> bool {
    let first = data.class_of(rows[0]);
    rows.iter().all(|&r| data.class_of(r) == first)
}

fn entropy_of_counts(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

fn entropy(data: &Dataset, rows: &[usize]) -> f64 {
    let mut counts = vec![0usize; data.classes.len()];
    for &r in rows {
        counts[data.class_of(r)] += 1;
    }
    entropy_of_counts(&counts, rows.len())
}

/// Finds the split with the best gain ratio across all attributes, C4.5's
/// criterion: `gain / split_info`, considering only splits whose raw gain
/// clears `min_gain`.
fn best_split(data: &Dataset, rows: &[usize], min_gain: f64) -> Option<Split> {
    let base_entropy = entropy(data, rows);
    let n = rows.len() as f64;
    let mut best: Option<Split> = None;

    for attr in 0..data.schema.len() {
        let candidate = match data.schema.kind(attr) {
            AttrKind::Numeric => best_numeric_split(data, rows, attr, base_entropy, n, min_gain),
            AttrKind::Categorical => {
                best_categorical_split(data, rows, attr, base_entropy, n, min_gain)
            }
        };
        if let Some(c) = candidate {
            if best.as_ref().is_none_or(|b| c.gain_ratio() > b.gain_ratio()) {
                best = Some(c);
            }
        }
    }
    best
}

fn best_numeric_split(
    data: &Dataset,
    rows: &[usize],
    attr: usize,
    base_entropy: f64,
    n: f64,
    min_gain: f64,
) -> Option<Split> {
    // Sort rows by the attribute, consider midpoints between class changes.
    let mut sorted: Vec<(f64, usize)> =
        rows.iter().map(|&r| (data.rows[r][attr].num(), data.class_of(r))).collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    let k = data.classes.len();
    let mut left = vec![0usize; k];
    let mut right = vec![0usize; k];
    for &(_, c) in &sorted {
        right[c] += 1;
    }

    let mut best: Option<(f64, f64)> = None; // (gain_ratio, threshold)
    for i in 0..sorted.len().saturating_sub(1) {
        let (v, c) = sorted[i];
        left[c] += 1;
        right[c] -= 1;
        let next_v = sorted[i + 1].0;
        if v == next_v {
            continue; // can't split between equal values
        }
        let nl = (i + 1) as f64;
        let nr = n - nl;
        let cond = (nl / n) * entropy_of_counts(&left, i + 1)
            + (nr / n) * entropy_of_counts(&right, sorted.len() - i - 1);
        let gain = base_entropy - cond;
        if gain < min_gain {
            continue;
        }
        let split_info = {
            let pl = nl / n;
            let pr = nr / n;
            -(pl * pl.log2() + pr * pr.log2())
        };
        if split_info <= 0.0 {
            continue;
        }
        let ratio = gain / split_info;
        let threshold = (v + next_v) / 2.0;
        if best.is_none_or(|(b, _)| ratio > b) {
            best = Some((ratio, threshold));
        }
    }
    best.map(|(gain_ratio, threshold)| Split::Numeric { attr, threshold, gain_ratio })
}

fn best_categorical_split(
    data: &Dataset,
    rows: &[usize],
    attr: usize,
    base_entropy: f64,
    n: f64,
    min_gain: f64,
) -> Option<Split> {
    let vocab = data.schema.vocab_size(attr);
    if vocab < 2 {
        return None;
    }
    let k = data.classes.len();
    let mut counts = vec![vec![0usize; k]; vocab];
    let mut totals = vec![0usize; vocab];
    for &r in rows {
        let cat = data.rows[r][attr].cat() as usize;
        counts[cat][data.class_of(r)] += 1;
        totals[cat] += 1;
    }
    let mut cond = 0.0;
    let mut split_info = 0.0;
    let mut non_empty = 0;
    for cat in 0..vocab {
        if totals[cat] == 0 {
            continue;
        }
        non_empty += 1;
        let frac = totals[cat] as f64 / n;
        cond += frac * entropy_of_counts(&counts[cat], totals[cat]);
        split_info -= frac * frac.log2();
    }
    if non_empty < 2 || split_info <= 0.0 {
        return None;
    }
    let gain = base_entropy - cond;
    if gain < min_gain {
        return None;
    }
    Some(Split::Categorical { attr, gain_ratio: gain / split_info })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, Schema};

    fn num(x: f64) -> FeatureValue {
        FeatureValue::Num(x)
    }

    /// y = x > 5, learnable with one threshold split.
    fn threshold_data() -> Dataset {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..40 {
            let x = i as f64 / 4.0;
            b.push_classified(vec![num(x)], if x > 5.0 { "hi" } else { "lo" });
        }
        b.build()
    }

    #[test]
    fn learns_threshold() {
        let d = threshold_data();
        let t = DecisionTree::fit_default(&d);
        assert_eq!(t.predict_name(&[num(1.0)]), "lo");
        assert_eq!(t.predict_name(&[num(9.0)]), "hi");
        assert_eq!(t.predict_name(&[num(5.3)]), "hi");
        assert!(t.depth() >= 2);
    }

    #[test]
    fn learns_categorical() {
        let mut schema = Schema::new(&[("weather", AttrKind::Categorical)]);
        let sun = schema.intern(0, "sunny");
        let rain = schema.intern(0, "rainy");
        let snow = schema.intern(0, "snowy");
        let mut b = DatasetBuilder::new(schema);
        for _ in 0..5 {
            b.push_classified(vec![FeatureValue::Cat(sun)], "beach");
            b.push_classified(vec![FeatureValue::Cat(rain)], "museum");
            b.push_classified(vec![FeatureValue::Cat(snow)], "ski");
        }
        let d = b.build();
        let t = DecisionTree::fit(&d, C45Params { min_leaf: 2, ..Default::default() });
        assert_eq!(t.predict_name(&[FeatureValue::Cat(sun)]), "beach");
        assert_eq!(t.predict_name(&[FeatureValue::Cat(rain)]), "museum");
        assert_eq!(t.predict_name(&[FeatureValue::Cat(snow)]), "ski");
    }

    #[test]
    fn learns_xor_with_two_attrs() {
        let schema = Schema::new(&[("a", AttrKind::Numeric), ("b", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..8 {
            for j in 0..8 {
                let (x, y) = (i as f64, j as f64);
                let label = if (x > 3.5) ^ (y > 2.5) { "odd" } else { "even" };
                b.push_classified(vec![num(x), num(y)], label);
            }
        }
        let d = b.build();
        let t = DecisionTree::fit(&d, C45Params { min_leaf: 2, ..Default::default() });
        // XOR needs depth ≥ 3 (root + one level per attribute).
        assert!(t.depth() >= 3);
        assert_eq!(t.predict_name(&[num(1.0), num(1.0)]), "even");
        assert_eq!(t.predict_name(&[num(6.0), num(1.0)]), "odd");
        assert_eq!(t.predict_name(&[num(1.0), num(6.0)]), "odd");
        assert_eq!(t.predict_name(&[num(1.0), num(1.0)]), "even");
        assert_eq!(t.predict_name(&[num(6.0), num(6.0)]), "even");
    }

    #[test]
    fn mixed_attributes() {
        let mut schema =
            Schema::new(&[("kind", AttrKind::Categorical), ("size", AttrKind::Numeric)]);
        let a = schema.intern(0, "a");
        let z = schema.intern(0, "z");
        let mut b = DatasetBuilder::new(schema);
        for i in 0..10 {
            // Class depends on kind only when size <= 5, else always "big".
            let size = i as f64;
            for (cat, lbl) in [(a, "small-a"), (z, "small-z")] {
                let label = if size > 5.0 { "big" } else { lbl };
                b.push_classified(vec![FeatureValue::Cat(cat), num(size)], label);
            }
        }
        let d = b.build();
        let t = DecisionTree::fit(&d, C45Params { min_leaf: 2, ..Default::default() });
        assert_eq!(t.predict_name(&[FeatureValue::Cat(a), num(2.0)]), "small-a");
        assert_eq!(t.predict_name(&[FeatureValue::Cat(z), num(2.0)]), "small-z");
        assert_eq!(t.predict_name(&[FeatureValue::Cat(a), num(9.0)]), "big");
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..10 {
            b.push_classified(vec![num(i as f64)], "only");
        }
        let t = DecisionTree::fit_default(&b.build());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.predict_name(&[num(42.0)]), "only");
    }

    #[test]
    fn min_leaf_prevents_overfitting_split() {
        let d = threshold_data();
        let t = DecisionTree::fit(&d, C45Params { min_leaf: 1000, ..Default::default() });
        assert_eq!(t.node_count(), 1, "node smaller than min_leaf stays a leaf");
    }

    #[test]
    fn unseen_category_falls_back_to_majority() {
        let mut schema = Schema::new(&[("c", AttrKind::Categorical)]);
        let a = schema.intern(0, "a");
        let bb = schema.intern(0, "b");
        let unseen = schema.intern(0, "unseen");
        let mut b = DatasetBuilder::new(schema);
        for _ in 0..6 {
            b.push_classified(vec![FeatureValue::Cat(a)], "A");
        }
        for _ in 0..4 {
            b.push_classified(vec![FeatureValue::Cat(bb)], "B");
        }
        let d = b.build();
        let t = DecisionTree::fit(&d, C45Params { min_leaf: 2, ..Default::default() });
        assert_eq!(t.predict_name(&[FeatureValue::Cat(unseen)]), "A", "majority fallback");
    }

    #[test]
    fn render_shows_splits_and_leaves() {
        let d = threshold_data();
        let t = DecisionTree::fit_default(&d);
        let text = t.render(&["x".to_string()], |_, _| unreachable!("no categorical attrs"));
        assert!(text.contains("x <= "), "{text}");
        assert!(text.contains("→ hi"), "{text}");
        assert!(text.contains("→ lo"), "{text}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let schema = Schema::new(&[("x", AttrKind::Numeric)]);
        DecisionTree::fit_default(&DatasetBuilder::new(schema).build());
    }
}
