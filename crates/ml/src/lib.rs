//! # quepa-ml — tree learners for the adaptive optimizer
//!
//! The paper's ADAPTIVE optimizer (§V) trains, with Weka:
//!
//! * `T1` — a **C4.5 decision tree** choosing the augmenter;
//! * `T2`–`T4` — **REPTree regression trees** choosing `BATCH_SIZE`,
//!   `THREADS_SIZE` and `CACHE_SIZE`.
//!
//! Weka is not available here, so this crate implements both learners from
//! scratch:
//!
//! * [`c45::DecisionTree`] — gain-ratio splits, multiway on categorical
//!   attributes, binary threshold splits on numeric attributes,
//!   pessimistic-style pre-pruning via minimum leaf size and gain floor;
//! * [`reptree::RegressionTree`] — variance-reduction splits and
//!   reduced-error pruning against a held-out fraction of the training
//!   data, exactly REPTree's recipe.
//!
//! [`dataset`] holds the shared feature/label representation,
//! [`eval`] the train/test utilities the experiments use, and
//! [`stream`] the bounded deterministic reservoir the online optimizer
//! retrains from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c45;
pub mod dataset;
pub mod eval;
pub mod reptree;
pub mod stream;

pub use c45::DecisionTree;
pub use dataset::{AttrKind, Dataset, DatasetBuilder, FeatureValue, Schema};
pub use reptree::RegressionTree;
pub use stream::Reservoir;
