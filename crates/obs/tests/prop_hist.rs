//! Property tests for the histogram algebra: merge must be associative
//! and commutative (the contract that lets shard- and store-level
//! snapshots collapse into one system view in any order), and bucketing
//! must respect its documented boundaries.

use proptest::prelude::*;
use quepa_obs::{bucket_index, bucket_upper_bound, HistogramSnapshot, LatencyHistogram};
use std::time::Duration;

/// Builds a snapshot from a batch of raw nanosecond observations.
fn snapshot_of(observations: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &n in observations {
        h.record(Duration::from_nanos(n));
    }
    h.snapshot()
}

/// Nanosecond values spread across the whole log2 range: small counts,
/// mid-range latencies and near-saturation values all get coverage.
fn nanos_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), 1u64..16, (0u32..64).prop_map(|shift| 1u64 << shift), any::<u64>(),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(xs in prop::collection::vec(nanos_strategy(), 0..50),
                            ys in prop::collection::vec(nanos_strategy(), 0..50)) {
        let (a, b) = (snapshot_of(&xs), snapshot_of(&ys));
        prop_assert_eq!(a.clone().merge(b.clone()), b.merge(a));
    }

    #[test]
    fn merge_is_associative(xs in prop::collection::vec(nanos_strategy(), 0..30),
                            ys in prop::collection::vec(nanos_strategy(), 0..30),
                            zs in prop::collection::vec(nanos_strategy(), 0..30)) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));
        prop_assert_eq!(
            a.clone().merge(b.clone()).merge(c.clone()),
            a.merge(b.merge(c))
        );
    }

    #[test]
    fn merge_of_split_equals_whole(xs in prop::collection::vec(nanos_strategy(), 0..60),
                                   split in 0usize..61) {
        // Recording a batch in two shards and merging must equal
        // recording it in one histogram — the property the sharded
        // augmenter workers rely on.
        let split = split.min(xs.len());
        let (left, right) = xs.split_at(split);
        prop_assert_eq!(
            snapshot_of(left).merge(snapshot_of(right)),
            snapshot_of(&xs)
        );
    }

    #[test]
    fn empty_is_identity(xs in prop::collection::vec(nanos_strategy(), 0..40)) {
        let a = snapshot_of(&xs);
        prop_assert_eq!(a.clone().merge(HistogramSnapshot::default()), a.clone());
        prop_assert_eq!(HistogramSnapshot::default().merge(a.clone()), a);
    }

    #[test]
    fn bucket_bounds_bracket_values(n in nanos_strategy()) {
        let i = bucket_index(n);
        prop_assert!(n <= bucket_upper_bound(i), "{n} over its bucket's upper bound");
        if i > 0 {
            prop_assert!(n > bucket_upper_bound(i - 1), "{n} fits the previous bucket too");
        }
    }
}
