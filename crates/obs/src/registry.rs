//! The metrics registry: one deterministic surface per [`Quepa`] instance.
//!
//! The registry is instance-scoped, not a process-global: every `Quepa`
//! owns one, so parallel test harness threads (or multiple deployed
//! instances in one process) never pollute each other's numbers. It holds
//!
//! * per-store recorders: a simulated-latency histogram, a backoff
//!   histogram and chaos/breaker counters;
//! * per-stage recorders: a simulated-latency histogram plus span/item
//!   counters, one per [`Stage`](crate::span::Stage);
//! * cache probe counters;
//! * a bounded wall-clock trace ring (human debugging only — never part
//!   of a snapshot, because wall time is not deterministic).
//!
//! [`MetricsSnapshot`] is the exported value: `Eq`, and mergeable with an
//! associative/commutative [`MetricsSnapshot::merge`] mirroring
//! `StatsSnapshot::merge`, so shard- or instance-level snapshots collapse
//! into one system view in any order.
//!
//! [`Quepa`]: ../../quepa_core/struct.Quepa.html

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::span::{Stage, TraceEvent};

/// Completed wall-clock spans kept for inspection; older spans fall off.
pub const TRACE_CAPACITY: usize = 256;

#[derive(Default)]
struct StoreRecorder {
    sim_latency: LatencyHistogram,
    backoff: LatencyHistogram,
    breaker_rejections: AtomicU64,
    faults: AtomicU64,
    pushdown_latency: LatencyHistogram,
    pushdown_chosen: AtomicU64,
    pushdown_declined: AtomicU64,
    pushdown_fallback: AtomicU64,
}

struct StageRecorder {
    sim_latency: LatencyHistogram,
    spans: AtomicU64,
    items: AtomicU64,
}

impl Default for StageRecorder {
    fn default() -> Self {
        StageRecorder {
            sim_latency: LatencyHistogram::new(),
            spans: AtomicU64::new(0),
            items: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct AdmissionRecorder {
    offered: AtomicU64,
    served: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
}

/// The live, thread-safe metrics sink (see the module docs).
pub struct MetricsRegistry {
    enabled: AtomicBool,
    stores: Mutex<BTreeMap<String, Arc<StoreRecorder>>>,
    stages: [StageRecorder; 6],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    admission: AdmissionRecorder,
    trace: Mutex<VecDeque<TraceEvent>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates a disabled registry (recording is a no-op until
    /// [`set_enabled`](Self::set_enabled)).
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(false),
            stores: Mutex::new(BTreeMap::new()),
            stages: Default::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            admission: AdmissionRecorder::default(),
            trace: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Already-recorded data is kept; use
    /// [`reset`](Self::reset) to discard it.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    fn store(&self, name: &str) -> Arc<StoreRecorder> {
        let mut stores = self.stores.lock();
        if let Some(r) = stores.get(name) {
            return Arc::clone(r);
        }
        let r = Arc::new(StoreRecorder::default());
        stores.insert(name.to_owned(), Arc::clone(&r));
        r
    }

    /// Records one simulated link event of cost `sim_cost` against `store`
    /// under `stage`. (Called via the facade; context installation already
    /// checked `is_enabled`.)
    pub fn record_link_event(&self, store: &str, stage: Stage, sim_cost: Duration) {
        self.store(store).sim_latency.record(sim_cost);
        self.stages[stage.index()].sim_latency.record(sim_cost);
    }

    /// Records one deterministic backoff pause against `store`, attributed
    /// to the retry stage.
    pub fn record_backoff(&self, store: &str, pause: Duration) {
        self.store(store).backoff.record(pause);
        self.stages[Stage::Retry.index()].sim_latency.record(pause);
    }

    /// Counts a call rejected by `store`'s open circuit breaker.
    pub fn record_breaker_rejection(&self, store: &str) {
        self.store(store).breaker_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one injected fault against `store`.
    pub fn record_fault(&self, store: &str) {
        self.store(store).faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one group the planner chose to execute as a pushdown
    /// against `store`.
    pub fn record_pushdown_chosen(&self, store: &str) {
        self.store(store).pushdown_chosen.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one group where `store`'s connector declined the filter
    /// (no native path; the engine fetched everything and filtered
    /// client-side).
    pub fn record_pushdown_declined(&self, store: &str) {
        self.store(store).pushdown_declined.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one chosen pushdown that errored on the wire and fell back
    /// to the fetch-all path against `store`.
    pub fn record_pushdown_fallback(&self, store: &str) {
        self.store(store).pushdown_fallback.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the simulated cost of one completed pushdown round trip
    /// against `store`. This is *in addition to* the link event the
    /// connector itself reports — a per-strategy view of the same wire,
    /// not a second account of it (only the link events sum to total
    /// simulated time).
    pub fn record_pushdown_latency(&self, store: &str, sim_cost: Duration) {
        self.store(store).pushdown_latency.record(sim_cost);
    }

    /// Counts one LRU cache probe.
    pub fn record_cache_probe(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one request offered to the serving front end (admission
    /// plane). Serving counters record unconditionally — like the
    /// resilience counters folded from the connectors, they exist exactly
    /// when a server fronts this instance, and the per-query determinism
    /// contract does not cover the network plane.
    pub fn record_admission_offered(&self) {
        self.admission.offered.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered by the execution path (degraded
    /// answers included — pass `degraded` to count both).
    pub fn record_admission_served(&self, degraded: bool) {
        self.admission.served.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.admission.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one request shed by admission control (answered with a
    /// structured OVERLOAD response, never executed).
    pub fn record_admission_shed(&self) {
        self.admission.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Files a completed wall-clock span: bumps the stage's deterministic
    /// span/item counters and appends to the trace ring.
    pub fn complete_span(&self, event: TraceEvent) {
        let stage = &self.stages[event.stage.index()];
        stage.spans.fetch_add(1, Ordering::Relaxed);
        stage.items.fetch_add(event.items, Ordering::Relaxed);
        let mut trace = self.trace.lock();
        if trace.len() == TRACE_CAPACITY {
            trace.pop_front();
        }
        trace.push_back(event);
    }

    /// Drains the wall-clock trace ring (oldest first).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.trace.lock().drain(..).collect()
    }

    /// Takes a point-in-time copy of the deterministic metrics. The trace
    /// ring is deliberately excluded: snapshots contain only seeded,
    /// simulated quantities and therefore compare `Eq` across runs.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stores = self
            .stores
            .lock()
            .iter()
            .map(|(name, r)| {
                (
                    name.clone(),
                    StoreMetrics {
                        sim_latency: r.sim_latency.snapshot(),
                        backoff: r.backoff.snapshot(),
                        breaker_rejections: r.breaker_rejections.load(Ordering::Relaxed),
                        faults: r.faults.load(Ordering::Relaxed),
                        retries: 0,
                        timeouts: 0,
                        breaker_trips: 0,
                        pushdown_latency: r.pushdown_latency.snapshot(),
                        pushdown_chosen: r.pushdown_chosen.load(Ordering::Relaxed),
                        pushdown_declined: r.pushdown_declined.load(Ordering::Relaxed),
                        pushdown_fallback: r.pushdown_fallback.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            stores,
            stages: std::array::from_fn(|i| StageMetrics {
                sim_latency: self.stages[i].sim_latency.snapshot(),
                spans: self.stages[i].spans.load(Ordering::Relaxed),
                items: self.stages[i].items.load(Ordering::Relaxed),
            }),
            cache: CacheMetrics {
                hits: self.cache_hits.load(Ordering::Relaxed),
                misses: self.cache_misses.load(Ordering::Relaxed),
            },
            admission: AdmissionMetrics {
                offered: self.admission.offered.load(Ordering::Relaxed),
                served: self.admission.served.load(Ordering::Relaxed),
                degraded: self.admission.degraded.load(Ordering::Relaxed),
                shed: self.admission.shed.load(Ordering::Relaxed),
            },
            index_shards: Vec::new(),
        }
    }

    /// Zeroes every recorder and empties the trace ring (the enabled flag
    /// is untouched).
    pub fn reset(&self) {
        self.stores.lock().clear();
        for stage in &self.stages {
            stage.sim_latency.reset();
            stage.spans.store(0, Ordering::Relaxed);
            stage.items.store(0, Ordering::Relaxed);
        }
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.admission.offered.store(0, Ordering::Relaxed);
        self.admission.served.store(0, Ordering::Relaxed);
        self.admission.degraded.store(0, Ordering::Relaxed);
        self.admission.shed.store(0, Ordering::Relaxed);
        self.trace.lock().clear();
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .field("stores", &self.stores.lock().len())
            .finish_non_exhaustive()
    }
}

/// Deterministic per-store metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreMetrics {
    /// Simulated link latency of every round trip (retried ones included).
    pub sim_latency: HistogramSnapshot,
    /// Deterministic backoff pauses before re-attempts.
    pub backoff: HistogramSnapshot,
    /// Calls rejected outright by an open circuit breaker.
    pub breaker_rejections: u64,
    /// Injected faults observed (chaos accounting).
    pub faults: u64,
    /// Retries performed, folded from `ConnectorStats` at snapshot time.
    pub retries: u64,
    /// Timeouts observed, folded from `ConnectorStats` at snapshot time.
    pub timeouts: u64,
    /// Closed→open breaker transitions, folded from `ConnectorStats`.
    pub breaker_trips: u64,
    /// Simulated cost of each completed pushdown round trip (a
    /// per-strategy view of link events already counted in
    /// `sim_latency`).
    pub pushdown_latency: HistogramSnapshot,
    /// Groups the planner executed as a pushdown against this store.
    pub pushdown_chosen: u64,
    /// Groups where the connector declined the filter.
    pub pushdown_declined: u64,
    /// Chosen pushdowns that errored and fell back to fetch-all.
    pub pushdown_fallback: u64,
}

impl StoreMetrics {
    /// Associative/commutative element-wise sum.
    pub fn merge(self, other: StoreMetrics) -> StoreMetrics {
        StoreMetrics {
            sim_latency: self.sim_latency.merge(other.sim_latency),
            backoff: self.backoff.merge(other.backoff),
            breaker_rejections: self.breaker_rejections.saturating_add(other.breaker_rejections),
            faults: self.faults.saturating_add(other.faults),
            retries: self.retries.saturating_add(other.retries),
            timeouts: self.timeouts.saturating_add(other.timeouts),
            breaker_trips: self.breaker_trips.saturating_add(other.breaker_trips),
            pushdown_latency: self.pushdown_latency.merge(other.pushdown_latency),
            pushdown_chosen: self.pushdown_chosen.saturating_add(other.pushdown_chosen),
            pushdown_declined: self.pushdown_declined.saturating_add(other.pushdown_declined),
            pushdown_fallback: self.pushdown_fallback.saturating_add(other.pushdown_fallback),
        }
    }
}

/// Deterministic per-stage metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageMetrics {
    /// Simulated time attributed to this stage.
    pub sim_latency: HistogramSnapshot,
    /// Completed spans.
    pub spans: u64,
    /// Work items the spans covered (keys planned, objects merged, …).
    pub items: u64,
}

impl StageMetrics {
    /// Associative/commutative element-wise sum.
    pub fn merge(self, other: StageMetrics) -> StageMetrics {
        StageMetrics {
            sim_latency: self.sim_latency.merge(other.sim_latency),
            spans: self.spans.saturating_add(other.spans),
            items: self.items.saturating_add(other.items),
        }
    }
}

/// LRU cache probe counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that went on to the polystore.
    pub misses: u64,
}

impl CacheMetrics {
    /// Associative/commutative element-wise sum.
    pub fn merge(self, other: CacheMetrics) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
        }
    }
}

/// Serving-plane admission counters: what the network front end did with
/// every request it received. `served + shed == offered` is the
/// accounting invariant the serving smoke test enforces; `degraded`
/// counts the subset of `served` answered under pressure (augmentation
/// suppressed, the `DegradeMode::Partial` shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionMetrics {
    /// Requests that reached admission control.
    pub offered: u64,
    /// Requests executed and answered (degraded ones included).
    pub served: u64,
    /// Served requests answered in degraded mode (no augmentation).
    pub degraded: u64,
    /// Requests shed with a structured OVERLOAD response.
    pub shed: u64,
}

impl AdmissionMetrics {
    /// Associative/commutative element-wise sum.
    pub fn merge(self, other: AdmissionMetrics) -> AdmissionMetrics {
        AdmissionMetrics {
            offered: self.offered.saturating_add(other.offered),
            served: self.served.saturating_add(other.served),
            degraded: self.degraded.saturating_add(other.degraded),
            shed: self.shed.saturating_add(other.shed),
        }
    }
}

/// Gauges of one A' index shard, folded in at snapshot time (the index
/// publishes these itself; the registry only carries them). Gauges, not
/// counters: they describe the projection's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexShardMetrics {
    /// Live nodes resident in the shard.
    pub entries: u64,
    /// Overlay entries layered over the packed base.
    pub overlay_depth: u64,
    /// Approximate bytes held by the shard's published snapshot.
    pub resident_bytes: u64,
    /// Times the shard's base was recompacted.
    pub compactions: u64,
    /// Times a new snapshot of the shard was published.
    pub swaps: u64,
}

impl IndexShardMetrics {
    /// Element-wise max — the merge for gauges (associative and
    /// commutative, unlike a sum, which would double state).
    pub fn merge(self, other: IndexShardMetrics) -> IndexShardMetrics {
        IndexShardMetrics {
            entries: self.entries.max(other.entries),
            overlay_depth: self.overlay_depth.max(other.overlay_depth),
            resident_bytes: self.resident_bytes.max(other.resident_bytes),
            compactions: self.compactions.max(other.compactions),
            swaps: self.swaps.max(other.swaps),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`] — the one metrics
/// surface. Contains only deterministic quantities: same seed + same
/// configuration ⇒ equal snapshots, regardless of thread interleaving.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Per-store metrics, keyed by store name (sorted).
    pub stores: BTreeMap<String, StoreMetrics>,
    /// Per-stage metrics, indexed by [`Stage::index`].
    pub stages: [StageMetrics; 6],
    /// Cache probe counts.
    pub cache: CacheMetrics,
    /// Serving-plane admission counters (all zero unless a network front
    /// end serves this instance).
    pub admission: AdmissionMetrics,
    /// Per-shard A' index gauges (position = shard number); empty unless
    /// the owning system folded them in.
    pub index_shards: Vec<IndexShardMetrics>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self == &MetricsSnapshot::default()
    }

    /// Associative/commutative merge (union of stores, element-wise sums),
    /// mirroring `StatsSnapshot::merge`.
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        for (name, metrics) in other.stores {
            let merged = match self.stores.remove(&name) {
                Some(mine) => mine.merge(metrics),
                None => metrics,
            };
            self.stores.insert(name, merged);
        }
        let mut incoming = other.stages.into_iter();
        self.stages = self.stages.map(|mine| mine.merge(incoming.next().expect("stage count")));
        self.cache = self.cache.merge(other.cache);
        self.admission = self.admission.merge(other.admission);
        if self.index_shards.len() < other.index_shards.len() {
            self.index_shards.resize(other.index_shards.len(), IndexShardMetrics::default());
        }
        for (mine, theirs) in self.index_shards.iter_mut().zip(other.index_shards) {
            *mine = mine.merge(theirs);
        }
        self
    }

    /// Folds one store's resilience counters (from `ConnectorStats`) into
    /// this snapshot, creating the store entry if the histograms never saw
    /// it. Zero counters fold to a no-op so disabled stores stay absent.
    pub fn fold_resilience(&mut self, store: &str, retries: u64, timeouts: u64, trips: u64) {
        if retries == 0 && timeouts == 0 && trips == 0 && !self.stores.contains_key(store) {
            return;
        }
        let entry = self.stores.entry(store.to_owned()).or_default();
        entry.retries = entry.retries.saturating_add(retries);
        entry.timeouts = entry.timeouts.saturating_add(timeouts);
        entry.breaker_trips = entry.breaker_trips.saturating_add(trips);
    }

    /// Total simulated nanoseconds across all stores.
    pub fn total_sim_nanos(&self) -> u64 {
        self.stores.values().fold(0u64, |acc, s| acc.saturating_add(s.sim_latency.sum_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, nanos: u64) -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.record_link_event(name, Stage::Fetch, Duration::from_nanos(nanos));
        r.record_backoff(name, Duration::from_nanos(nanos / 2));
        r.record_cache_probe(true);
        r.record_cache_probe(false);
        r.record_fault(name);
        r.snapshot()
    }

    #[test]
    fn snapshot_reflects_records() {
        let s = sample("kv", 1000);
        assert_eq!(s.stores["kv"].sim_latency.count, 1);
        assert_eq!(s.stores["kv"].backoff.count, 1);
        assert_eq!(s.stores["kv"].faults, 1);
        assert_eq!(s.stages[Stage::Fetch.index()].sim_latency.count, 1);
        assert_eq!(s.stages[Stage::Retry.index()].sim_latency.count, 1);
        assert_eq!(s.cache, CacheMetrics { hits: 1, misses: 1 });
        assert!(!s.is_empty());
        assert_eq!(s.total_sim_nanos(), 1000);
    }

    #[test]
    fn merge_unions_stores() {
        let a = sample("kv", 1000);
        let b = sample("sql", 2000);
        let m = a.clone().merge(b.clone());
        assert_eq!(m, b.merge(a), "merge is commutative");
        assert_eq!(m.stores.len(), 2);
        assert_eq!(m.cache, CacheMetrics { hits: 2, misses: 2 });
        assert_eq!(m.stages[Stage::Fetch.index()].sim_latency.count, 2);
    }

    #[test]
    fn merge_identity_and_associativity() {
        let (a, b, c) = (sample("kv", 10), sample("kv", 20), sample("sql", 30));
        assert_eq!(a.clone().merge(MetricsSnapshot::default()), a);
        assert_eq!(
            a.clone().merge(b.clone()).merge(c.clone()),
            a.merge(b.merge(c)),
            "merge is associative"
        );
    }

    #[test]
    fn fold_resilience_creates_or_updates() {
        let mut s = sample("kv", 1000);
        s.fold_resilience("kv", 3, 1, 0);
        s.fold_resilience("ghost", 0, 0, 0);
        s.fold_resilience("sql", 2, 0, 1);
        assert_eq!(s.stores["kv"].retries, 3);
        assert_eq!(s.stores["kv"].timeouts, 1);
        assert!(!s.stores.contains_key("ghost"), "all-zero fold stays absent");
        assert_eq!(s.stores["sql"].breaker_trips, 1);
        assert!(s.stores["sql"].sim_latency.is_empty());
    }

    #[test]
    fn admission_counters_record_merge_and_reset() {
        let r = MetricsRegistry::new();
        // Admission records even while the stage layer is disabled: the
        // serving plane is accounted unconditionally.
        assert!(!r.is_enabled());
        for _ in 0..5 {
            r.record_admission_offered();
        }
        r.record_admission_served(false);
        r.record_admission_served(true);
        r.record_admission_shed();
        let s = r.snapshot();
        assert_eq!(s.admission, AdmissionMetrics { offered: 5, served: 2, degraded: 1, shed: 1 });
        assert!(!s.is_empty());
        let m = s.admission.merge(AdmissionMetrics { offered: 1, served: 1, degraded: 0, shed: 0 });
        assert_eq!(m, AdmissionMetrics { offered: 6, served: 3, degraded: 1, shed: 1 });
        r.reset();
        assert_eq!(r.snapshot().admission, AdmissionMetrics::default());
    }

    #[test]
    fn pushdown_counters_record_merge_and_reset() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.record_pushdown_chosen("kv");
        r.record_pushdown_chosen("kv");
        r.record_pushdown_declined("kv");
        r.record_pushdown_fallback("kv");
        r.record_pushdown_latency("kv", Duration::from_nanos(640));
        let s = r.snapshot();
        assert_eq!(s.stores["kv"].pushdown_chosen, 2);
        assert_eq!(s.stores["kv"].pushdown_declined, 1);
        assert_eq!(s.stores["kv"].pushdown_fallback, 1);
        assert_eq!(s.stores["kv"].pushdown_latency.count, 1);
        assert_eq!(s.stores["kv"].pushdown_latency.sum_nanos, 640);
        assert!(!s.is_empty());
        let m = s.clone().merge(s.clone());
        assert_eq!(m.stores["kv"].pushdown_chosen, 4);
        assert_eq!(m.stores["kv"].pushdown_latency.count, 2);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn reset_restores_empty() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.record_link_event("kv", Stage::Fetch, Duration::from_nanos(5));
        r.complete_span(TraceEvent {
            stage: Stage::Merge,
            label: "m".into(),
            wall: Duration::ZERO,
            items: 1,
        });
        r.reset();
        assert!(r.snapshot().is_empty());
        assert!(r.take_trace().is_empty());
        assert!(r.is_enabled(), "reset keeps the enabled flag");
    }

    #[test]
    fn trace_ring_is_bounded() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        for i in 0..(TRACE_CAPACITY + 10) {
            r.complete_span(TraceEvent {
                stage: Stage::Fetch,
                label: format!("s{i}"),
                wall: Duration::ZERO,
                items: 0,
            });
        }
        let trace = r.take_trace();
        assert_eq!(trace.len(), TRACE_CAPACITY);
        assert_eq!(trace[0].label, "s10", "oldest spans fall off");
    }
}
