//! Metrics exporters: Prometheus text exposition and JSON.
//!
//! Both are hand-rolled over [`MetricsSnapshot`] — the offline build has
//! neither a Prometheus client crate nor serde, and the formats are small
//! enough that owning them is cheaper than stubbing a dependency.
//!
//! Histograms follow the Prometheus convention: cumulative `_bucket`
//! counts with inclusive-upper-bound `le` labels (our log2 bucket bounds,
//! in nanoseconds), a final `le="+Inf"` bucket, then `_sum` and `_count`.
//! Only bounds up to the highest populated bucket are emitted, which keeps
//! an idle store from printing 65 zero lines.

use std::fmt::Write as _;

use crate::hist::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::MetricsSnapshot;
use crate::span::Stage;

/// Escapes a Prometheus label value: backslash, double quote and newline
/// must be escaped per the text exposition format.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn prom_histogram(out: &mut String, metric: &str, labels: &str, h: &HistogramSnapshot) {
    let top = h.nonzero().last().map(|(i, _)| i).unwrap_or(0);
    let mut cumulative = 0u64;
    for i in 0..=top {
        cumulative = cumulative.saturating_add(h.buckets[i]);
        let _ = writeln!(
            out,
            "{metric}_bucket{{{labels},le=\"{}\"}} {cumulative}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", h.sum_nanos);
    let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count);
}

fn prom_counter_header(out: &mut String, metric: &str, help: &str) {
    let _ = writeln!(out, "# HELP {metric} {help}");
    let _ = writeln!(out, "# TYPE {metric} counter");
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    let _ =
        writeln!(out, "# HELP quepa_store_sim_latency_nanos Simulated link latency per store (ns)");
    let _ = writeln!(out, "# TYPE quepa_store_sim_latency_nanos histogram");
    for (name, store) in &snapshot.stores {
        if !store.sim_latency.is_empty() {
            let labels = format!("store=\"{}\"", escape_label(name));
            prom_histogram(&mut out, "quepa_store_sim_latency_nanos", &labels, &store.sim_latency);
        }
    }

    let _ = writeln!(
        out,
        "# HELP quepa_store_backoff_nanos Deterministic retry backoff pauses per store (ns)"
    );
    let _ = writeln!(out, "# TYPE quepa_store_backoff_nanos histogram");
    for (name, store) in &snapshot.stores {
        if !store.backoff.is_empty() {
            let labels = format!("store=\"{}\"", escape_label(name));
            prom_histogram(&mut out, "quepa_store_backoff_nanos", &labels, &store.backoff);
        }
    }

    let _ = writeln!(
        out,
        "# HELP quepa_store_pushdown_latency_nanos Simulated cost of pushdown round trips per store (ns)"
    );
    let _ = writeln!(out, "# TYPE quepa_store_pushdown_latency_nanos histogram");
    for (name, store) in &snapshot.stores {
        if !store.pushdown_latency.is_empty() {
            let labels = format!("store=\"{}\"", escape_label(name));
            prom_histogram(
                &mut out,
                "quepa_store_pushdown_latency_nanos",
                &labels,
                &store.pushdown_latency,
            );
        }
    }

    let _ = writeln!(
        out,
        "# HELP quepa_stage_sim_latency_nanos Simulated time attributed to each stage (ns)"
    );
    let _ = writeln!(out, "# TYPE quepa_stage_sim_latency_nanos histogram");
    for stage in Stage::ALL {
        let m = &snapshot.stages[stage.index()];
        if !m.sim_latency.is_empty() {
            let labels = format!("stage=\"{}\"", stage.name());
            prom_histogram(&mut out, "quepa_stage_sim_latency_nanos", &labels, &m.sim_latency);
        }
    }

    type StoreCounter = (&'static str, &'static str, fn(&crate::registry::StoreMetrics) -> u64);
    let counters: [StoreCounter; 8] = [
        ("quepa_store_retries_total", "Round-trip retries per store", |s| s.retries),
        ("quepa_store_timeouts_total", "Simulated timeouts per store", |s| s.timeouts),
        (
            "quepa_store_breaker_trips_total",
            "Closed-to-open circuit breaker transitions per store",
            |s| s.breaker_trips,
        ),
        (
            "quepa_store_breaker_rejections_total",
            "Calls rejected by an open circuit breaker per store",
            |s| s.breaker_rejections,
        ),
        ("quepa_store_faults_total", "Injected faults observed per store", |s| s.faults),
        (
            "quepa_pushdown_chosen_total",
            "Store groups the planner executed as a pushdown",
            |s| s.pushdown_chosen,
        ),
        (
            "quepa_pushdown_declined_total",
            "Store groups where the connector declined the filter",
            |s| s.pushdown_declined,
        ),
        (
            "quepa_pushdown_fallback_total",
            "Chosen pushdowns that errored and fell back to fetch-all",
            |s| s.pushdown_fallback,
        ),
    ];
    for (metric, help, get) in counters {
        prom_counter_header(&mut out, metric, help);
        for (name, store) in &snapshot.stores {
            let _ = writeln!(out, "{metric}{{store=\"{}\"}} {}", escape_label(name), get(store));
        }
    }

    prom_counter_header(&mut out, "quepa_stage_spans_total", "Completed spans per stage");
    for stage in Stage::ALL {
        let _ = writeln!(
            out,
            "quepa_stage_spans_total{{stage=\"{}\"}} {}",
            stage.name(),
            snapshot.stages[stage.index()].spans
        );
    }
    prom_counter_header(
        &mut out,
        "quepa_stage_items_total",
        "Work items covered by spans per stage",
    );
    for stage in Stage::ALL {
        let _ = writeln!(
            out,
            "quepa_stage_items_total{{stage=\"{}\"}} {}",
            stage.name(),
            snapshot.stages[stage.index()].items
        );
    }

    prom_counter_header(&mut out, "quepa_cache_hits_total", "LRU cache probe hits");
    let _ = writeln!(out, "quepa_cache_hits_total {}", snapshot.cache.hits);
    prom_counter_header(&mut out, "quepa_cache_misses_total", "LRU cache probe misses");
    let _ = writeln!(out, "quepa_cache_misses_total {}", snapshot.cache.misses);

    let admission: [(&str, &str, u64); 4] = [
        (
            "quepa_admission_offered_total",
            "Requests that reached the serving front end's admission control",
            snapshot.admission.offered,
        ),
        (
            "quepa_admission_served_total",
            "Requests executed and answered (degraded included)",
            snapshot.admission.served,
        ),
        (
            "quepa_admission_degraded_total",
            "Served requests answered in degraded mode (augmentation suppressed)",
            snapshot.admission.degraded,
        ),
        (
            "quepa_admission_shed_total",
            "Requests shed with a structured OVERLOAD response",
            snapshot.admission.shed,
        ),
    ];
    for (metric, help, value) in admission {
        prom_counter_header(&mut out, metric, help);
        let _ = writeln!(out, "{metric} {value}");
    }

    if !snapshot.index_shards.is_empty() {
        type ShardGauge =
            (&'static str, &'static str, fn(&crate::registry::IndexShardMetrics) -> u64);
        let gauges: [ShardGauge; 5] = [
            ("quepa_index_shard_entries", "Live A' index nodes per shard", |s| s.entries),
            (
                "quepa_index_shard_overlay_depth",
                "Delta-overlay entries over the packed base per shard",
                |s| s.overlay_depth,
            ),
            (
                "quepa_index_shard_resident_bytes",
                "Approximate bytes held by the shard's published snapshot",
                |s| s.resident_bytes,
            ),
            (
                "quepa_index_shard_compactions_total",
                "Times the shard's base was recompacted",
                |s| s.compactions,
            ),
            (
                "quepa_index_shard_swaps_total",
                "Times a new snapshot of the shard was published",
                |s| s.swaps,
            ),
        ];
        for (metric, help, get) in gauges {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for (shard, m) in snapshot.index_shards.iter().enumerate() {
                let _ = writeln!(out, "{metric}{{shard=\"{shard}\"}} {}", get(m));
            }
        }
    }

    out
}

fn json_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("{\"count\":");
    let _ = write!(out, "{}", h.count);
    out.push_str(",\"sum_nanos\":");
    let _ = write!(out, "{}", h.sum_nanos);
    out.push_str(",\"buckets\":{");
    let mut first = true;
    for (i, c) in h.nonzero() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", bucket_upper_bound(i), c);
    }
    out.push_str("}}");
}

/// Renders a snapshot as a single JSON object (histograms keyed by their
/// inclusive upper bound; empty buckets omitted).
pub fn json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"stores\":{");
    let mut first = true;
    for (name, store) in &snapshot.stores {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{{\"sim_latency\":", escape_json(name));
        json_histogram(&mut out, &store.sim_latency);
        out.push_str(",\"backoff\":");
        json_histogram(&mut out, &store.backoff);
        out.push_str(",\"pushdown_latency\":");
        json_histogram(&mut out, &store.pushdown_latency);
        let _ = write!(
            out,
            ",\"retries\":{},\"timeouts\":{},\"breaker_trips\":{},\"breaker_rejections\":{},\
             \"faults\":{},\"pushdown_chosen\":{},\"pushdown_declined\":{},\"pushdown_fallback\":{}}}",
            store.retries,
            store.timeouts,
            store.breaker_trips,
            store.breaker_rejections,
            store.faults,
            store.pushdown_chosen,
            store.pushdown_declined,
            store.pushdown_fallback
        );
    }
    out.push_str("},\"stages\":{");
    let mut first = true;
    for stage in Stage::ALL {
        let m = &snapshot.stages[stage.index()];
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{{\"sim_latency\":", stage.name());
        json_histogram(&mut out, &m.sim_latency);
        let _ = write!(out, ",\"spans\":{},\"items\":{}}}", m.spans, m.items);
    }
    let _ = write!(
        out,
        "}},\"cache\":{{\"hits\":{},\"misses\":{}}},\"admission\":{{\"offered\":{},\"served\":{},\"degraded\":{},\"shed\":{}}},\"index_shards\":[",
        snapshot.cache.hits,
        snapshot.cache.misses,
        snapshot.admission.offered,
        snapshot.admission.served,
        snapshot.admission.degraded,
        snapshot.admission.shed
    );
    let mut first = true;
    for m in &snapshot.index_shards {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"entries\":{},\"overlay_depth\":{},\"resident_bytes\":{},\"compactions\":{},\"swaps\":{}}}",
            m.entries, m.overlay_depth, m.resident_bytes, m.compactions, m.swaps
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    fn snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.record_link_event("kv", Stage::Fetch, Duration::from_nanos(3));
        r.record_link_event("kv", Stage::Fetch, Duration::from_nanos(5));
        r.record_backoff("kv", Duration::from_nanos(2));
        r.record_cache_probe(true);
        let mut s = r.snapshot();
        s.fold_resilience("kv", 1, 0, 0);
        s
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = prometheus_text(&snapshot());
        // 3 and 5 ns both land in bucket [4,7] (le="7"); cumulative counts
        // run 0,0,1,2 over le = 0,1,3,7.
        assert!(text.contains("quepa_store_sim_latency_nanos_bucket{store=\"kv\",le=\"3\"} 1"));
        assert!(text.contains("quepa_store_sim_latency_nanos_bucket{store=\"kv\",le=\"7\"} 2"));
        assert!(text.contains("quepa_store_sim_latency_nanos_bucket{store=\"kv\",le=\"+Inf\"} 2"));
        assert!(text.contains("quepa_store_sim_latency_nanos_sum{store=\"kv\"} 8"));
        assert!(text.contains("quepa_store_sim_latency_nanos_count{store=\"kv\"} 2"));
        assert!(text.contains("quepa_store_retries_total{store=\"kv\"} 1"));
        assert!(text.contains("quepa_cache_hits_total 1"));
        assert!(text.contains("# TYPE quepa_store_sim_latency_nanos histogram"));
        assert!(text.contains("quepa_admission_offered_total 0"));
    }

    #[test]
    fn admission_counters_export() {
        let r = MetricsRegistry::new();
        r.record_admission_offered();
        r.record_admission_offered();
        r.record_admission_served(true);
        r.record_admission_shed();
        let s = r.snapshot();
        let text = prometheus_text(&s);
        assert!(text.contains("quepa_admission_offered_total 2"), "{text}");
        assert!(text.contains("quepa_admission_served_total 1"), "{text}");
        assert!(text.contains("quepa_admission_degraded_total 1"), "{text}");
        assert!(text.contains("quepa_admission_shed_total 1"), "{text}");
        let j = json(&s);
        assert!(
            j.contains("\"admission\":{\"offered\":2,\"served\":1,\"degraded\":1,\"shed\":1}"),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "balanced braces in {j}");
    }

    #[test]
    fn pushdown_metrics_export() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.record_pushdown_chosen("sql");
        r.record_pushdown_chosen("sql");
        r.record_pushdown_declined("sql");
        r.record_pushdown_fallback("sql");
        r.record_pushdown_latency("sql", Duration::from_nanos(6));
        let s = r.snapshot();
        let text = prometheus_text(&s);
        assert!(text.contains("quepa_pushdown_chosen_total{store=\"sql\"} 2"), "{text}");
        assert!(text.contains("quepa_pushdown_declined_total{store=\"sql\"} 1"), "{text}");
        assert!(text.contains("quepa_pushdown_fallback_total{store=\"sql\"} 1"), "{text}");
        assert!(text.contains("# TYPE quepa_store_pushdown_latency_nanos histogram"), "{text}");
        assert!(text.contains("quepa_store_pushdown_latency_nanos_count{store=\"sql\"} 1"));
        assert!(text.contains("quepa_store_pushdown_latency_nanos_sum{store=\"sql\"} 6"));
        let j = json(&s);
        assert!(j.contains("\"pushdown_latency\":{\"count\":1,\"sum_nanos\":6"), "{j}");
        assert!(
            j.contains("\"pushdown_chosen\":2,\"pushdown_declined\":1,\"pushdown_fallback\":1"),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "balanced braces in {j}");
    }

    #[test]
    fn prometheus_escapes_store_labels() {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r.record_link_event("we\"ird\\name", Stage::Fetch, Duration::from_nanos(1));
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("store=\"we\\\"ird\\\\name\""));
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let s = snapshot();
        let text = json(&s);
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "balanced braces in {text}"
        );
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"kv\":{\"sim_latency\":{\"count\":2"));
        assert!(text.contains("\"retries\":1"));
        assert!(text.contains("\"cache\":{\"hits\":1,\"misses\":0}"));
        assert!(text.contains("\"fetch\":{\"sim_latency\":"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let empty = MetricsSnapshot::default();
        let text = prometheus_text(&empty);
        assert!(text.contains("quepa_cache_hits_total 0"));
        assert!(!text.contains("_bucket"), "no histogram series for an empty snapshot");
        assert!(!text.contains("quepa_index_shard"), "no shard gauges without a fold");
        let j = json(&empty);
        assert!(j.contains("\"stores\":{}"));
        assert!(j.contains("\"index_shards\":[]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn index_shard_gauges_export() {
        use crate::registry::IndexShardMetrics;
        let mut s = snapshot();
        s.index_shards = vec![
            IndexShardMetrics {
                entries: 7,
                overlay_depth: 2,
                resident_bytes: 4096,
                compactions: 1,
                swaps: 3,
            },
            IndexShardMetrics::default(),
        ];
        let text = prometheus_text(&s);
        assert!(text.contains("# TYPE quepa_index_shard_entries gauge"));
        assert!(text.contains("quepa_index_shard_entries{shard=\"0\"} 7"));
        assert!(text.contains("quepa_index_shard_entries{shard=\"1\"} 0"));
        assert!(text.contains("quepa_index_shard_resident_bytes{shard=\"0\"} 4096"));
        assert!(text.contains("quepa_index_shard_swaps_total{shard=\"0\"} 3"));
        let j = json(&s);
        assert!(j.contains(
            "\"index_shards\":[{\"entries\":7,\"overlay_depth\":2,\"resident_bytes\":4096,\
             \"compactions\":1,\"swaps\":3}"
        ));
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "balanced braces in {j}");
    }
}
