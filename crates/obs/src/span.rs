//! The tracing facade: stages, observation contexts and wall-clock spans.
//!
//! The facade follows the `log`/`tracing` dispatcher pattern, scoped per
//! instance instead of per process: a worker thread *installs* an
//! observation context (a registry handle plus the [`Stage`] it is
//! executing) and the leaf code — connectors, the retry executor, the
//! fault layer — reports events through free functions that read the
//! context from a thread-local. No context installed ⇒ every report is a
//! single thread-local read and a branch, which is what keeps the
//! disabled hot path within noise of the un-instrumented baseline.
//!
//! Two kinds of measurements flow through here, with different
//! determinism guarantees (see `DESIGN.md`, "Observability model"):
//!
//! * **deterministic metrics** — counts and *simulated* durations
//!   (closed-form link costs and backoff pauses). These land in the
//!   [`MetricsRegistry`](crate::registry::MetricsRegistry) and are
//!   bit-identical across same-seed runs;
//! * **wall-clock spans** — [`span`]/[`SpanGuard`] measure real elapsed
//!   time for humans chasing a slow augmentation. They land in the
//!   registry's bounded trace ring and are *excluded* from snapshots.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::registry::MetricsRegistry;

/// The stages of one augmented search, in execution order.
///
/// `Retry` is not a phase of its own: it is the slice of `Fetch` spent
/// re-attempting round trips (backoff pauses plus retried link costs),
/// split out so a chaos run shows *where* resilience spent its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// A' index traversal: computing the augmentation plan.
    Plan,
    /// LRU cache probes in front of the polystore.
    Cache,
    /// Key-based retrieval round trips against the stores.
    Fetch,
    /// Retried round trips and their backoff pauses.
    Retry,
    /// Shard merge and the final probability sort.
    Merge,
    /// Durable commit of index mutations: WAL append, store flush,
    /// apply, checkpoint-cut maintenance.
    Commit,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 6] =
        [Stage::Plan, Stage::Cache, Stage::Fetch, Stage::Retry, Stage::Merge, Stage::Commit];

    /// Stable position of this stage in [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case name used as the `stage` metric label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::Cache => "cache",
            Stage::Fetch => "fetch",
            Stage::Retry => "retry",
            Stage::Merge => "merge",
            Stage::Commit => "commit",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

struct Context {
    registry: Arc<MetricsRegistry>,
    stage: Stage,
}

thread_local! {
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// Installs an observation context on the current thread for the guard's
/// lifetime: leaf reports ([`record_link_event`], [`record_backoff`], …)
/// are attributed to `registry` under `stage`. Returns a no-op guard when
/// the registry is disabled, so callers can install unconditionally.
/// Nested installs save and restore the outer context.
pub fn observe(registry: &Arc<MetricsRegistry>, stage: Stage) -> ContextGuard {
    if !registry.is_enabled() {
        return ContextGuard { installed: false, prev: None };
    }
    let prev = CONTEXT.with(|c| c.replace(Some(Context { registry: Arc::clone(registry), stage })));
    ContextGuard { installed: true, prev }
}

/// Restores the previous observation context on drop.
pub struct ContextGuard {
    installed: bool,
    prev: Option<Context>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.installed {
            CONTEXT.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
}

/// Switches the installed context's stage for the guard's lifetime (the
/// retry executor flips `Fetch` → `Retry` around re-attempts). A no-op
/// when no context is installed.
pub fn enter_stage(stage: Stage) -> StageGuard {
    let prev = CONTEXT
        .with(|c| c.borrow_mut().as_mut().map(|ctx| std::mem::replace(&mut ctx.stage, stage)));
    StageGuard { prev }
}

/// Restores the previous stage on drop.
pub struct StageGuard {
    prev: Option<Stage>,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            CONTEXT.with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    ctx.stage = prev;
                }
            });
        }
    }
}

/// Runs `f` with the installed context, if any. The single branch every
/// unobserved call pays.
fn with_context<R>(f: impl FnOnce(&Context) -> R) -> Option<R> {
    CONTEXT.with(|c| c.borrow().as_ref().map(f))
}

/// Reports one simulated link event — a store round trip (or a faulted
/// call that still burned wire time) of cost `sim_cost` — against
/// `store` and the current stage.
pub fn record_link_event(store: &str, sim_cost: Duration) {
    with_context(|ctx| ctx.registry.record_link_event(store, ctx.stage, sim_cost));
}

/// Reports one deterministic retry backoff pause before re-attempting a
/// round trip against `store`. Always attributed to [`Stage::Retry`].
pub fn record_backoff(store: &str, pause: Duration) {
    with_context(|ctx| ctx.registry.record_backoff(store, pause));
}

/// Reports a call rejected by `store`'s open circuit breaker.
pub fn record_breaker_rejection(store: &str) {
    with_context(|ctx| ctx.registry.record_breaker_rejection(store));
}

/// Reports one injected fault against `store` (chaos accounting).
pub fn record_fault(store: &str) {
    with_context(|ctx| ctx.registry.record_fault(store));
}

/// Reports one LRU cache probe (attributed to [`Stage::Cache`]).
pub fn record_cache_probe(hit: bool) {
    with_context(|ctx| ctx.registry.record_cache_probe(hit));
}

/// Reports that the planner chose the pushdown strategy for one store
/// group against `store`.
pub fn record_pushdown_chosen(store: &str) {
    with_context(|ctx| ctx.registry.record_pushdown_chosen(store));
}

/// Reports that `store`'s connector declined a filter pushdown.
pub fn record_pushdown_declined(store: &str) {
    with_context(|ctx| ctx.registry.record_pushdown_declined(store));
}

/// Reports that a chosen pushdown errored and fell back to fetch-all
/// against `store`.
pub fn record_pushdown_fallback(store: &str) {
    with_context(|ctx| ctx.registry.record_pushdown_fallback(store));
}

/// Reports the simulated cost of one completed pushdown round trip
/// against `store` (in addition to the link event the connector
/// reports).
pub fn record_pushdown_latency(store: &str, sim_cost: Duration) {
    with_context(|ctx| ctx.registry.record_pushdown_latency(store, sim_cost));
}

/// One completed wall-clock span, as kept in the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The stage the span covered.
    pub stage: Stage,
    /// Free-form label (augmenter name, store name, …).
    pub label: String,
    /// Real elapsed wall time. **Not deterministic** — never folded into
    /// metrics snapshots.
    pub wall: Duration,
    /// Work items the span covered (keys planned, objects merged, …).
    pub items: u64,
}

/// Starts a wall-clock span against an explicit registry (used by code
/// that owns the registry, e.g. the augmenter engine). On drop the span
/// records a [`TraceEvent`] into the trace ring and bumps the stage's
/// span/item counters. Inert when the registry is disabled.
pub fn span_on(registry: &Arc<MetricsRegistry>, stage: Stage, label: &str) -> SpanGuard {
    if !registry.is_enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(SpanInner {
            registry: Arc::clone(registry),
            stage,
            label: label.to_owned(),
            start: Instant::now(),
            items: 0,
        }),
    }
}

struct SpanInner {
    registry: Arc<MetricsRegistry>,
    stage: Stage,
    label: String,
    start: Instant,
    items: u64,
}

/// Live span handle; completes on drop.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attributes `items` work items to this span (added to the stage's
    /// deterministic item counter when the span completes).
    pub fn add_items(&mut self, items: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.items += items;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let wall = inner.start.elapsed();
            inner.registry.complete_span(TraceEvent {
                stage: inner.stage,
                label: inner.label,
                wall,
                items: inner.items,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_registry() -> Arc<MetricsRegistry> {
        let r = Arc::new(MetricsRegistry::new());
        r.set_enabled(true);
        r
    }

    #[test]
    fn stage_names_and_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::Fetch.to_string(), "fetch");
    }

    #[test]
    fn no_context_means_no_records() {
        record_link_event("x", Duration::from_micros(1));
        record_cache_probe(true);
        // Nothing to assert against — the point is that this never panics
        // and costs one thread-local read.
    }

    #[test]
    fn context_attributes_to_stage() {
        let r = enabled_registry();
        {
            let _g = observe(&r, Stage::Fetch);
            record_link_event("s", Duration::from_micros(3));
            {
                let _retry = enter_stage(Stage::Retry);
                record_link_event("s", Duration::from_micros(5));
            }
            record_link_event("s", Duration::from_micros(3));
        }
        record_link_event("s", Duration::from_micros(100)); // outside: dropped
        let snap = r.snapshot();
        let store = &snap.stores["s"];
        assert_eq!(store.sim_latency.count, 3);
        assert_eq!(snap.stages[Stage::Fetch.index()].sim_latency.count, 2);
        assert_eq!(snap.stages[Stage::Retry.index()].sim_latency.count, 1);
    }

    #[test]
    fn disabled_registry_installs_nothing() {
        let r = Arc::new(MetricsRegistry::new());
        let _g = observe(&r, Stage::Fetch);
        record_link_event("s", Duration::from_micros(3));
        assert!(r.snapshot().stores.is_empty());
    }

    #[test]
    fn nested_contexts_restore() {
        let r1 = enabled_registry();
        let r2 = enabled_registry();
        let _a = observe(&r1, Stage::Fetch);
        {
            let _b = observe(&r2, Stage::Merge);
            record_link_event("s", Duration::from_micros(1));
        }
        record_link_event("s", Duration::from_micros(1));
        assert_eq!(r1.snapshot().stores["s"].sim_latency.count, 1);
        assert_eq!(r2.snapshot().stores["s"].sim_latency.count, 1);
        assert_eq!(r2.snapshot().stages[Stage::Merge.index()].sim_latency.count, 1);
    }

    #[test]
    fn spans_record_trace_and_counters() {
        let r = enabled_registry();
        {
            let mut span = span_on(&r, Stage::Plan, "traversal");
            span.add_items(42);
        }
        let snap = r.snapshot();
        assert_eq!(snap.stages[Stage::Plan.index()].spans, 1);
        assert_eq!(snap.stages[Stage::Plan.index()].items, 42);
        let trace = r.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].stage, Stage::Plan);
        assert_eq!(trace[0].label, "traversal");
        assert_eq!(trace[0].items, 42);
    }
}
