//! `quepa-obs`: the QUEPA observability layer.
//!
//! The paper evaluates QUEPA through per-stage timing breakdowns (plan /
//! fetch / merge costs across deployments, Figs. 10–13); this crate makes
//! those breakdowns first-class in the reproduction:
//!
//! * [`span`] — a dependency-free tracing facade. Worker threads install
//!   an observation context ([`observe`]) naming the [`Stage`] they are
//!   in; leaf code (connectors, the retry executor, the fault layer)
//!   reports events through free functions ([`record_link_event`] and
//!   friends) that read the context from a thread-local. Disabled cost is
//!   one thread-local read and a branch.
//! * [`hist`] — deterministic log2 latency histograms with an
//!   associative/commutative merge, fed exclusively from the simulated
//!   network clock so snapshots are bit-identical across same-seed runs.
//! * [`registry`] — the instance-scoped [`MetricsRegistry`] and its `Eq`
//!   [`MetricsSnapshot`], folding the resilience counters (retries /
//!   timeouts / breaker trips) into the same surface.
//! * [`export`] — Prometheus text exposition and JSON renderers, surfaced
//!   by the CLI `--metrics` flag and the `METRICS` command.
//!
//! See `DESIGN.md`, "Observability model", for the determinism contract.

#![forbid(unsafe_code)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod span;

pub use export::{escape_label, json, prometheus_text};
pub use hist::{bucket_index, bucket_upper_bound, HistogramSnapshot, LatencyHistogram};
pub use registry::{
    AdmissionMetrics, CacheMetrics, IndexShardMetrics, MetricsRegistry, MetricsSnapshot,
    StageMetrics, StoreMetrics, TRACE_CAPACITY,
};
pub use span::{
    enter_stage, observe, record_backoff, record_breaker_rejection, record_cache_probe,
    record_fault, record_link_event, record_pushdown_chosen, record_pushdown_declined,
    record_pushdown_fallback, record_pushdown_latency, span_on, ContextGuard, SpanGuard, Stage,
    StageGuard, TraceEvent,
};
