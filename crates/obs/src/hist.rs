//! Deterministic fixed-bucket (log2) latency histograms.
//!
//! Buckets are powers of two over nanoseconds, fixed at compile time, so
//! every recorder agrees on the boundaries and two histograms merge by
//! element-wise addition — associative and commutative like
//! `StatsSnapshot::merge`, which is what lets per-thread and per-store
//! histograms collapse into one system view in any order.
//!
//! Determinism contract: histograms are only ever fed **simulated**
//! durations (the closed-form link costs of `quepa_polystore::net`, the
//! closed-form retry backoff of `quepa_polystore::retry`), never wall
//! time. Same seed + same configuration ⇒ bit-identical snapshots,
//! whatever the thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one for exactly-zero plus one per power of two of
/// a `u64` nanosecond count.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a duration of `nanos` nanoseconds falls into.
///
/// * bucket 0 holds exactly-zero durations;
/// * bucket `i` (1 ≤ i ≤ 64) holds `[2^(i-1), 2^i − 1]` ns;
/// * `u64::MAX` (and anything ≥ 2^63) saturates into bucket 64.
pub fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        64 - nanos.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `index`, in nanoseconds.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Saturating nanosecond count of a duration (sub-584-year spans fit).
fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A thread-safe log2 latency histogram (atomic counters, no locks).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let nanos = saturating_nanos(d);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // The sum saturates rather than wrapping so merge stays monotone.
        self.sum_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(nanos)))
            .ok();
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observed nanoseconds.
    pub sum_nanos: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKET_COUNT], count: 0, sum_nanos: 0 }
    }
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Element-wise sum — associative and commutative, so shards merge in
    /// any order and grouping.
    pub fn merge(mut self, other: HistogramSnapshot) -> HistogramSnapshot {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self
    }

    /// `(bucket index, count)` pairs for the non-empty buckets, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// Upper bound (inclusive, nanoseconds) of the smallest bucket whose
    /// cumulative count reaches `q` (0.0–1.0) of all observations —
    /// a conservative quantile for human-readable summaries.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0, "zero has its own bucket");
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(u64::MAX), 64, "u64::MAX saturates into the last bucket");
        assert_eq!(bucket_index(1 << 63), 64);
    }

    #[test]
    fn bucket_bounds_cover_their_index() {
        for i in 0..BUCKET_COUNT {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper bound of {i} is in {i}");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_snapshot() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(3));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_nanos, 4);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.nonzero().collect::<Vec<_>>(), vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn huge_durations_saturate() {
        let h = LatencyHistogram::new();
        h.record(Duration::MAX);
        h.record(Duration::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.sum_nanos, u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn merge_adds_elementwise() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(5));
        let a = h.snapshot();
        let merged = a.clone().merge(a.clone());
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum_nanos, 10);
        assert_eq!(merged.buckets[bucket_index(5)], 2);
        assert_eq!(a.clone().merge(HistogramSnapshot::default()), a, "zero is the identity");
    }

    #[test]
    fn reset_zeroes() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_are_conservative() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_micros(100));
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), Some(bucket_upper_bound(bucket_index(100))));
        assert_eq!(s.quantile_upper_bound(1.0), Some(bucket_upper_bound(bucket_index(100_000))));
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), None);
    }
}
