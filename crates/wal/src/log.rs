//! The write-ahead log proper: CRC-framed records with monotonic LSNs.
//!
//! On-disk layout is a sequence of frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [lsn: u64 LE] [payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 over the LSN bytes followed by the payload, so a
//! frame whose length field was torn off cannot masquerade as valid.
//! LSNs are assigned contiguously starting at 1; the scanner requires
//! them strictly increasing and treats a duplicate or decreasing LSN as
//! hard corruption (a replayed or spliced log), never as recoverable.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32_concat;
use crate::op::IndexOp;

/// Log sequence number. `0` means "nothing logged yet"; real records
/// start at 1.
pub type Lsn = u64;

/// Frame header size: `len` + `crc` + `lsn`.
const FRAME_HEADER: usize = 4 + 4 + 8;

/// Guard against absurd length fields in damaged logs: no logical op
/// encodes anywhere near this size.
const MAX_PAYLOAD: u32 = 1 << 24;

/// When the log flushes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append — survives power loss.
    Always,
    /// Write without fsync — survives process crash (the OS holds the
    /// pages), not power loss. The simulation harness uses this: its
    /// crashes are modeled as file truncation, so fsync latency would
    /// only slow the suite down.
    Buffered,
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error, with the path it happened on.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The log (or a checkpoint) is damaged in a way recovery must not
    /// paper over.
    Corrupt {
        /// The file that is damaged.
        path: PathBuf,
        /// Byte offset of the damaged frame (0 for whole-file damage).
        offset: u64,
        /// What is wrong.
        message: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal i/o error on {}: {source}", path.display())
            }
            WalError::Corrupt { path, offset, message } => write!(
                f,
                "wal corruption in {} at byte {offset}: {message} \
                 (mid-log damage is not recoverable; restore from checkpoints or a replica)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Corrupt { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> WalError {
    WalError::Io { path: path.to_path_buf(), source }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The logical operation it carries.
    pub op: IndexOp,
}

/// What the scanner found at the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly at a frame boundary.
    Clean,
    /// The final frame was torn (short, or its CRC fails) — the normal
    /// signature of a crash mid-append. Recovery truncates it.
    TornTruncated {
        /// Bytes dropped from the tail.
        dropped_bytes: u64,
    },
}

/// The result of scanning a log file.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Every valid record, in LSN order.
    pub records: Vec<WalRecord>,
    /// Whether the tail was clean or torn.
    pub tail: TailStatus,
    /// Length of the valid prefix in bytes (the truncation point).
    pub valid_len: u64,
}

/// Scans raw log bytes. Tail damage (a final frame that is short or
/// fails its CRC) is reported as [`TailStatus::TornTruncated`]; damage
/// anywhere before the final frame is a hard [`WalError::Corrupt`].
pub fn scan_bytes(bytes: &[u8], path: &Path) -> Result<ScanOutcome, WalError> {
    let total = bytes.len() as u64;
    let mut records = Vec::new();
    let mut offset = 0u64;
    let mut last_lsn: Lsn = 0;
    loop {
        let rest = &bytes[offset as usize..];
        if rest.is_empty() {
            return Ok(ScanOutcome { records, tail: TailStatus::Clean, valid_len: offset });
        }
        let torn = |records: Vec<WalRecord>| {
            Ok(ScanOutcome {
                records,
                tail: TailStatus::TornTruncated { dropped_bytes: total - offset },
                valid_len: offset,
            })
        };
        if rest.len() < FRAME_HEADER {
            return torn(records);
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let lsn_bytes: [u8; 8] = rest[8..16].try_into().expect("8 bytes");
        let lsn = u64::from_le_bytes(lsn_bytes);
        if len > MAX_PAYLOAD || (rest.len() - FRAME_HEADER) < len as usize {
            // The length field runs past EOF (or is garbage): only
            // acceptable as a torn final frame.
            return torn(records);
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len as usize];
        let frame_end = offset + (FRAME_HEADER + len as usize) as u64;
        if crc32_concat(&[&lsn_bytes, payload]) != crc {
            if frame_end == total {
                // Bit-flip or short write in the final frame: torn tail.
                return torn(records);
            }
            return Err(WalError::Corrupt {
                path: path.to_path_buf(),
                offset,
                message: format!("CRC mismatch in record lsn={lsn} before the log tail"),
            });
        }
        // Past the CRC the frame is authentic, so structural problems
        // are writer bugs or splices — hard errors even at the tail.
        if lsn <= last_lsn {
            return Err(WalError::Corrupt {
                path: path.to_path_buf(),
                offset,
                message: format!(
                    "non-monotonic LSN: record lsn={lsn} after lsn={last_lsn} \
                     (duplicate or out-of-order replay)"
                ),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|_| WalError::Corrupt {
            path: path.to_path_buf(),
            offset,
            message: format!("record lsn={lsn} payload is not UTF-8"),
        })?;
        let op = IndexOp::decode(text).map_err(|m| WalError::Corrupt {
            path: path.to_path_buf(),
            offset,
            message: format!("record lsn={lsn} payload does not decode: {m}"),
        })?;
        last_lsn = lsn;
        records.push(WalRecord { lsn, op });
        offset = frame_end;
    }
}

fn encode_frame(lsn: Lsn, op: &IndexOp, out: &mut Vec<u8>) {
    let payload = op.encode();
    let payload = payload.as_bytes();
    let lsn_bytes = lsn.to_le_bytes();
    let crc = crc32_concat(&[&lsn_bytes, payload]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&lsn_bytes);
    out.extend_from_slice(payload);
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    sync: SyncPolicy,
    next_lsn: Lsn,
}

impl Wal {
    /// Opens (or creates) the log at `path`, scanning whatever is
    /// already there. A torn tail is truncated off the file before the
    /// log is positioned for appending; mid-log corruption aborts the
    /// open. Returns the scan so callers can replay.
    pub fn open(path: &Path, sync: SyncPolicy) -> Result<(Wal, ScanOutcome), WalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, e)),
        };
        let outcome = scan_bytes(&bytes, path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        if matches!(outcome.tail, TailStatus::TornTruncated { .. }) {
            file.set_len(outcome.valid_len).map_err(|e| io_err(path, e))?;
            file.sync_data().map_err(|e| io_err(path, e))?;
        }
        file.seek(SeekFrom::Start(outcome.valid_len)).map_err(|e| io_err(path, e))?;
        let next_lsn = outcome.records.last().map(|r| r.lsn + 1).unwrap_or(1);
        Ok((Wal { file, path: path.to_path_buf(), sync, next_lsn }, outcome))
    }

    /// The LSN of the last appended record (`0` if none yet).
    pub fn last_lsn(&self) -> Lsn {
        self.next_lsn - 1
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `ops` as consecutive records in one write (one fsync
    /// under [`SyncPolicy::Always`]) and returns the last assigned LSN.
    /// The caller applies the ops to the in-memory index only after
    /// this returns — write-ahead, then apply.
    pub fn append(&mut self, ops: &[IndexOp]) -> Result<Lsn, WalError> {
        if ops.is_empty() {
            return Ok(self.last_lsn());
        }
        let mut buf = Vec::with_capacity(ops.len() * 64);
        for op in ops {
            encode_frame(self.next_lsn, op, &mut buf);
            self.next_lsn += 1;
        }
        self.file.write_all(&buf).map_err(|e| io_err(&self.path, e))?;
        if self.sync == SyncPolicy::Always {
            self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        }
        Ok(self.last_lsn())
    }

    /// Ensures the next assigned LSN is strictly greater than `lsn`.
    /// Recovery calls this with the checkpoint cut's LSN: a truncated
    /// (possibly empty) log reopened after a restart must never
    /// re-issue LSNs a cut already covers — such records would be
    /// filtered out as "already checkpointed" by the next recovery and
    /// silently lost.
    pub fn advance_past(&mut self, lsn: Lsn) {
        self.next_lsn = self.next_lsn.max(lsn + 1);
    }

    /// Forces buffered writes to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }

    /// Drops every record with `lsn <= upto` (they are covered by
    /// checkpoints) by atomically rewriting the file with the tail
    /// only. LSN assignment continues where it left off.
    pub fn truncate_upto(&mut self, upto: Lsn) -> Result<(), WalError> {
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&self.path, e))?;
        self.file.read_to_end(&mut bytes).map_err(|e| io_err(&self.path, e))?;
        let outcome = scan_bytes(&bytes, &self.path)?;
        let mut buf = Vec::new();
        for record in outcome.records.iter().filter(|r| r.lsn > upto) {
            encode_frame(record.lsn, &record.op, &mut buf);
        }
        let tmp = self.path.with_extension("wal.tmp");
        std::fs::write(&tmp, &buf).map_err(|e| io_err(&tmp, e))?;
        let tmp_file = File::open(&tmp).map_err(|e| io_err(&tmp, e))?;
        tmp_file.sync_data().map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(&self.path, e))?;
        self.file = file;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::Probability;

    fn k(s: &str) -> quepa_pdm::GlobalKey {
        s.parse().unwrap()
    }

    fn sample_ops(n: usize) -> Vec<IndexOp> {
        (0..n)
            .map(|i| IndexOp::InsertIdentity {
                a: k(&format!("db0.c.a{i}")),
                b: k(&format!("db1.c.b{i}")),
                p: Probability::of(0.5 + 0.001 * (i % 100) as f64),
            })
            .collect()
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("quepa-wal-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Byte offsets where each frame starts (trusting the len fields).
    fn frame_starts(bytes: &[u8]) -> Vec<usize> {
        let mut starts = Vec::new();
        let mut offset = 0;
        while offset + FRAME_HEADER <= bytes.len() {
            starts.push(offset);
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
            offset += FRAME_HEADER + len as usize;
        }
        starts
    }

    fn write_log(path: &Path, ops: &[IndexOp]) {
        let (mut wal, _) = Wal::open(path, SyncPolicy::Buffered).unwrap();
        for op in ops {
            wal.append(std::slice::from_ref(op)).unwrap();
        }
    }

    #[test]
    fn roundtrip_and_reopen_append() {
        let tmp = TempDir::new("roundtrip");
        let path = tmp.path("quepa.wal");
        let ops = sample_ops(5);
        let (mut wal, scan) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.append(&ops[..3]).unwrap(), 3);
        drop(wal);
        let (mut wal, scan) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(wal.last_lsn(), 3);
        assert_eq!(wal.append(&ops[3..]).unwrap(), 5);
        let (_, scan) = Wal::open(&path, SyncPolicy::Always).unwrap();
        let got: Vec<_> = scan.records.iter().map(|r| r.op.clone()).collect();
        assert_eq!(got, ops);
        assert_eq!(scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn truncated_final_record_is_recovered() {
        let tmp = TempDir::new("torn");
        let path = tmp.path("quepa.wal");
        write_log(&path, &sample_ops(3));
        let full = std::fs::read(&path).unwrap();
        // Tear the final record: keep its header plus half the payload.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (wal, scan) = Wal::open(&path, SyncPolicy::Buffered).unwrap();
        assert!(
            matches!(scan.tail, TailStatus::TornTruncated { dropped_bytes } if dropped_bytes > 0)
        );
        assert_eq!(scan.records.len(), 2);
        assert_eq!(wal.last_lsn(), 2);
        // The torn bytes are physically gone after open.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), scan.valid_len);
    }

    #[test]
    fn bit_flip_in_final_record_is_torn_tail() {
        let tmp = TempDir::new("flip-tail");
        let path = tmp.path("quepa.wal");
        write_log(&path, &sample_ops(3));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = Wal::open(&path, SyncPolicy::Buffered).unwrap();
        assert!(matches!(scan.tail, TailStatus::TornTruncated { .. }));
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn bit_flip_mid_log_is_hard_corruption() {
        let tmp = TempDir::new("flip-mid");
        let path = tmp.path("quepa.wal");
        write_log(&path, &sample_ops(3));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record.
        let frame = frame_starts(&bytes)[1];
        bytes[frame + FRAME_HEADER + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path, SyncPolicy::Buffered).unwrap_err();
        match err {
            WalError::Corrupt { offset, ref message, .. } => {
                assert_eq!(offset, frame as u64);
                assert!(message.contains("CRC mismatch"), "message: {message}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_lsn_is_hard_corruption() {
        let tmp = TempDir::new("dup-lsn");
        let path = tmp.path("quepa.wal");
        let ops = sample_ops(2);
        let mut bytes = Vec::new();
        encode_frame(1, &ops[0], &mut bytes);
        encode_frame(1, &ops[1], &mut bytes); // duplicate LSN
        encode_frame(2, &ops[1], &mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path, SyncPolicy::Buffered).unwrap_err();
        match err {
            WalError::Corrupt { ref message, .. } => {
                assert!(message.contains("non-monotonic LSN"), "message: {message}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn decreasing_lsn_is_hard_corruption() {
        let tmp = TempDir::new("dec-lsn");
        let path = tmp.path("quepa.wal");
        let ops = sample_ops(2);
        let mut bytes = Vec::new();
        encode_frame(5, &ops[0], &mut bytes);
        encode_frame(3, &ops[1], &mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::open(&path, SyncPolicy::Buffered), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn truncate_upto_keeps_tail_and_lsn_sequence() {
        let tmp = TempDir::new("truncate");
        let path = tmp.path("quepa.wal");
        let ops = sample_ops(6);
        let (mut wal, _) = Wal::open(&path, SyncPolicy::Buffered).unwrap();
        wal.append(&ops).unwrap();
        wal.truncate_upto(4).unwrap();
        assert_eq!(wal.last_lsn(), 6);
        wal.append(&sample_ops(1)).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, SyncPolicy::Buffered).unwrap();
        assert_eq!(scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn torn_header_shorter_than_frame_is_recovered() {
        let tmp = TempDir::new("short-header");
        let path = tmp.path("quepa.wal");
        write_log(&path, &sample_ops(2));
        let full = std::fs::read(&path).unwrap();
        // Cut inside record 2's header.
        let cut = frame_starts(&full)[1] + 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (_, scan) = Wal::open(&path, SyncPolicy::Buffered).unwrap();
        assert!(matches!(scan.tail, TailStatus::TornTruncated { dropped_bytes: 7 }));
        assert_eq!(scan.records.len(), 1);
    }
}
