//! Consistent-cut checkpoints of the sharded A' projection.
//!
//! A checkpoint is a **cut**: a directory `ckpt-<lsn>` holding one file
//! per shard, all describing the index state at the *same* LSN. Cuts
//! must be consistent because logical WAL records are not confined to
//! one shard — an insert materializes inferred edges across shards, and
//! its probability products compound stored values, so replaying a
//! record against a mix of shard states from different LSNs produces
//! answers that differ from the never-crashed execution in the last
//! bits of derived probabilities (this crate's recovery property test
//! fails visibly if you try). Recovery therefore loads exactly one cut
//! and replays strictly past its LSN.
//!
//! Cuts are still **incremental**: a new cut re-serializes only the
//! shards dirtied since the previous cut and copies the untouched
//! shards' files from it — a compaction-triggered cut rewrites exactly
//! the compacted shard. The cut is assembled in a `.tmp` directory and
//! committed with an atomic rename; older cuts are removed only after
//! the commit, so a crash mid-checkpoint always leaves a complete
//! previous cut behind.
//!
//! Each shard file:
//!
//! ```text
//! quepa-ckpt v1
//! shard <i>
//! lsn <serialized-at>
//! crc <crc32 of the body, hex>
//! node <key>
//! edge <kind> <origin> <p> <a> <b>
//! ```
//!
//! A copied file keeps its original `lsn` stamp (when the shard content
//! was last serialized); the cut's own LSN lives in the directory name
//! and is what recovery replays from. Lineage is flattened like the
//! serial format: inferred edges reload as direct.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use quepa_aindex::serial::unescape;
use quepa_aindex::{AIndex, EdgeOrigin, SHARD_COUNT};
use quepa_pdm::{GlobalKey, Probability, RelationKind};

use crate::crc::crc32;
use crate::log::{Lsn, WalError};

const HEADER: &str = "quepa-ckpt v1";
const CUT_PREFIX: &str = "ckpt-";

/// A loaded shard checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Which shard this covers.
    pub shard: usize,
    /// The LSN at which this shard's content was serialized (≤ the
    /// owning cut's LSN; the shard had no changes in between).
    pub lsn: Lsn,
    /// `node`/`edge` lines (the shard's serialized live state).
    pub body: String,
}

/// The shard file inside a cut directory.
pub fn checkpoint_path(cut_dir: &Path, shard: usize) -> PathBuf {
    cut_dir.join(format!("shard-{shard:02}.ckpt"))
}

fn cut_dir_name(lsn: Lsn) -> String {
    format!("{CUT_PREFIX}{lsn:020}")
}

fn io_err(path: &Path, source: std::io::Error) -> WalError {
    WalError::Io { path: path.to_path_buf(), source }
}

/// The newest committed cut in `dir`, as `(cut lsn, cut directory)`.
pub fn latest_cut(dir: &Path) -> Result<Option<(Lsn, PathBuf)>, WalError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(dir, e)),
    };
    let mut best: Option<(Lsn, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(raw) = name.strip_prefix(CUT_PREFIX) else { continue };
        if raw.ends_with(".tmp") {
            continue; // an uncommitted cut a crash left behind
        }
        let Ok(lsn) = raw.parse::<Lsn>() else { continue };
        if best.as_ref().map(|(b, _)| lsn > *b).unwrap_or(true) {
            best = Some((lsn, entry.path()));
        }
    }
    Ok(best)
}

/// Writes one shard file into a cut directory under assembly.
pub fn write_shard_file(
    cut_dir: &Path,
    shard: usize,
    lsn: Lsn,
    body: &str,
) -> Result<(), WalError> {
    let path = checkpoint_path(cut_dir, shard);
    let content =
        format!("{HEADER}\nshard {shard}\nlsn {lsn}\ncrc {:08x}\n{body}", crc32(body.as_bytes()));
    let mut file = std::fs::File::create(&path).map_err(|e| io_err(&path, e))?;
    file.write_all(content.as_bytes()).map_err(|e| io_err(&path, e))?;
    file.sync_data().map_err(|e| io_err(&path, e))?;
    Ok(())
}

/// Writes a consistent cut at `lsn`. For each shard, `shard_body`
/// returns `Some(body)` to serialize fresh content or `None` to reuse
/// the shard's file from the previous cut (sound only when the shard
/// had no changes since — the caller tracks dirtiness). Commits by
/// renaming the assembly directory into place, then garbage-collects
/// older cuts. Returns the committed cut directory.
pub fn write_cut<F>(dir: &Path, lsn: Lsn, mut shard_body: F) -> Result<PathBuf, WalError>
where
    F: FnMut(usize) -> Option<String>,
{
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let previous = latest_cut(dir)?;
    let tmp = dir.join(format!("{}.tmp", cut_dir_name(lsn)));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).map_err(|e| io_err(&tmp, e))?;
    for shard in 0..SHARD_COUNT {
        match shard_body(shard) {
            Some(body) => write_shard_file(&tmp, shard, lsn, &body)?,
            None => {
                let (_, prev_dir) = previous.as_ref().ok_or_else(|| WalError::Corrupt {
                    path: tmp.clone(),
                    offset: 0,
                    message: format!(
                        "cut at lsn {lsn} reuses shard {shard} but there is no previous cut"
                    ),
                })?;
                let from = checkpoint_path(prev_dir, shard);
                let to = checkpoint_path(&tmp, shard);
                std::fs::copy(&from, &to).map_err(|e| io_err(&from, e))?;
            }
        }
    }
    let committed = dir.join(cut_dir_name(lsn));
    let _ = std::fs::remove_dir_all(&committed);
    std::fs::rename(&tmp, &committed).map_err(|e| io_err(&committed, e))?;
    // GC: older cuts and stale assemblies are now superseded.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(CUT_PREFIX) && name != cut_dir_name(lsn) {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
    Ok(committed)
}

/// Loads one shard file from a cut directory. A missing or damaged
/// file in a committed cut is a hard error — recovering without it
/// would resurrect deleted objects.
pub fn load_checkpoint(cut_dir: &Path, shard: usize) -> Result<Checkpoint, WalError> {
    let path = checkpoint_path(cut_dir, shard);
    let corrupt = |message: String| WalError::Corrupt { path: path.clone(), offset: 0, message };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(corrupt(format!("committed cut is missing shard {shard}")));
        }
        Err(e) => return Err(io_err(&path, e)),
    };
    let mut lines = text.splitn(5, '\n');
    match lines.next() {
        Some(h) if h == HEADER => {}
        other => return Err(corrupt(format!("bad checkpoint header {other:?}"))),
    }
    let field = |lines: &mut std::str::SplitN<'_, char>, tag: &str| -> Result<String, WalError> {
        let line = lines.next().ok_or_else(|| corrupt(format!("missing {tag} line")))?;
        line.strip_prefix(tag)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_owned)
            .ok_or_else(|| corrupt(format!("expected `{tag} …`, got {line:?}")))
    };
    let found_shard: usize =
        field(&mut lines, "shard")?.parse().map_err(|_| corrupt("bad shard number".into()))?;
    if found_shard != shard {
        return Err(corrupt(format!("file names shard {found_shard}, expected {shard}")));
    }
    let lsn: Lsn = field(&mut lines, "lsn")?.parse().map_err(|_| corrupt("bad lsn".into()))?;
    let crc = u32::from_str_radix(&field(&mut lines, "crc")?, 16)
        .map_err(|_| corrupt("bad crc field".into()))?;
    let body = lines.next().unwrap_or("").to_owned();
    if crc32(body.as_bytes()) != crc {
        return Err(corrupt(format!("checkpoint body CRC mismatch (shard {shard}, lsn {lsn})")));
    }
    Ok(Checkpoint { shard, lsn, body })
}

/// Applies a checkpoint body to an index under construction, returning
/// how many lines were applied. Raw insertion keeps probabilities
/// bit-exact; each cross-shard edge appears in both endpoints' files
/// and re-applies idempotently.
pub fn apply_body(body: &str, index: &mut AIndex) -> Result<usize, String> {
    let mut applied = 0;
    for (i, line) in body.lines().enumerate() {
        let bad = |message: String| format!("checkpoint body line {}: {message}", i + 1);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(' ');
        match parts.next() {
            Some("node") => {
                let raw = parts.next().ok_or_else(|| bad("node needs a key".into()))?;
                let key: GlobalKey = unescape(raw)
                    .map_err(|m| bad(m.to_string()))?
                    .parse()
                    .map_err(|e: quepa_pdm::PdmError| bad(e.to_string()))?;
                index.ensure_node(&key);
            }
            Some("edge") => {
                let kind = match parts.next() {
                    Some("id") => RelationKind::Identity,
                    Some("match") => RelationKind::Matching,
                    other => return Err(bad(format!("bad edge kind {other:?}"))),
                };
                let origin = match parts.next() {
                    Some("direct" | "inferred") => EdgeOrigin::Direct,
                    Some("promoted") => EdgeOrigin::Promoted,
                    other => return Err(bad(format!("bad edge origin {other:?}"))),
                };
                let p: f64 = parts
                    .next()
                    .ok_or_else(|| bad("edge needs a probability".into()))?
                    .parse()
                    .map_err(|_| bad("bad probability".into()))?;
                let p = Probability::new(p).map_err(|e| bad(e.to_string()))?;
                let mut key = |tag: &str| -> Result<GlobalKey, String> {
                    unescape(parts.next().ok_or_else(|| bad(format!("edge needs {tag}")))?)
                        .map_err(|m| bad(m.to_string()))?
                        .parse()
                        .map_err(|e: quepa_pdm::PdmError| bad(e.to_string()))
                };
                let a = key("key a")?;
                let b = key("key b")?;
                index.insert_raw(&a, &b, kind, p, origin);
            }
            other => return Err(bad(format!("expected node|edge, got {other:?}"))),
        }
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("quepa-ckpt-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn trivial_cut(dir: &Path, lsn: Lsn, marker: &str) -> PathBuf {
        write_cut(dir, lsn, |shard| {
            Some(if shard == 0 { format!("node {marker}.c.1\n") } else { String::new() })
        })
        .unwrap()
    }

    #[test]
    fn cut_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let cut = trivial_cut(&tmp.0, 17, "a");
        let (lsn, dir) = latest_cut(&tmp.0).unwrap().unwrap();
        assert_eq!(lsn, 17);
        assert_eq!(dir, cut);
        let ckpt = load_checkpoint(&cut, 0).unwrap();
        assert_eq!((ckpt.shard, ckpt.lsn), (0, 17));
        let mut ix = AIndex::new();
        assert_eq!(apply_body(&ckpt.body, &mut ix).unwrap(), 1);
        assert!(ix.contains(&"a.c.1".parse().unwrap()));
    }

    #[test]
    fn newer_cut_supersedes_and_gc_runs() {
        let tmp = TempDir::new("supersede");
        let old = trivial_cut(&tmp.0, 5, "a");
        let _new = trivial_cut(&tmp.0, 9, "b");
        let (lsn, dir) = latest_cut(&tmp.0).unwrap().unwrap();
        assert_eq!(lsn, 9);
        assert!(!old.exists(), "older cut must be garbage-collected");
        let ckpt = load_checkpoint(&dir, 0).unwrap();
        assert!(ckpt.body.contains("b.c.1"));
    }

    #[test]
    fn reused_shard_is_copied_from_previous_cut() {
        let tmp = TempDir::new("reuse");
        trivial_cut(&tmp.0, 3, "a");
        let cut = write_cut(&tmp.0, 8, |shard| (shard != 0).then(String::new)).unwrap();
        let ckpt = load_checkpoint(&cut, 0).unwrap();
        // The copied file keeps its original serialization stamp.
        assert_eq!(ckpt.lsn, 3);
        assert!(ckpt.body.contains("a.c.1"));
        assert_eq!(load_checkpoint(&cut, 1).unwrap().lsn, 8);
    }

    #[test]
    fn reuse_without_previous_cut_is_an_error() {
        let tmp = TempDir::new("no-previous");
        assert!(matches!(write_cut(&tmp.0, 1, |_| None), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn uncommitted_tmp_cut_is_ignored() {
        let tmp = TempDir::new("tmp-ignored");
        trivial_cut(&tmp.0, 4, "a");
        // Simulate a crash mid-assembly of a newer cut.
        std::fs::create_dir_all(tmp.0.join("ckpt-00000000000000000099.tmp")).unwrap();
        let (lsn, _) = latest_cut(&tmp.0).unwrap().unwrap();
        assert_eq!(lsn, 4);
    }

    #[test]
    fn missing_shard_in_cut_is_hard_error() {
        let tmp = TempDir::new("missing-shard");
        let cut = trivial_cut(&tmp.0, 4, "a");
        std::fs::remove_file(checkpoint_path(&cut, 7)).unwrap();
        assert!(matches!(load_checkpoint(&cut, 7), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn damaged_body_is_hard_error() {
        let tmp = TempDir::new("damaged");
        let cut = trivial_cut(&tmp.0, 5, "a");
        let path = checkpoint_path(&cut, 0);
        let text = std::fs::read_to_string(&path).unwrap().replace("a.c.1", "a.c.2");
        std::fs::write(&path, text).unwrap();
        match load_checkpoint(&cut, 0) {
            Err(WalError::Corrupt { message, .. }) => {
                assert!(message.contains("CRC mismatch"), "message: {message}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn wrong_shard_number_is_hard_error() {
        let tmp = TempDir::new("wrong-shard");
        let cut = trivial_cut(&tmp.0, 5, "a");
        std::fs::rename(checkpoint_path(&cut, 1), checkpoint_path(&cut, 2)).unwrap();
        assert!(matches!(load_checkpoint(&cut, 2), Err(WalError::Corrupt { .. })));
    }
}
