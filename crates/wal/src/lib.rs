//! # quepa-wal — durability for the A' index
//!
//! Everything upstream of this crate is in-memory: a restart throws away
//! the A' index and forces a full re-run of the linkage pipeline. This
//! crate adds the persistence layer:
//!
//! * a **write-ahead log** ([`Wal`]) of logical index mutations
//!   ([`IndexOp`]) with CRC-framed records and monotonic LSNs — append,
//!   fsync (per [`SyncPolicy`]), then apply;
//! * **checkpoint cuts** ([`checkpoint`]): consistent per-shard
//!   snapshots of the sharded CSR projection, all stamped with one
//!   covered LSN. Cuts are incremental — only shards dirtied since the
//!   previous cut are re-serialized, the rest are carried over — so a
//!   shard compaction, which already rewrites exactly one shard,
//!   checkpoints at that boundary for the cost of that one shard;
//! * **recovery** ([`recover`]): load the newest committed cut and
//!   replay the WAL tail past its LSN. Because the cut is consistent,
//!   replay sees exactly the state the original execution saw and the
//!   recovered index answers **bit-identically** to a never-crashed
//!   instance. (Staggered per-shard checkpoint LSNs cannot offer that:
//!   logical records span shards, and materialized probability products
//!   compound stored values, so replaying against a mix of older and
//!   newer shard states drifts in the last bits — the recovery property
//!   test demonstrates it.)
//!
//! ## Failure model
//!
//! A torn or bit-flipped **final** record is the expected shape of a
//! crash mid-append and is handled by truncating the tail. A CRC
//! mismatch, duplicate LSN, or non-monotonic LSN **before** the final
//! record means the log itself is damaged — that is a hard
//! [`WalError::Corrupt`] with the byte offset, never silently skipped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc;
pub mod log;
pub mod op;
pub mod recover;

pub use checkpoint::{checkpoint_path, latest_cut, load_checkpoint, write_cut, Checkpoint};
pub use log::{Lsn, ScanOutcome, SyncPolicy, TailStatus, Wal, WalError, WalRecord};
pub use op::IndexOp;
pub use recover::{dir_has_state, recover, wal_path, RecoveryOptions, RecoveryReport};
