//! Recovery: newest consistent cut + WAL tail → a live index.
//!
//! The durable directory holds one WAL (`quepa.wal`) and checkpoint
//! cuts (`ckpt-<lsn>/`, see [`crate::checkpoint`]). Recovery:
//!
//! 1. find the newest committed cut (none → start from the empty
//!    index at LSN 0);
//! 2. load all of its shard files into one index with raw, bit-exact
//!    insertion (each cross-shard edge re-applies idempotently);
//! 3. open the WAL (truncating a torn tail) and replay every record
//!    with `lsn > cut lsn` through the full logical-op semantics, in
//!    LSN order.
//!
//! Because the cut is a consistent snapshot at exactly its LSN, the
//! replayed records see the same state the original execution saw, so
//! the recovered index answers bit-identically to a never-crashed
//! instance — pinned by this crate's recovery property test.

use std::path::{Path, PathBuf};

use quepa_aindex::{AIndex, SHARD_COUNT};

use crate::checkpoint::{apply_body, checkpoint_path, latest_cut, load_checkpoint};
use crate::log::{Lsn, SyncPolicy, TailStatus, Wal, WalError};

/// The WAL file inside a durable directory.
pub const WAL_FILE: &str = "quepa.wal";

/// The WAL path inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Whether `dir` already holds durable state (a WAL or any cut).
pub fn dir_has_state(dir: &Path) -> bool {
    wal_path(dir).exists() || matches!(latest_cut(dir), Ok(Some(_)))
}

/// Knobs for [`recover`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Fault-injection hook: silently drop this many records from the
    /// end of the replayable WAL tail. `0` (the default) is correct
    /// recovery; anything else exists so the simulation harness can
    /// prove it would catch a recovery bug of exactly this shape.
    pub skip_wal_tail: usize,
}

/// What recovery did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard files loaded from the cut (0 or [`SHARD_COUNT`]).
    pub checkpoints_loaded: usize,
    /// The cut's LSN (0 if there was no cut) — replay starts after it.
    pub checkpoint_lsn: Lsn,
    /// WAL records replayed.
    pub replayed: usize,
    /// Whether a torn final record was truncated off the WAL.
    pub torn_tail: bool,
    /// The last LSN in the log after recovery.
    pub last_lsn: Lsn,
}

/// Recovers the index from a durable directory and returns it together
/// with the reopened WAL (positioned for appending) and a report.
pub fn recover(
    dir: &Path,
    sync: SyncPolicy,
    options: &RecoveryOptions,
) -> Result<(AIndex, Wal, RecoveryReport), WalError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| WalError::Io { path: dir.to_path_buf(), source: e })?;
    let mut index = AIndex::new();
    let mut loaded = 0;
    let cut_lsn = match latest_cut(dir)? {
        Some((lsn, cut_dir)) => {
            for shard in 0..SHARD_COUNT {
                let ckpt = load_checkpoint(&cut_dir, shard)?;
                apply_body(&ckpt.body, &mut index).map_err(|message| WalError::Corrupt {
                    path: checkpoint_path(&cut_dir, shard),
                    offset: 0,
                    message,
                })?;
                loaded += 1;
            }
            lsn
        }
        None => 0,
    };
    let (mut wal, scan) = Wal::open(&wal_path(dir), sync)?;
    // The log may have been truncated behind the cut (possibly to
    // empty); never re-issue LSNs the cut covers.
    wal.advance_past(cut_lsn);
    let torn = matches!(scan.tail, TailStatus::TornTruncated { .. });
    let mut tail: Vec<_> = scan.records.into_iter().filter(|r| r.lsn > cut_lsn).collect();
    // Fault-injection hook (see RecoveryOptions::skip_wal_tail).
    tail.truncate(tail.len().saturating_sub(options.skip_wal_tail));
    for record in &tail {
        record.op.apply(&mut index);
    }
    let report = RecoveryReport {
        checkpoints_loaded: loaded,
        checkpoint_lsn: cut_lsn,
        replayed: tail.len(),
        torn_tail: torn,
        last_lsn: wal.last_lsn(),
    };
    Ok((index, wal, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_cut;
    use crate::op::IndexOp;
    use quepa_aindex::ShardedIndex;
    use quepa_pdm::{GlobalKey, Probability};

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("quepa-recover-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn ops() -> Vec<IndexOp> {
        vec![
            IndexOp::InsertIdentity { a: k("db0.c.a"), b: k("db1.c.b"), p: Probability::of(0.9) },
            IndexOp::InsertMatching { a: k("db0.c.a"), b: k("db2.c.m"), p: Probability::of(0.7) },
            IndexOp::InsertIdentity { a: k("db1.c.b"), b: k("db3.c.c"), p: Probability::of(0.8) },
            IndexOp::RemoveObject { key: k("db2.c.m") },
        ]
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let tmp = TempDir::new("empty");
        let (index, wal, report) =
            recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions::default()).unwrap();
        assert_eq!(index.node_count(), 0);
        assert_eq!(wal.last_lsn(), 0);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.checkpoints_loaded, 0);
    }

    #[test]
    fn wal_only_recovery_matches_replay() {
        let tmp = TempDir::new("wal-only");
        let all = ops();
        let (mut wal, _) = Wal::open(&wal_path(&tmp.0), SyncPolicy::Buffered).unwrap();
        wal.append(&all).unwrap();
        drop(wal);
        let (index, _, report) =
            recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions::default()).unwrap();
        let mut want = AIndex::new();
        for op in &all {
            op.apply(&mut want);
        }
        assert_eq!(report.replayed, all.len());
        assert_eq!(index.stats(), want.stats());
        assert!(!index.contains(&k("db2.c.m")));
    }

    #[test]
    fn skip_wal_tail_drops_records() {
        let tmp = TempDir::new("skip-tail");
        let all = ops();
        let (mut wal, _) = Wal::open(&wal_path(&tmp.0), SyncPolicy::Buffered).unwrap();
        wal.append(&all).unwrap();
        drop(wal);
        let (index, _, report) =
            recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions { skip_wal_tail: 1 }).unwrap();
        assert_eq!(report.replayed, all.len() - 1);
        // The skipped record was the removal: the object wrongly survives.
        assert!(index.contains(&k("db2.c.m")));
    }

    #[test]
    fn cut_plus_tail() {
        let tmp = TempDir::new("cut-tail");
        let all = ops();
        let (mut wal, _) = Wal::open(&wal_path(&tmp.0), SyncPolicy::Buffered).unwrap();
        wal.append(&all[..2]).unwrap();
        // A consistent cut of the state after two ops, serialized the
        // way a durable instance would serialize it.
        let sharded = ShardedIndex::new(AIndex::new());
        for op in &all[..2] {
            sharded.update(|ix| op.apply(ix));
        }
        write_cut(&tmp.0, 2, |shard| Some(sharded.serialize_shard(shard))).unwrap();
        wal.append(&all[2..]).unwrap();
        drop(wal);
        let (index, _, report) =
            recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions::default()).unwrap();
        assert_eq!(report.checkpoint_lsn, 2);
        assert_eq!(report.checkpoints_loaded, SHARD_COUNT);
        assert_eq!(report.replayed, 2);
        let mut want = AIndex::new();
        for op in &all {
            op.apply(&mut want);
        }
        assert_eq!(index.node_count(), want.node_count());
        assert_eq!(index.edge_count(), want.edge_count());
    }

    /// Regression: a cut that truncated the WAL to empty must not make
    /// the reopened log re-issue covered LSNs — records appended after
    /// such a restart must survive the *next* recovery.
    #[test]
    fn appends_after_a_covered_restart_survive_the_next_recovery() {
        let tmp = TempDir::new("covered-restart");
        let all = ops();
        let (mut wal, _) = Wal::open(&wal_path(&tmp.0), SyncPolicy::Buffered).unwrap();
        wal.append(&all[..2]).unwrap();
        let sharded = ShardedIndex::new(AIndex::new());
        for op in &all[..2] {
            sharded.update(|ix| op.apply(ix));
        }
        write_cut(&tmp.0, 2, |shard| Some(sharded.serialize_shard(shard))).unwrap();
        wal.truncate_upto(2).unwrap();
        drop(wal);

        // Restart: the log is empty, the cut covers LSNs 1..=2.
        let (_, mut wal, report) =
            recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions::default()).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(wal.last_lsn(), 2, "the LSN clock continues past the cut");
        let lsn = wal.append(&all[2..]).unwrap();
        assert!(lsn > 2, "fresh records get LSNs beyond the cut, got {lsn}");
        drop(wal);

        let (index, _, report) =
            recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions::default()).unwrap();
        assert_eq!(report.replayed, 2, "post-restart records must replay");
        let mut want = AIndex::new();
        for op in &all {
            op.apply(&mut want);
        }
        assert_eq!(index.node_count(), want.node_count());
        assert!(!index.contains(&k("db2.c.m")));
    }

    #[test]
    fn dir_has_state_sees_wal_and_cuts() {
        let tmp = TempDir::new("has-state");
        assert!(!dir_has_state(&tmp.0));
        write_cut(&tmp.0, 0, |_| Some(String::new())).unwrap();
        assert!(dir_has_state(&tmp.0));
    }
}
