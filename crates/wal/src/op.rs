//! Logical index mutations — the WAL's record payload.
//!
//! The durable mutation surface is *logical*: a record names the
//! operation (`insert-identity`, `remove`, …), not the edges it ends up
//! touching, so replay re-runs transitivity materialization and the
//! Consistency Condition exactly as the original execution did.
//! Payloads are one line of text: keys are percent-escaped (the same
//! escaping as the index's serial format) and probabilities use Rust's
//! shortest round-trip `f64` display, which reproduces the exact bits.

use quepa_aindex::serial::{escape, unescape};
use quepa_aindex::AIndex;
use quepa_pdm::{GlobalKey, Probability, RelationKind};

/// One durable mutation of the A' index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexOp {
    /// Insert an identity p-relation (materializes transitivity).
    InsertIdentity {
        /// First endpoint.
        a: GlobalKey,
        /// Second endpoint.
        b: GlobalKey,
        /// Relation probability.
        p: Probability,
    },
    /// Insert a matching p-relation (enforces the Consistency Condition).
    InsertMatching {
        /// First endpoint.
        a: GlobalKey,
        /// Second endpoint.
        b: GlobalKey,
        /// Relation probability.
        p: Probability,
    },
    /// Promote a traversed exploration path into a shortcut matching.
    InsertPromoted {
        /// First endpoint.
        a: GlobalKey,
        /// Second endpoint.
        b: GlobalKey,
        /// Averaged path probability.
        p: Probability,
    },
    /// Lazy deletion of a vanished object and its incident edges.
    RemoveObject {
        /// The vanished object's global key.
        key: GlobalKey,
    },
    /// Delete one p-relation (policy-dependent cascade).
    DeleteRelation {
        /// First endpoint.
        a: GlobalKey,
        /// Second endpoint.
        b: GlobalKey,
        /// Which edge kind to delete.
        kind: RelationKind,
    },
}

fn kind_tag(kind: RelationKind) -> &'static str {
    match kind {
        RelationKind::Identity => "id",
        RelationKind::Matching => "match",
    }
}

impl IndexOp {
    /// Applies the operation to an index, running the full insertion /
    /// deletion semantics (materialization, consistency, lineage).
    pub fn apply(&self, index: &mut AIndex) {
        match self {
            IndexOp::InsertIdentity { a, b, p } => index.insert_identity(a, b, *p),
            IndexOp::InsertMatching { a, b, p } => index.insert_matching(a, b, *p),
            IndexOp::InsertPromoted { a, b, p } => {
                index.insert_promoted(a, b, *p);
            }
            IndexOp::RemoveObject { key } => index.remove_object(key),
            IndexOp::DeleteRelation { a, b, kind } => {
                index.delete_prelation(a, b, *kind);
            }
        }
    }

    /// Encodes the operation as a single line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            IndexOp::InsertIdentity { a, b, p } => {
                format!("insert-identity {} {} {}", p.get(), key_token(a), key_token(b))
            }
            IndexOp::InsertMatching { a, b, p } => {
                format!("insert-matching {} {} {}", p.get(), key_token(a), key_token(b))
            }
            IndexOp::InsertPromoted { a, b, p } => {
                format!("insert-promoted {} {} {}", p.get(), key_token(a), key_token(b))
            }
            IndexOp::RemoveObject { key } => format!("remove {}", key_token(key)),
            IndexOp::DeleteRelation { a, b, kind } => {
                format!("delete-relation {} {} {}", kind_tag(*kind), key_token(a), key_token(b))
            }
        }
    }

    /// Decodes a line produced by [`encode`](IndexOp::encode).
    pub fn decode(line: &str) -> Result<IndexOp, String> {
        let mut parts = line.split(' ');
        let verb = parts.next().ok_or("empty op")?;
        let prob = |parts: &mut std::str::Split<'_, char>| -> Result<Probability, String> {
            let raw = parts.next().ok_or("op needs a probability")?;
            let p: f64 = raw.parse().map_err(|_| format!("bad probability {raw:?}"))?;
            Probability::new(p).map_err(|e| e.to_string())
        };
        match verb {
            "insert-identity" => {
                let p = prob(&mut parts)?;
                let (a, b) = two_keys(&mut parts)?;
                Ok(IndexOp::InsertIdentity { a, b, p })
            }
            "insert-matching" => {
                let p = prob(&mut parts)?;
                let (a, b) = two_keys(&mut parts)?;
                Ok(IndexOp::InsertMatching { a, b, p })
            }
            "insert-promoted" => {
                let p = prob(&mut parts)?;
                let (a, b) = two_keys(&mut parts)?;
                Ok(IndexOp::InsertPromoted { a, b, p })
            }
            "remove" => {
                let key = one_key(&mut parts)?;
                Ok(IndexOp::RemoveObject { key })
            }
            "delete-relation" => {
                let kind = match parts.next() {
                    Some("id") => RelationKind::Identity,
                    Some("match") => RelationKind::Matching,
                    other => return Err(format!("bad relation kind {other:?}")),
                };
                let (a, b) = two_keys(&mut parts)?;
                Ok(IndexOp::DeleteRelation { a, b, kind })
            }
            other => Err(format!("unknown op verb {other:?}")),
        }
    }
}

fn key_token(key: &GlobalKey) -> String {
    escape(&key.to_string())
}

fn one_key(parts: &mut std::str::Split<'_, char>) -> Result<GlobalKey, String> {
    let raw = parts.next().ok_or("op needs a key")?;
    unescape(raw)?.parse().map_err(|e: quepa_pdm::PdmError| e.to_string())
}

fn two_keys(parts: &mut std::str::Split<'_, char>) -> Result<(GlobalKey, GlobalKey), String> {
    Ok((one_key(parts)?, one_key(parts)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    fn all_ops() -> Vec<IndexOp> {
        vec![
            IndexOp::InsertIdentity { a: k("db0.c.a"), b: k("db1.c.b"), p: Probability::of(0.9) },
            IndexOp::InsertMatching {
                a: k("db0.c.a"),
                b: k("db2.c.x y"),
                p: Probability::of(0.731),
            },
            IndexOp::InsertPromoted { a: k("db0.c.a"), b: k("db3.c.z"), p: Probability::of(0.5) },
            IndexOp::RemoveObject { key: k("db2.c.x y") },
            IndexOp::DeleteRelation {
                a: k("db0.c.a"),
                b: k("db1.c.b"),
                kind: RelationKind::Identity,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for op in all_ops() {
            let line = op.encode();
            assert_eq!(IndexOp::decode(&line).unwrap(), op, "line {line:?}");
        }
    }

    #[test]
    fn probability_bits_survive() {
        // 0.1 + 0.2 is the classic non-representable sum; the shortest
        // round-trip display must reproduce the exact bits.
        let p = Probability::new(0.1f64 + 0.2f64).unwrap();
        let op = IndexOp::InsertIdentity { a: k("a.c.1"), b: k("b.c.1"), p };
        match IndexOp::decode(&op.encode()).unwrap() {
            IndexOp::InsertIdentity { p: back, .. } => {
                assert_eq!(back.get().to_bits(), p.get().to_bits());
            }
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "",
            "frobnicate a.c.1",
            "insert-identity notanumber a.c.1 b.c.1",
            "insert-identity 1.5 a.c.1 b.c.1",
            "insert-identity 0.5 a.c.1",
            "remove",
            "remove notakey",
            "delete-relation sideways a.c.1 b.c.1",
        ] {
            assert!(IndexOp::decode(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn apply_matches_direct_mutation() {
        let mut direct = AIndex::new();
        direct.insert_identity(&k("a.c.1"), &k("b.c.1"), Probability::of(0.9));
        direct.insert_matching(&k("a.c.1"), &k("m.c.1"), Probability::of(0.7));
        direct.remove_object(&k("b.c.1"));

        let mut replayed = AIndex::new();
        for op in [
            IndexOp::InsertIdentity { a: k("a.c.1"), b: k("b.c.1"), p: Probability::of(0.9) },
            IndexOp::InsertMatching { a: k("a.c.1"), b: k("m.c.1"), p: Probability::of(0.7) },
            IndexOp::RemoveObject { key: k("b.c.1") },
        ] {
            op.apply(&mut replayed);
        }
        assert_eq!(direct.stats(), replayed.stats());
        assert_eq!(direct.augment(&[k("a.c.1")], 2), replayed.augment(&[k("a.c.1")], 2));
    }
}
