//! CRC-32 (IEEE 802.3 polynomial), table-driven, no external crates.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Feeds `bytes` into a running CRC state (start from `!0`, finish by
/// inverting — or use [`crc32`] / [`crc32_concat`]).
fn update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 of one buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0, bytes)
}

/// CRC-32 of the concatenation of `parts`, without materializing it.
pub fn crc32_concat(parts: &[&[u8]]) -> u32 {
    let mut state = !0u32;
    for part in parts {
        state = update(state, part);
    }
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn concat_matches_whole() {
        let whole = b"hello, durable world";
        assert_eq!(crc32_concat(&[&whole[..5], &whole[5..]]), crc32(whole));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut buf = b"payload".to_vec();
        let before = crc32(&buf);
        buf[3] ^= 0x10;
        assert_ne!(crc32(&buf), before);
    }
}
