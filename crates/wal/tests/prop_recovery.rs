//! Recovery property test: for any seeded mutation sequence and any
//! checkpoint-cut schedule, `load(newest cut) + replay(wal tail)` must
//! equal replaying the full log from empty — and equal the live,
//! never-restarted instance.
//!
//! Cuts are taken at random points and re-serialize only the shards
//! dirtied since the previous cut, carrying the rest over — the same
//! incremental discipline the durable system uses, including the
//! remove-object neighbour-shard caveat (see
//! `quepa_aindex::shard::UpdateReport`). Equality is judged on the
//! answer surface with exact probability bits: membership, neighbors,
//! and multi-level augmentation.

use std::path::PathBuf;

use quepa_aindex::shard::route;
use quepa_aindex::{AIndex, ShardedIndex, SHARD_COUNT};
use quepa_pdm::{GlobalKey, Probability, RelationKind};
use quepa_wal::{recover, wal_path, write_cut, IndexOp, RecoveryOptions, SyncPolicy, Wal};

/// SplitMix64 — the same generator family the simulation harness uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: u64) -> Self {
        let dir =
            std::env::temp_dir().join(format!("quepa-prop-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn universe() -> Vec<GlobalKey> {
    let mut keys = Vec::new();
    for store in 0..4 {
        for obj in 0..7 {
            keys.push(format!("db{store}.objects.k{obj}").parse().unwrap());
        }
    }
    keys
}

fn random_op(rng: &mut Rng, keys: &[GlobalKey]) -> IndexOp {
    let a = keys[rng.below(keys.len() as u64) as usize].clone();
    let b = keys[rng.below(keys.len() as u64) as usize].clone();
    let p = Probability::of(0.05 + 0.009 * rng.below(100) as f64);
    match rng.below(100) {
        0..=34 => IndexOp::InsertIdentity { a, b, p },
        35..=59 => IndexOp::InsertMatching { a, b, p },
        60..=69 => IndexOp::InsertPromoted { a, b, p },
        70..=89 => IndexOp::RemoveObject { key: a },
        _ => IndexOp::DeleteRelation {
            a,
            b,
            kind: if rng.chance(50) { RelationKind::Identity } else { RelationKind::Matching },
        },
    }
}

fn assert_answers_equal(got: &AIndex, want: &AIndex, keys: &[GlobalKey], seed: u64) {
    for key in keys {
        assert_eq!(
            got.contains(key),
            want.contains(key),
            "seed {seed}: membership diverges for {key}"
        );
        assert_eq!(
            got.neighbors(key),
            want.neighbors(key),
            "seed {seed}: neighbors diverge for {key}"
        );
    }
    for level in 0..3 {
        for chunk in keys.chunks(5) {
            assert_eq!(
                got.augment(chunk, level),
                want.augment(chunk, level),
                "seed {seed}: augmentation diverges (level {level}, seeds {chunk:?})"
            );
        }
    }
    assert_eq!(got.node_count(), want.node_count(), "seed {seed}: node counts diverge");
}

/// One seeded run: random ops, random incremental-cut schedule,
/// recover, compare against full replay from empty and the live index.
fn run_seed(seed: u64) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9) + 1);
    let keys = universe();
    let total_ops = 20 + rng.below(60) as usize;
    let tmp = TempDir::new(seed);

    let (mut wal, _) = Wal::open(&wal_path(&tmp.0), SyncPolicy::Buffered).unwrap();
    // The live system the WAL shadows: a sharded index so cuts
    // serialize exactly what a durable instance would serialize.
    let sharded = ShardedIndex::new(AIndex::new());
    let mut ops: Vec<IndexOp> = Vec::new();
    // Shards dirty since the last cut; before any cut exists every
    // shard must be serialized fresh.
    let mut dirty = [false; SHARD_COUNT];
    let mut have_cut = false;

    for _ in 0..total_ops {
        let op = random_op(&mut rng, &keys);
        let lsn = wal.append(std::slice::from_ref(&op)).unwrap();
        let (extra_dirty, report) = sharded.update_reporting(|ix| {
            // A lazy removal changes the neighbours' serialized shards
            // without journaling them — collect those before applying.
            let mut extra = Vec::new();
            if let IndexOp::RemoveObject { key } = &op {
                for (neighbor, _, _) in ix.neighbors(key) {
                    extra.push(route(&neighbor));
                }
            }
            op.apply(ix);
            extra
        });
        for shard in extra_dirty.into_iter().chain(report.touched) {
            dirty[shard] = true;
        }
        ops.push(op);

        // Random cut schedule: serialize dirty shards, carry the rest
        // over from the previous cut, occasionally compact the WAL.
        if rng.chance(18) {
            write_cut(&tmp.0, lsn, |shard| {
                (dirty[shard] || !have_cut).then(|| sharded.serialize_shard(shard))
            })
            .unwrap();
            have_cut = true;
            dirty = [false; SHARD_COUNT];
            if rng.chance(50) {
                wal.truncate_upto(lsn).unwrap();
            }
        }
    }
    drop(wal);

    let (recovered, _, report) =
        recover(&tmp.0, SyncPolicy::Buffered, &RecoveryOptions::default()).unwrap();

    let mut full_replay = AIndex::new();
    for op in &ops {
        op.apply(&mut full_replay);
    }
    assert_answers_equal(&recovered, &full_replay, &keys, seed);

    // The live instance must agree too (recovery reproduces the state
    // the never-crashed system holds).
    let live = sharded.snapshot();
    assert_answers_equal(&recovered, &live, &keys, seed);

    assert!(report.last_lsn as usize <= total_ops);
}

#[test]
fn recovery_equals_full_replay_across_seeds_and_schedules() {
    for seed in 0..60 {
        run_seed(seed);
    }
}
