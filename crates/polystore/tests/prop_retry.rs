//! Property tests for the retry executor: retry-with-backoff is
//! *deterministic* and *bounded* for every policy in the knob space.
//!
//! * attempts never exceed `max_attempts` (and a fault-free call makes
//!   exactly one);
//! * every backoff pause matches the closed form
//!   `raw(i) = min(base·2^min(i,16), max)` minus at most
//!   `raw·jitter_pct/100`, identically on every evaluation;
//! * the whole executor replays bit-identically: same policy, same salt,
//!   same fault script → same result, same report.

use std::time::Duration;

use proptest::prelude::*;
use quepa_pdm::DatabaseName;
use quepa_polystore::retry::{run_round_trip, RetryPolicy, RoundTripReport};
use quepa_polystore::PolyError;

fn db() -> DatabaseName {
    DatabaseName::new("db").unwrap()
}

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..=6, 0u64..200, 0u64..400, 0u32..=100).prop_map(|(attempts, base, max, jitter)| {
        RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::from_nanos(base),
            max_backoff: Duration::from_nanos(max),
            jitter_pct: jitter,
            deadline: None,
        }
        .sanitized()
    })
}

/// Drives the executor over a scripted fault prefix: the first
/// `failures` calls fail with a retryable error, then calls succeed.
/// Returns the outcome, the report, and how many calls were made.
fn drive(policy: &RetryPolicy, salt: u64, failures: u32) -> (bool, RoundTripReport, u32) {
    let mut calls = 0u32;
    let (result, report) = run_round_trip(policy, None, &db(), salt, || {
        calls += 1;
        if calls <= failures {
            Err(PolyError::store("db", "scripted fault"))
        } else {
            Ok(calls)
        }
    });
    (result.is_ok(), report, calls)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Attempts are bounded by the policy, and a fault-free round trip
    /// makes exactly one call with no retries and no pauses.
    #[test]
    fn attempts_are_bounded(policy in arb_policy(), salt in any::<u64>(), failures in 0u32..10) {
        let (ok, report, calls) = drive(&policy, salt, failures);
        prop_assert!(calls <= policy.max_attempts);
        prop_assert_eq!(report.attempts, calls);
        prop_assert_eq!(report.retries, calls.saturating_sub(1) as u64);
        if failures == 0 {
            prop_assert!(ok);
            prop_assert_eq!(calls, 1, "a fault-free call must not spend a single retry");
            prop_assert_eq!(report, RoundTripReport { attempts: 1, ..Default::default() });
        } else if failures < policy.max_attempts {
            prop_assert!(ok, "enough attempts must ride out {} failures", failures);
            prop_assert_eq!(calls, failures + 1);
        } else {
            prop_assert!(!ok, "exhausted retries must fail");
            prop_assert_eq!(calls, policy.max_attempts);
        }
    }

    /// The pause before each retry matches the closed form and is stable
    /// across evaluations (deterministic jitter).
    #[test]
    fn backoff_matches_closed_form(policy in arb_policy(), salt in any::<u64>(), i in 0u32..40) {
        let cap = policy.max_backoff.max(policy.base_backoff);
        let raw = policy.base_backoff.saturating_mul(1u32 << i.min(16)).min(cap);
        let pause = policy.backoff(i, salt);
        prop_assert_eq!(pause, policy.backoff(i, salt), "same (policy, salt, i), same pause");
        prop_assert!(pause <= raw, "jitter only subtracts: {:?} > {:?}", pause, raw);
        // Subtract at most jitter_pct percent (integer floor keeps this exact).
        let floor = raw.as_nanos() - raw.as_nanos() * policy.jitter_pct as u128 / 100;
        prop_assert!(
            pause.as_nanos() >= floor,
            "jitter exceeded {}%: {:?} < {} ns",
            policy.jitter_pct, pause, floor
        );
        if policy.jitter_pct == 0 {
            prop_assert_eq!(pause, raw, "no jitter means the exact closed form");
        }
    }

    /// The executor as a whole is a pure function of (policy, salt, fault
    /// script): replaying yields the identical result and report.
    #[test]
    fn executor_replays_identically(
        policy in arb_policy(),
        salt in any::<u64>(),
        failures in 0u32..10,
    ) {
        let first = drive(&policy, salt, failures);
        let second = drive(&policy, salt, failures);
        prop_assert_eq!(first, second);
    }
}
