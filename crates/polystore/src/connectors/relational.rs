//! Connector for the relational engine.

use parking_lot::RwLock;
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Pushdown, Value};
use quepa_relstore::engine::{Database, ResultRow};
use quepa_relstore::sql::ast::Statement;

use crate::connector::{Connector, FilteredFetch, StoreKind};
use crate::connectors::payload_bytes;
use crate::error::{PolyError, Result};
use crate::net::LatencyModel;
use crate::stats::{ConnectorStats, StatsSnapshot};

/// Wraps a [`Database`] as a polystore connector.
///
/// Result rows become data objects whose local key is the row's primary-key
/// value and whose payload is the row rendered as a PDM object value.
pub struct RelationalConnector {
    name: DatabaseName,
    db: RwLock<Database>,
    latency: LatencyModel,
    stats: ConnectorStats,
}

impl RelationalConnector {
    /// Creates the connector. The database name in the polystore is taken
    /// from the engine's own name.
    pub fn new(db: Database, latency: LatencyModel) -> Self {
        let name = DatabaseName::new(db.name()).expect("valid database name");
        RelationalConnector { name, db: RwLock::new(db), latency, stats: ConnectorStats::new() }
    }

    /// Builds an object from a result row. `table` is the already-interned
    /// collection name, so the per-object cost is just the local key.
    fn object_from_row(
        &self,
        table: &CollectionName,
        pk_col: &str,
        row: ResultRow,
    ) -> Result<DataObject> {
        let pk = match row.get(pk_col) {
            Some(Value::Str(s)) => s.clone(),
            Some(other) => other.to_string(),
            // The Validator rewrites queries to always include the key
            // column, so a missing pk here is an internal error.
            None => {
                return Err(PolyError::store(
                    self.name.as_str(),
                    format!("result row lacks key column {pk_col}"),
                ))
            }
        };
        let local = LocalKey::new(&pk).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let key = GlobalKey::new(self.name.clone(), table.clone(), local);
        Ok(DataObject::new(key, Value::Object(row)))
    }
}

impl Connector for RelationalConnector {
    fn database(&self) -> &DatabaseName {
        &self.name
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Relational
    }

    fn collections(&self) -> Vec<CollectionName> {
        self.db
            .read()
            .table_names()
            .into_iter()
            .map(|t| CollectionName::new(t).expect("valid table name"))
            .collect()
    }

    fn execute(&self, query: &str) -> Result<Vec<DataObject>> {
        let db = self.db.read();
        let stmt = db.prepare(query).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let Statement::Select(select) = stmt else {
            return Err(PolyError::WrongKind {
                database: self.name.to_string(),
                operation: "execute() only runs SELECT; use execute_update for DML".into(),
            });
        };
        let table = select.table.clone();
        let pk_col = db
            .table(&table)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?
            .pk_column()
            .to_owned();
        let rows = db.run_select(&select).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        drop(db);
        let coll =
            CollectionName::new(&table).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        // Aggregate results carry no key; wrap them under a synthetic one
        // (the Validator refuses to *augment* these, but they are legal
        // local queries).
        let objects: Vec<DataObject> = if select.has_aggregates() {
            let key = GlobalKey::parse_parts(self.name.as_str(), &table, "_agg")
                .map_err(|e| PolyError::store(self.name.as_str(), e))?;
            rows.into_iter().map(|row| DataObject::new(key.clone(), Value::Object(row))).collect()
        } else {
            rows.into_iter()
                .map(|row| self.object_from_row(&coll, &pk_col, row))
                .collect::<Result<_>>()?
        };
        let bytes = payload_bytes(&objects);
        let cost = self.latency.cost(objects.len(), bytes);
        self.latency.pay(objects.len(), bytes);
        self.stats.record(true, objects.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(objects)
    }

    fn execute_update(&self, statement: &str) -> Result<usize> {
        let rows = self
            .db
            .write()
            .execute(statement)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let cost = self.latency.cost(0, 0);
        self.latency.pay(0, 0);
        self.stats.record(true, 0, 0, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(rows.first().and_then(|r| r.get("affected")).and_then(Value::as_int).unwrap_or(0)
            as usize)
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>> {
        let db = self.db.read();
        let row = db
            .get(collection.as_str(), key.as_str())
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        drop(db);
        let object = match row {
            None => None,
            Some(row) => {
                let pk_col = self
                    .db
                    .read()
                    .table(collection.as_str())
                    .expect("checked above")
                    .pk_column()
                    .to_owned();
                Some(self.object_from_row(collection, &pk_col, row)?)
            }
        };
        let (n, bytes) = object.as_ref().map_or((0, 0), |o| (1, o.approx_size()));
        let cost = self.latency.cost(n, bytes);
        self.latency.pay(n, bytes);
        self.stats.record(false, n, bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(object)
    }

    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>> {
        let db = self.db.read();
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let rows = db
            .multi_get(collection.as_str(), &key_strs)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let pk_col = db
            .table(collection.as_str())
            .map_err(|e| PolyError::store(self.name.as_str(), e))?
            .pk_column()
            .to_owned();
        drop(db);
        let objects: Result<Vec<DataObject>> = rows
            .into_iter()
            .map(|(_, row)| self.object_from_row(collection, &pk_col, row))
            .collect();
        let objects = objects?;
        let bytes = payload_bytes(&objects);
        let cost = self.latency.cost(objects.len(), bytes);
        self.latency.pay(objects.len(), bytes);
        self.stats.record(false, objects.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(objects)
    }

    fn supports_pushdown(&self, _filter: &Pushdown) -> bool {
        true
    }

    fn fetch_where(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        // The engine's `WHERE pk IN (…) AND <pred>` access path: rejected
        // rows never leave the store, so only matches are charged.
        let db = self.db.read();
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let (rows, rejected) = db
            .multi_get_where(collection.as_str(), &key_strs, filter)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let pk_col = db
            .table(collection.as_str())
            .map_err(|e| PolyError::store(self.name.as_str(), e))?
            .pk_column()
            .to_owned();
        drop(db);
        let matched: Vec<DataObject> = rows
            .into_iter()
            .map(|(_, row)| self.object_from_row(collection, &pk_col, row))
            .collect::<Result<_>>()?;
        let rejected: Vec<LocalKey> = rejected
            .into_iter()
            .map(|k| LocalKey::new(&k).map_err(|e| PolyError::store(self.name.as_str(), e)))
            .collect::<Result<_>>()?;
        let bytes = payload_bytes(&matched);
        let cost = self.latency.cost(matched.len(), bytes);
        self.latency.pay(matched.len(), bytes);
        self.stats.record(false, matched.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        quepa_obs::record_pushdown_latency(self.name.as_str(), cost);
        Ok(FilteredFetch { matched, rejected })
    }

    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>> {
        self.execute(&format!("SELECT * FROM {}", collection.as_str()))
    }

    fn object_count(&self) -> usize {
        self.db.read().total_rows()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.stats.record_resilience(retries, timeouts, breaker_trips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connector() -> RelationalConnector {
        let mut db = Database::new("transactions");
        db.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
        db.execute(
            "INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Faith')",
        )
        .unwrap();
        RelationalConnector::new(db, LatencyModel::FREE)
    }

    #[test]
    fn execute_maps_rows_to_objects() {
        let c = connector();
        let objs = c.execute("SELECT * FROM inventory WHERE name LIKE '%wish%'").unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].key().to_string(), "transactions.inventory.a32");
        assert_eq!(objs[0].value().get("artist").unwrap().as_str(), Some("Cure"));
    }

    #[test]
    fn execute_rejects_dml() {
        let c = connector();
        assert!(matches!(c.execute("DELETE FROM inventory"), Err(PolyError::WrongKind { .. })));
    }

    #[test]
    fn get_and_multi_get() {
        let c = connector();
        let coll = CollectionName::new("inventory").unwrap();
        let obj = c.get(&coll, &LocalKey::new("a33").unwrap()).unwrap().unwrap();
        assert_eq!(obj.key().key().as_str(), "a33");
        assert!(c.get(&coll, &LocalKey::new("zz").unwrap()).unwrap().is_none());
        let objs = c
            .multi_get(&coll, &[LocalKey::new("a32").unwrap(), LocalKey::new("zz").unwrap()])
            .unwrap();
        assert_eq!(objs.len(), 1);
    }

    #[test]
    fn update_then_lazy_missing() {
        let c = connector();
        let n = c.execute_update("DELETE FROM inventory WHERE id = 'a32'").unwrap();
        assert_eq!(n, 1);
        let coll = CollectionName::new("inventory").unwrap();
        assert!(c.get(&coll, &LocalKey::new("a32").unwrap()).unwrap().is_none());
    }

    #[test]
    fn stats_count_roundtrips() {
        let c = connector();
        let coll = CollectionName::new("inventory").unwrap();
        c.execute("SELECT * FROM inventory").unwrap();
        c.get(&coll, &LocalKey::new("a32").unwrap()).unwrap();
        c.multi_get(&coll, &[LocalKey::new("a32").unwrap(), LocalKey::new("a33").unwrap()])
            .unwrap();
        let s = c.stats();
        assert_eq!(s.queries, 1);
        assert_eq!(s.round_trips, 3);
        assert_eq!(s.objects_returned, 2 + 1 + 2);
        c.reset_stats();
        assert_eq!(c.stats().round_trips, 0);
    }

    #[test]
    fn metadata() {
        let c = connector();
        assert_eq!(c.kind(), StoreKind::Relational);
        assert_eq!(c.database().as_str(), "transactions");
        assert_eq!(c.collections().len(), 1);
        assert_eq!(c.object_count(), 2);
    }
}
