//! Connector for the document store.

use parking_lot::RwLock;
use quepa_docstore::{DocQuery, DocumentDb, FieldOp, Filter, QueryVerb};
use quepa_pdm::{
    CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, PushField, PushOp, Pushdown,
    Value,
};

use crate::connector::{Connector, FilteredFetch, StoreKind};
use crate::connectors::payload_bytes;
use crate::error::{PolyError, Result};
use crate::net::LatencyModel;
use crate::stats::{ConnectorStats, StatsSnapshot};

/// Wraps a [`DocumentDb`] as a polystore connector. Documents become data
/// objects keyed by their `_id`.
pub struct DocumentConnector {
    name: DatabaseName,
    db: RwLock<DocumentDb>,
    latency: LatencyModel,
    stats: ConnectorStats,
}

impl DocumentConnector {
    /// Creates the connector.
    pub fn new(db: DocumentDb, latency: LatencyModel) -> Self {
        let name = DatabaseName::new(db.name()).expect("valid database name");
        DocumentConnector { name, db: RwLock::new(db), latency, stats: ConnectorStats::new() }
    }

    /// Builds an object from a document. `collection` is the
    /// already-interned collection name, so the per-object cost is just
    /// the local key.
    fn object_from_doc(&self, collection: &CollectionName, doc: Value) -> Result<DataObject> {
        let id = match doc.get("_id") {
            Some(Value::Str(s)) => s.clone(),
            Some(Value::Int(i)) => i.to_string(),
            _ => return Err(PolyError::store(self.name.as_str(), "document lacks a usable _id")),
        };
        let local = LocalKey::new(&id).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let key = GlobalKey::new(self.name.clone(), collection.clone(), local);
        Ok(DataObject::new(key, doc))
    }
}

impl Connector for DocumentConnector {
    fn database(&self) -> &DatabaseName {
        &self.name
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Document
    }

    fn collections(&self) -> Vec<CollectionName> {
        self.db
            .read()
            .collection_names()
            .into_iter()
            .map(|c| CollectionName::new(c).expect("valid collection name"))
            .collect()
    }

    fn execute(&self, query: &str) -> Result<Vec<DataObject>> {
        let q = DocQuery::parse(query).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        if q.verb == QueryVerb::Remove {
            return Err(PolyError::WrongKind {
                database: self.name.to_string(),
                operation: "execute() only runs find/count; use execute_update for remove".into(),
            });
        }
        let collection = q.collection.clone();
        let docs =
            self.db.read().run_read(&q).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        // A count() result is a bare aggregate document without an _id; wrap
        // it under a synthetic key so it still flows through as an object.
        let coll = CollectionName::new(&collection)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let objects: Vec<DataObject> = if q.verb == QueryVerb::Count {
            let key = GlobalKey::parse_parts(self.name.as_str(), &collection, "_count")
                .map_err(|e| PolyError::store(self.name.as_str(), e))?;
            docs.into_iter().map(|d| DataObject::new(key.clone(), d)).collect()
        } else {
            docs.into_iter().map(|d| self.object_from_doc(&coll, d)).collect::<Result<_>>()?
        };
        let bytes = payload_bytes(&objects);
        let cost = self.latency.cost(objects.len(), bytes);
        self.latency.pay(objects.len(), bytes);
        self.stats.record(true, objects.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(objects)
    }

    fn execute_update(&self, statement: &str) -> Result<usize> {
        let docs = self
            .db
            .write()
            .query(statement)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let cost = self.latency.cost(0, 0);
        self.latency.pay(0, 0);
        self.stats.record(true, 0, 0, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(docs.first().and_then(|d| d.get("removed")).and_then(Value::as_int).unwrap_or(0)
            as usize)
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>> {
        let doc = self.db.read().get(collection.as_str(), key.as_str()).cloned();
        let object = match doc {
            None => None,
            Some(d) => Some(self.object_from_doc(collection, d)?),
        };
        let (n, bytes) = object.as_ref().map_or((0, 0), |o| (1, o.approx_size()));
        let cost = self.latency.cost(n, bytes);
        self.latency.pay(n, bytes);
        self.stats.record(false, n, bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(object)
    }

    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>> {
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let docs = self.db.read().multi_get(collection.as_str(), &key_strs);
        let objects: Result<Vec<DataObject>> =
            docs.into_iter().map(|(_, d)| self.object_from_doc(collection, d)).collect();
        let objects = objects?;
        let bytes = payload_bytes(&objects);
        let cost = self.latency.cost(objects.len(), bytes);
        self.latency.pay(objects.len(), bytes);
        self.stats.record(false, objects.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        Ok(objects)
    }

    fn supports_pushdown(&self, _filter: &Pushdown) -> bool {
        true
    }

    fn fetch_where(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        // Path clauses translate to the store's own filter language and run
        // inside the engine; key/root clauses (which the document filter
        // cannot address — `_id` may be an integer whose local key is its
        // decimal rendering) are evaluated on what the engine returns,
        // before anything is charged to the wire.
        let (native, residual) = split_for_doc_filter(filter);
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let (pairs, rejected) =
            self.db.read().multi_get_where(collection.as_str(), &key_strs, &native);
        let mut out = FilteredFetch::default();
        for id in rejected {
            out.rejected
                .push(LocalKey::new(&id).map_err(|e| PolyError::store(self.name.as_str(), e))?);
        }
        for (_, doc) in pairs {
            let object = self.object_from_doc(collection, doc)?;
            if residual.matches(object.key().key().as_str(), object.value()) {
                out.matched.push(object);
            } else {
                out.rejected.push(object.key().key().clone());
            }
        }
        let bytes = payload_bytes(&out.matched);
        let cost = self.latency.cost(out.matched.len(), bytes);
        self.latency.pay(out.matched.len(), bytes);
        self.stats.record(false, out.matched.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        quepa_obs::record_pushdown_latency(self.name.as_str(), cost);
        Ok(out)
    }

    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>> {
        self.execute(&format!("db.{}.find()", collection.as_str()))
    }

    fn object_count(&self) -> usize {
        self.db.read().total_docs()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.stats.record_resilience(retries, timeouts, breaker_trips);
    }
}

/// Splits a pushdown conjunction into the part the document store's filter
/// language can express natively (path clauses; `Filter`'s matcher and
/// [`Pushdown::matches`] share their semantics by construction) and the
/// residual clauses the connector must evaluate itself (key/root clauses,
/// and string operators with non-string literals, which `FieldOp` cannot
/// hold — the canonical evaluator says those match nothing).
fn split_for_doc_filter(filter: &Pushdown) -> (Filter, Pushdown) {
    let mut native = Vec::new();
    let mut residual = Pushdown::default();
    for clause in &filter.clauses {
        let PushField::Path(path) = &clause.field else {
            residual.clauses.push(clause.clone());
            continue;
        };
        let op = match clause.op {
            PushOp::Eq => FieldOp::Eq(clause.literal.clone()),
            PushOp::Ne => FieldOp::Ne(clause.literal.clone()),
            PushOp::Gt => FieldOp::Gt(clause.literal.clone()),
            PushOp::Gte => FieldOp::Gte(clause.literal.clone()),
            PushOp::Lt => FieldOp::Lt(clause.literal.clone()),
            PushOp::Lte => FieldOp::Lte(clause.literal.clone()),
            PushOp::Contains | PushOp::Prefix => {
                let Some(s) = clause.literal.as_str() else {
                    residual.clauses.push(clause.clone());
                    continue;
                };
                if clause.op == PushOp::Contains {
                    FieldOp::Contains(s.to_owned())
                } else {
                    FieldOp::Prefix(s.to_owned())
                }
            }
        };
        native.push(Filter::Field { path: path.clone(), op });
    }
    let native = match native.len() {
        0 => Filter::All,
        1 => native.pop().expect("one clause"),
        _ => Filter::And(native),
    };
    (native, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::text;

    fn connector() -> DocumentConnector {
        let mut db = DocumentDb::new("catalogue");
        db.insert(
            "albums",
            text::parse(r#"{"_id":"d1","title":"Wish","artist":"The Cure","year":1992}"#).unwrap(),
        )
        .unwrap();
        db.insert(
            "albums",
            text::parse(r#"{"_id":"d2","title":"Pablo Honey","artist":"Radiohead","year":1993}"#)
                .unwrap(),
        )
        .unwrap();
        DocumentConnector::new(db, LatencyModel::FREE)
    }

    #[test]
    fn execute_find() {
        let c = connector();
        let objs = c.execute(r#"db.albums.find({"title":{"$like":"%wish%"}})"#).unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].key().to_string(), "catalogue.albums.d1");
    }

    #[test]
    fn execute_count_is_wrapped() {
        let c = connector();
        let objs = c.execute("db.albums.count()").unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].value().get("count").unwrap().as_int(), Some(2));
    }

    #[test]
    fn execute_rejects_remove() {
        let c = connector();
        assert!(matches!(c.execute(r#"db.albums.remove({})"#), Err(PolyError::WrongKind { .. })));
        assert_eq!(c.execute_update(r#"db.albums.remove({"_id":"d2"})"#).unwrap(), 1);
        assert_eq!(c.object_count(), 1);
    }

    #[test]
    fn get_and_multi_get() {
        let c = connector();
        let coll = CollectionName::new("albums").unwrap();
        assert!(c.get(&coll, &LocalKey::new("d1").unwrap()).unwrap().is_some());
        assert!(c.get(&coll, &LocalKey::new("zz").unwrap()).unwrap().is_none());
        let objs = c
            .multi_get(&coll, &[LocalKey::new("d1").unwrap(), LocalKey::new("d2").unwrap()])
            .unwrap();
        assert_eq!(objs.len(), 2);
        assert_eq!(c.stats().round_trips, 3);
    }

    #[test]
    fn metadata() {
        let c = connector();
        assert_eq!(c.kind(), StoreKind::Document);
        assert_eq!(c.collections()[0].as_str(), "albums");
    }
}
