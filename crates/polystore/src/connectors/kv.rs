//! Connector for the key-value store.

use parking_lot::RwLock;
use quepa_kvstore::{KvStore, Reply};
use quepa_pdm::{
    CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, PushField, PushOp, Pushdown,
    Value,
};

use crate::connector::{Connector, FilteredFetch, StoreKind};
use crate::connectors::payload_bytes;
use crate::error::{PolyError, Result};
use crate::net::LatencyModel;
use crate::stats::{ConnectorStats, StatsSnapshot};

/// Wraps a [`KvStore`] as a polystore connector.
///
/// A key-value store has no native notion of collections, so the whole
/// keyspace is exposed as one collection whose name is fixed at
/// construction (the paper's `discount` database exposes `drop`, as in the
/// global key `discount.drop.k1:cure:wish`). Entry values become string
/// data objects.
pub struct KvConnector {
    name: DatabaseName,
    collection: CollectionName,
    store: RwLock<KvStore>,
    latency: LatencyModel,
    stats: ConnectorStats,
}

impl KvConnector {
    /// Creates the connector, exposing the keyspace as `collection`.
    pub fn new(store: KvStore, collection: &str, latency: LatencyModel) -> Self {
        let name = DatabaseName::new(store.name()).expect("valid database name");
        KvConnector {
            name,
            collection: CollectionName::new(collection).expect("valid collection name"),
            store: RwLock::new(store),
            latency,
            stats: ConnectorStats::new(),
        }
    }

    fn object_from_pair(&self, key: &str, value: String) -> Result<DataObject> {
        // Database and collection names are interned at construction; only
        // the local key allocates.
        let local = LocalKey::new(key).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let gk = GlobalKey::new(self.name.clone(), self.collection.clone(), local);
        Ok(DataObject::new(gk, Value::Str(value)))
    }

    fn charge(&self, is_query: bool, objects: &[DataObject]) -> std::time::Duration {
        let bytes = payload_bytes(objects);
        let cost = self.latency.cost(objects.len(), bytes);
        self.latency.pay(objects.len(), bytes);
        self.stats.record(is_query, objects.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        cost
    }
}

impl Connector for KvConnector {
    fn database(&self) -> &DatabaseName {
        &self.name
    }

    fn kind(&self) -> StoreKind {
        StoreKind::KeyValue
    }

    fn collections(&self) -> Vec<CollectionName> {
        vec![self.collection.clone()]
    }

    fn execute(&self, query: &str) -> Result<Vec<DataObject>> {
        let reply = self
            .store
            .write()
            .execute(query)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let objects = match reply {
            Reply::Ok => Vec::new(),
            Reply::Int(n) => {
                // Numeric replies (EXISTS/DBSIZE/DEL) surface as a synthetic
                // scalar object so they still flow through uniformly.
                let gk =
                    GlobalKey::parse_parts(self.name.as_str(), self.collection.as_str(), "_int")
                        .map_err(|e| PolyError::store(self.name.as_str(), e))?;
                vec![DataObject::new(gk, Value::Int(n))]
            }
            Reply::Value(v) => match v {
                None => Vec::new(),
                Some(v) => {
                    // GET's reply does not echo the key; re-derive it from
                    // the command so the object is addressable.
                    let key = query
                        .split_whitespace()
                        .nth(1)
                        .ok_or_else(|| PolyError::store(self.name.as_str(), "GET without key"))?;
                    vec![self.object_from_pair(key, v)?]
                }
            },
            Reply::Pairs(pairs) => pairs
                .into_iter()
                .map(|(k, v)| self.object_from_pair(&k, v))
                .collect::<Result<_>>()?,
        };
        self.charge(true, &objects);
        Ok(objects)
    }

    fn execute_update(&self, statement: &str) -> Result<usize> {
        let reply = self
            .store
            .write()
            .execute(statement)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        self.latency.pay(0, 0);
        self.stats.record(true, 0, 0, self.latency.cost(0, 0));
        Ok(match reply {
            Reply::Int(n) => n.max(0) as usize,
            Reply::Ok => 1,
            _ => 0,
        })
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>> {
        self.check_collection(collection)?;
        let value = self.store.read().get(key.as_str()).map(str::to_owned);
        let object = match value {
            None => None,
            Some(v) => Some(self.object_from_pair(key.as_str(), v)?),
        };
        match &object {
            Some(o) => self.charge(false, std::slice::from_ref(o)),
            None => self.charge(false, &[]),
        };
        Ok(object)
    }

    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>> {
        self.check_collection(collection)?;
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let pairs = self.store.read().multi_get(&key_strs);
        let objects: Result<Vec<DataObject>> =
            pairs.into_iter().map(|(k, v)| self.object_from_pair(&k, v)).collect();
        let objects = objects?;
        self.charge(false, &objects);
        Ok(objects)
    }

    fn supports_pushdown(&self, _filter: &Pushdown) -> bool {
        true
    }

    fn fetch_where(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        self.check_collection(collection)?;
        // An exact root-value equality is served straight from the store's
        // secondary value index; anything else evaluates the canonical
        // predicate per entry — in both cases inside the store, so only
        // matches are charged to the wire.
        let value_eq = match filter.clauses.as_slice() {
            [c] if c.field == PushField::Value && c.op == PushOp::Eq => c.literal.as_str(),
            _ => None,
        };
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let store = self.store.read();
        let (pairs, rejected) = store.multi_get_where(&key_strs, value_eq, &|k, v| {
            // Borrow-free shim: evaluate the shared predicate over the
            // entry rendered exactly as `object_from_pair` would.
            filter.matches(k, &Value::str(v))
        });
        drop(store);
        let mut out = FilteredFetch::default();
        for id in rejected {
            out.rejected
                .push(LocalKey::new(&id).map_err(|e| PolyError::store(self.name.as_str(), e))?);
        }
        for (k, v) in pairs {
            out.matched.push(self.object_from_pair(&k, v)?);
        }
        let cost = self.charge(false, &out.matched);
        quepa_obs::record_pushdown_latency(self.name.as_str(), cost);
        Ok(out)
    }

    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>> {
        self.check_collection(collection)?;
        self.execute("SCAN \"\"")
    }

    fn object_count(&self) -> usize {
        self.store.read().len()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.stats.record_resilience(retries, timeouts, breaker_trips);
    }
}

impl KvConnector {
    fn check_collection(&self, collection: &CollectionName) -> Result<()> {
        if collection == &self.collection {
            Ok(())
        } else {
            Err(PolyError::UnknownCollection {
                database: self.name.to_string(),
                collection: collection.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connector() -> KvConnector {
        let mut kv = KvStore::new("discount");
        kv.set("k1:cure:wish", "40%");
        kv.set("k2:cure:faith", "10%");
        KvConnector::new(kv, "drop", LatencyModel::FREE)
    }

    #[test]
    fn execute_get() {
        let c = connector();
        let objs = c.execute("GET k1:cure:wish").unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].key().to_string(), "discount.drop.k1:cure:wish");
        assert_eq!(objs[0].value().as_str(), Some("40%"));
        assert!(c.execute("GET missing").unwrap().is_empty());
    }

    #[test]
    fn execute_scan_and_mget() {
        let c = connector();
        assert_eq!(c.execute("SCAN k").unwrap().len(), 2);
        assert_eq!(c.execute("MGET k1:cure:wish k2:cure:faith nope").unwrap().len(), 2);
    }

    #[test]
    fn execute_int_reply() {
        let c = connector();
        let objs = c.execute("DBSIZE").unwrap();
        assert_eq!(objs[0].value().as_int(), Some(2));
    }

    #[test]
    fn update_and_lazy_missing() {
        let c = connector();
        assert_eq!(c.execute_update("DEL k1:cure:wish").unwrap(), 1);
        let coll = CollectionName::new("drop").unwrap();
        assert!(c.get(&coll, &LocalKey::new("k1:cure:wish").unwrap()).unwrap().is_none());
    }

    #[test]
    fn get_checks_collection() {
        let c = connector();
        let bad = CollectionName::new("other").unwrap();
        assert!(matches!(
            c.get(&bad, &LocalKey::new("k").unwrap()),
            Err(PolyError::UnknownCollection { .. })
        ));
    }

    #[test]
    fn dotted_keys_roundtrip_through_global_keys() {
        let c = connector();
        let coll = CollectionName::new("drop").unwrap();
        let obj = c.get(&coll, &LocalKey::new("k2:cure:faith").unwrap()).unwrap().unwrap();
        let reparsed: GlobalKey = obj.key().to_string().parse().unwrap();
        assert_eq!(&reparsed, obj.key());
    }

    #[test]
    fn metadata() {
        let c = connector();
        assert_eq!(c.kind(), StoreKind::KeyValue);
        assert_eq!(c.object_count(), 2);
        assert_eq!(c.collections().len(), 1);
    }
}
