//! Connector for the property-graph store.

use parking_lot::RwLock;
use quepa_graphstore::{GraphDb, Node};
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Pushdown};

use crate::connector::{Connector, FilteredFetch, StoreKind};
use crate::connectors::payload_bytes;
use crate::error::{PolyError, Result};
use crate::net::LatencyModel;
use crate::stats::{ConnectorStats, StatsSnapshot};

/// Wraps a [`GraphDb`] as a polystore connector.
///
/// Node labels play the role of collections (`similar.songs.s1`-style
/// global keys use the lowercased label as the collection segment), and a
/// node's id is its local key.
pub struct GraphConnector {
    name: DatabaseName,
    db: RwLock<GraphDb>,
    latency: LatencyModel,
    stats: ConnectorStats,
}

impl GraphConnector {
    /// Creates the connector.
    pub fn new(db: GraphDb, latency: LatencyModel) -> Self {
        let name = DatabaseName::new(db.name()).expect("valid database name");
        GraphConnector { name, db: RwLock::new(db), latency, stats: ConnectorStats::new() }
    }

    fn object_from_node(&self, node: &Node) -> Result<DataObject> {
        let collection = node.label.to_lowercase();
        let coll = CollectionName::new(&collection)
            .map_err(|e| PolyError::store(self.name.as_str(), e))?;
        self.object_from_node_in(&coll, node)
    }

    /// Builds an object from a node whose collection (lowercased label) is
    /// already interned — the per-object cost is just the local key.
    fn object_from_node_in(&self, collection: &CollectionName, node: &Node) -> Result<DataObject> {
        let local = LocalKey::new(&node.id).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let key = GlobalKey::new(self.name.clone(), collection.clone(), local);
        Ok(DataObject::new(key, node.to_value()))
    }

    fn charge(&self, is_query: bool, objects: &[DataObject]) -> std::time::Duration {
        let bytes = payload_bytes(objects);
        let cost = self.latency.cost(objects.len(), bytes);
        self.latency.pay(objects.len(), bytes);
        self.stats.record(is_query, objects.len(), bytes, cost);
        quepa_obs::record_link_event(self.name.as_str(), cost);
        cost
    }
}

impl Connector for GraphConnector {
    fn database(&self) -> &DatabaseName {
        &self.name
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Graph
    }

    fn collections(&self) -> Vec<CollectionName> {
        let db = self.db.read();
        let mut labels: Vec<String> = db.all_nodes().map(|n| n.label.to_lowercase()).collect();
        labels.sort();
        labels.dedup();
        labels.into_iter().map(|l| CollectionName::new(l).expect("valid label")).collect()
    }

    fn execute(&self, query: &str) -> Result<Vec<DataObject>> {
        let db = self.db.read();
        let nodes = db.query(query).map_err(|e| PolyError::store(self.name.as_str(), e))?;
        let objects: Result<Vec<DataObject>> =
            nodes.iter().map(|n| self.object_from_node(n)).collect();
        drop(db);
        let objects = objects?;
        self.charge(true, &objects);
        Ok(objects)
    }

    fn execute_update(&self, statement: &str) -> Result<usize> {
        // The Cypher subset is read-only; the one mutation the polystore
        // layer needs (exercising lazy deletion) is `DELETE NODE <id>`.
        let parts: Vec<&str> = statement.split_whitespace().collect();
        match parts.as_slice() {
            [del, node, id]
                if del.eq_ignore_ascii_case("DELETE") && node.eq_ignore_ascii_case("NODE") =>
            {
                let removed = self.db.write().remove_node(id);
                self.latency.pay(0, 0);
                self.stats.record(true, 0, 0, self.latency.cost(0, 0));
                Ok(usize::from(removed))
            }
            _ => Err(PolyError::WrongKind {
                database: self.name.to_string(),
                operation: "graph updates support only `DELETE NODE <id>`".into(),
            }),
        }
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>> {
        let db = self.db.read();
        let object = match db.get(key.as_str()) {
            Some(node) if node.label.to_lowercase() == collection.as_str() => {
                Some(self.object_from_node_in(collection, node)?)
            }
            _ => None,
        };
        drop(db);
        match &object {
            Some(o) => self.charge(false, std::slice::from_ref(o)),
            None => self.charge(false, &[]),
        };
        Ok(object)
    }

    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>> {
        let db = self.db.read();
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        let objects: Result<Vec<DataObject>> = db
            .multi_get(&key_strs)
            .into_iter()
            .filter(|n| n.label.to_lowercase() == collection.as_str())
            .map(|n| self.object_from_node_in(collection, n))
            .collect();
        drop(db);
        let objects = objects?;
        self.charge(false, &objects);
        Ok(objects)
    }

    fn supports_pushdown(&self, _filter: &Pushdown) -> bool {
        true
    }

    fn fetch_where(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        let db = self.db.read();
        let key_strs: Vec<&str> = keys.iter().map(LocalKey::as_str).collect();
        // The traversal filter: label *and* predicate are applied at the
        // node before it leaves the store. A node under a different label
        // is invisible to this collection (same as `multi_get`), so it is
        // dropped from the rejected list too — to the caller it is simply
        // not here, not filtered-out.
        let (nodes, rejected) = db.multi_get_where(&key_strs, &|n: &Node| {
            n.label.to_lowercase() == collection.as_str() && filter.matches(&n.id, &n.to_value())
        });
        let mut out = FilteredFetch::default();
        for node in nodes {
            out.matched.push(self.object_from_node_in(collection, node)?);
        }
        for id in rejected {
            let visible =
                db.get(&id).is_some_and(|n| n.label.to_lowercase() == collection.as_str());
            if visible {
                out.rejected.push(
                    LocalKey::new(&id).map_err(|e| PolyError::store(self.name.as_str(), e))?,
                );
            }
        }
        drop(db);
        let cost = self.charge(false, &out.matched);
        quepa_obs::record_pushdown_latency(self.name.as_str(), cost);
        Ok(out)
    }

    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>> {
        let db = self.db.read();
        let objects: Result<Vec<DataObject>> = db
            .all_nodes()
            .filter(|n| n.label.to_lowercase() == collection.as_str())
            .map(|n| self.object_from_node(n))
            .collect();
        drop(db);
        let objects = objects?;
        self.charge(true, &objects);
        Ok(objects)
    }

    fn object_count(&self) -> usize {
        self.db.read().node_count()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.stats.record_resilience(retries, timeouts, breaker_trips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::Value;

    fn connector() -> GraphConnector {
        let mut g = GraphDb::new("similar");
        g.add_node("s1", "Song", [("title", Value::str("Apart"))]).unwrap();
        g.add_node("s2", "Song", [("title", Value::str("Elise"))]).unwrap();
        g.add_node("a1", "Album", [("title", Value::str("Wish"))]).unwrap();
        g.add_edge("s1", "s2", "SIMILAR").unwrap();
        GraphConnector::new(g, LatencyModel::FREE)
    }

    #[test]
    fn execute_pattern_query() {
        let c = connector();
        let objs = c.execute("MATCH (n {id: 's1'})-[:SIMILAR]->(m) RETURN m").unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].key().to_string(), "similar.song.s2");
        assert_eq!(objs[0].value().get("_label").unwrap().as_str(), Some("Song"));
    }

    #[test]
    fn get_respects_label_as_collection() {
        let c = connector();
        let songs = CollectionName::new("song").unwrap();
        let albums = CollectionName::new("album").unwrap();
        assert!(c.get(&songs, &LocalKey::new("s1").unwrap()).unwrap().is_some());
        assert!(c.get(&albums, &LocalKey::new("s1").unwrap()).unwrap().is_none());
        assert!(c.get(&albums, &LocalKey::new("a1").unwrap()).unwrap().is_some());
    }

    #[test]
    fn multi_get_filters_by_collection() {
        let c = connector();
        let songs = CollectionName::new("song").unwrap();
        let got = c
            .multi_get(
                &songs,
                &[
                    LocalKey::new("s1").unwrap(),
                    LocalKey::new("a1").unwrap(),
                    LocalKey::new("zz").unwrap(),
                ],
            )
            .unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn collections_are_lowercased_labels() {
        let c = connector();
        let names: Vec<String> = c.collections().iter().map(|c| c.to_string()).collect();
        assert_eq!(names, vec!["album", "song"]);
    }

    #[test]
    fn updates_rejected_except_delete_node() {
        let c = connector();
        assert!(matches!(c.execute_update("whatever"), Err(PolyError::WrongKind { .. })));
        assert_eq!(c.execute_update("DELETE NODE s2").unwrap(), 1);
        assert_eq!(c.execute_update("DELETE NODE s2").unwrap(), 0);
        let songs = CollectionName::new("song").unwrap();
        assert!(c.get(&songs, &LocalKey::new("s2").unwrap()).unwrap().is_none());
        assert_eq!(c.object_count(), 2);
    }
}
