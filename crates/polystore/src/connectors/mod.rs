//! Concrete connectors for the four engines of the Polyphony scenario.
//!
//! Every connector owns its engine behind a `parking_lot::RwLock` (reads
//! dominate; the concurrent augmenters issue lookups from many threads),
//! charges the configured [`LatencyModel`](crate::net::LatencyModel) for
//! each round trip, and records [`ConnectorStats`](crate::stats).

mod document;
mod graph;
mod kv;
mod relational;

pub use document::DocumentConnector;
pub use graph::GraphConnector;
pub use kv::KvConnector;
pub use relational::RelationalConnector;

use quepa_pdm::DataObject;

/// Sums the approximate payload size of a batch of objects.
pub(crate) fn payload_bytes(objects: &[DataObject]) -> usize {
    objects.iter().map(DataObject::approx_size).sum()
}
