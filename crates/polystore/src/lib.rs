//! # quepa-polystore — connectors, registry and the simulated deployment
//!
//! This crate is QUEPA's window onto the polystore (paper §III-A):
//!
//! * the [`Connector`] trait — "each connector is able to communicate with a
//!   specific database system by sending queries in the local language and
//!   returning the result. Data objects are parsed into an internal
//!   representation" (the PDM [`DataObject`](quepa_pdm::DataObject));
//! * concrete connectors for the four engines of the Polyphony scenario
//!   ([`connectors`]);
//! * the [`Polystore`] registry routing by database name;
//! * a deterministic **network cost model** ([`net`]) reproducing the
//!   paper's centralized / distributed EC2 deployments at microsecond scale
//!   (1000× shrunk), so batching and parallelism keep their first-order
//!   effects: `cost = roundtrips × RTT + objects × transfer`;
//! * per-connector [`stats`] (queries, round trips, objects moved, and the
//!   resilience counters: retries, timeouts, breaker trips), which the
//!   experiments report;
//! * the resilience layer: a deterministic, seeded [`fault`] plan that
//!   wraps any connector to inject transient errors, latency spikes,
//!   timeouts and whole-store outages from a reproducible schedule, and
//!   the [`retry`] policies (exponential backoff with deterministic
//!   jitter, per-round-trip deadlines, per-store circuit breakers) that
//!   ride them out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connector;
pub mod connectors;
pub mod error;
pub mod fault;
pub mod net;
pub mod polystore;
pub mod retry;
pub mod stats;

pub use connector::{Connector, FilteredFetch, PushdownGate, StoreKind};
pub use connectors::{DocumentConnector, GraphConnector, KvConnector, RelationalConnector};
pub use error::{PolyError, Result};
pub use fault::{FaultDecision, FaultPlan, FaultyConnector};
pub use net::{Deployment, LatencyModel};
pub use polystore::Polystore;
pub use retry::{
    BreakerConfig, BreakerSet, BreakerState, CircuitBreaker, RetryPolicy, RoundTripReport,
};
pub use stats::{ConnectorStats, StatsSnapshot};
