//! The connector abstraction (paper §III-A).

use quepa_pdm::{CollectionName, DataObject, DatabaseName, LocalKey};

use crate::error::Result;
use crate::stats::StatsSnapshot;

/// The paradigm of the underlying engine. QUEPA never branches on this for
/// semantics — it only surfaces in statistics and in the adaptive
/// optimizer's feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StoreKind {
    /// SQL engine (MySQL in the paper).
    Relational,
    /// Document store (MongoDB).
    Document,
    /// Key-value store (Redis).
    KeyValue,
    /// Property graph (Neo4j).
    Graph,
}

impl StoreKind {
    /// Short name for logs and experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Relational => "relational",
            StoreKind::Document => "document",
            StoreKind::KeyValue => "key-value",
            StoreKind::Graph => "graph",
        }
    }
}

/// A connector: QUEPA's only channel to one database of the polystore.
///
/// Two access paths exist, mirroring the paper's execution model:
///
/// * [`execute`](Connector::execute) — a query *in the store's native
///   language* (SQL, Mongo-shell, Redis commands, Cypher), used for the
///   user's original query. Results are parsed into [`DataObject`]s.
/// * [`get`](Connector::get) / [`multi_get`](Connector::multi_get) —
///   key-based direct access, used by the augmenters to retrieve the
///   objects the A' index points at (`multi_get` is one round trip for a
///   whole batch: the BATCH augmenter's lever).
///
/// Implementations are `Send + Sync`: the concurrent augmenters call them
/// from worker threads.
pub trait Connector: Send + Sync {
    /// The database this connector serves.
    fn database(&self) -> &DatabaseName;

    /// The engine paradigm.
    fn kind(&self) -> StoreKind;

    /// The collections the database exposes.
    fn collections(&self) -> Vec<CollectionName>;

    /// Runs a native-language *read* query.
    fn execute(&self, query: &str) -> Result<Vec<DataObject>>;

    /// Runs a native-language *update* (DML) statement, returning how many
    /// objects were affected. Used by loaders and deletion tests.
    fn execute_update(&self, statement: &str) -> Result<usize>;

    /// Point lookup. `Ok(None)` means the object is gone — the signal the
    /// A' index's lazy deletion listens for.
    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>>;

    /// Batched lookup: one round trip for all `keys` in one collection.
    /// Missing keys are silently skipped (their absence is reported by the
    /// caller comparing lengths).
    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>>;

    /// Dumps every object of one collection — the Collector's ingest path
    /// (record linkage needs to see the data). Charged like one big query.
    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>>;

    /// Approximate number of stored objects (for experiment reporting).
    fn object_count(&self) -> usize;

    /// Snapshot of this connector's access statistics.
    fn stats(&self) -> StatsSnapshot;

    /// Resets the statistics.
    fn reset_stats(&self);

    /// Hook for the resilience layer: attributes retry / timeout /
    /// breaker-trip events from one round trip to this connector's
    /// statistics. The default is a no-op so plain test doubles need not
    /// care; real connectors forward to their
    /// [`ConnectorStats`](crate::stats::ConnectorStats).
    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        let _ = (retries, timeouts, breaker_trips);
    }

    /// Hook for the durability layer: asks the store to make its own
    /// pending writes durable before QUEPA acknowledges a commit that
    /// spans this store (flush, fsync, acknowledge — the classic
    /// `commit_transaction` shape). Returns whether the connector
    /// actually persisted anything; the default `Ok(false)` suits the
    /// in-memory reference stores, which have nothing to flush.
    fn commit_durable(&self) -> Result<bool> {
        Ok(false)
    }
}
