//! The connector abstraction (paper §III-A).

use quepa_pdm::{CollectionName, DataObject, DatabaseName, LocalKey, Pushdown};

use crate::error::Result;
use crate::stats::StatsSnapshot;

/// Result of a filtered keyed fetch ([`Connector::fetch_where`]).
///
/// The three-way outcome per requested key is what the augmenter's lazy
/// deletion depends on: keys in `matched` were fetched, keys in `rejected`
/// *exist* but fail the predicate (they must be silently excluded — not
/// treated as missing), and keys in neither list are genuinely gone from
/// the store (the lazy-deletion signal).
#[derive(Debug, Clone, Default)]
pub struct FilteredFetch {
    /// The objects that exist and satisfy the predicate.
    pub matched: Vec<DataObject>,
    /// Keys whose object exists but fails the predicate.
    pub rejected: Vec<LocalKey>,
}

/// The paradigm of the underlying engine. QUEPA never branches on this for
/// semantics — it only surfaces in statistics and in the adaptive
/// optimizer's feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StoreKind {
    /// SQL engine (MySQL in the paper).
    Relational,
    /// Document store (MongoDB).
    Document,
    /// Key-value store (Redis).
    KeyValue,
    /// Property graph (Neo4j).
    Graph,
}

impl StoreKind {
    /// Short name for logs and experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Relational => "relational",
            StoreKind::Document => "document",
            StoreKind::KeyValue => "key-value",
            StoreKind::Graph => "graph",
        }
    }
}

/// A connector: QUEPA's only channel to one database of the polystore.
///
/// Two access paths exist, mirroring the paper's execution model:
///
/// * [`execute`](Connector::execute) — a query *in the store's native
///   language* (SQL, Mongo-shell, Redis commands, Cypher), used for the
///   user's original query. Results are parsed into [`DataObject`]s.
/// * [`get`](Connector::get) / [`multi_get`](Connector::multi_get) —
///   key-based direct access, used by the augmenters to retrieve the
///   objects the A' index points at (`multi_get` is one round trip for a
///   whole batch: the BATCH augmenter's lever).
///
/// Implementations are `Send + Sync`: the concurrent augmenters call them
/// from worker threads.
pub trait Connector: Send + Sync {
    /// The database this connector serves.
    fn database(&self) -> &DatabaseName;

    /// The engine paradigm.
    fn kind(&self) -> StoreKind;

    /// The collections the database exposes.
    fn collections(&self) -> Vec<CollectionName>;

    /// Runs a native-language *read* query.
    fn execute(&self, query: &str) -> Result<Vec<DataObject>>;

    /// Runs a native-language *update* (DML) statement, returning how many
    /// objects were affected. Used by loaders and deletion tests.
    fn execute_update(&self, statement: &str) -> Result<usize>;

    /// Point lookup. `Ok(None)` means the object is gone — the signal the
    /// A' index's lazy deletion listens for.
    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>>;

    /// Batched lookup: one round trip for all `keys` in one collection.
    /// Missing keys are silently skipped (their absence is reported by the
    /// caller comparing lengths).
    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>>;

    /// Whether this connector can evaluate `filter` natively (the planner
    /// asks before choosing the PUSHDOWN strategy). The default declines
    /// everything; the caller then falls back to
    /// [`multi_get`](Connector::multi_get) plus client-side filtering.
    fn supports_pushdown(&self, filter: &Pushdown) -> bool {
        let _ = filter;
        false
    }

    /// Filtered batched lookup: one round trip that fetches `keys` and
    /// applies `filter` *inside the store*, so only matching objects cross
    /// the wire. The semantics of the filter are fixed by
    /// [`Pushdown::matches`]; native implementations must agree with it
    /// exactly (the check harness diffs the two paths bit-for-bit).
    ///
    /// The default implementation is the fetch-all fallback: a plain
    /// `multi_get` followed by client-side evaluation — correct for any
    /// connector, just without the wire saving.
    fn fetch_where(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        let objects = self.multi_get(collection, keys)?;
        let mut out = FilteredFetch::default();
        for o in objects {
            if filter.matches(o.key().key().as_str(), o.value()) {
                out.matched.push(o);
            } else {
                out.rejected.push(o.key().key().clone());
            }
        }
        Ok(out)
    }

    /// Dumps every object of one collection — the Collector's ingest path
    /// (record linkage needs to see the data). Charged like one big query.
    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>>;

    /// Approximate number of stored objects (for experiment reporting).
    fn object_count(&self) -> usize;

    /// Snapshot of this connector's access statistics.
    fn stats(&self) -> StatsSnapshot;

    /// Resets the statistics.
    fn reset_stats(&self);

    /// Hook for the resilience layer: attributes retry / timeout /
    /// breaker-trip events from one round trip to this connector's
    /// statistics. The default is a no-op so plain test doubles need not
    /// care; real connectors forward to their
    /// [`ConnectorStats`](crate::stats::ConnectorStats).
    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        let _ = (retries, timeouts, breaker_trips);
    }

    /// Hook for the durability layer: asks the store to make its own
    /// pending writes durable before QUEPA acknowledges a commit that
    /// spans this store (flush, fsync, acknowledge — the classic
    /// `commit_transaction` shape). Returns whether the connector
    /// actually persisted anything; the default `Ok(false)` suits the
    /// in-memory reference stores, which have nothing to flush.
    fn commit_durable(&self) -> Result<bool> {
        Ok(false)
    }
}

/// A wrapper hiding the inner connector's native pushdown support: the
/// planner sees a store that declines every filter and falls back to
/// fetch-all with client-side evaluation. Everything else delegates
/// untouched ([`fetch_where`](Connector::fetch_where) deliberately keeps
/// the *default* fallback body over the delegated `multi_get`, so even a
/// direct call never reaches the native path).
///
/// The check harness toggles pushdown per store with this (answers must
/// be bit-identical either way); it is also handy for A/B measurements.
pub struct PushdownGate {
    inner: std::sync::Arc<dyn Connector>,
}

impl PushdownGate {
    /// Gates `inner`: same store, no native pushdown.
    pub fn new(inner: std::sync::Arc<dyn Connector>) -> Self {
        PushdownGate { inner }
    }
}

impl Connector for PushdownGate {
    fn database(&self) -> &DatabaseName {
        self.inner.database()
    }

    fn kind(&self) -> StoreKind {
        self.inner.kind()
    }

    fn collections(&self) -> Vec<CollectionName> {
        self.inner.collections()
    }

    fn execute(&self, query: &str) -> Result<Vec<DataObject>> {
        self.inner.execute(query)
    }

    fn execute_update(&self, statement: &str) -> Result<usize> {
        self.inner.execute_update(statement)
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>> {
        self.inner.get(collection, key)
    }

    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>> {
        self.inner.multi_get(collection, keys)
    }

    fn supports_pushdown(&self, _filter: &Pushdown) -> bool {
        false
    }

    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>> {
        self.inner.scan_collection(collection)
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.inner.record_resilience(retries, timeouts, breaker_trips)
    }

    fn commit_durable(&self) -> Result<bool> {
        self.inner.commit_durable()
    }
}
