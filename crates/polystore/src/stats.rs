//! Per-connector access statistics.
//!
//! Counters are atomics so the concurrent augmenters (paper §IV-B) can
//! update them without locking; the experiments read them to report
//! round-trip savings from batching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cumulative access statistics of one connector.
#[derive(Debug, Default)]
pub struct ConnectorStats {
    queries: AtomicU64,
    round_trips: AtomicU64,
    objects_returned: AtomicU64,
    bytes_returned: AtomicU64,
    simulated_network_nanos: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    breaker_trips: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Native-language queries executed.
    pub queries: u64,
    /// Round trips to the store (each query or batched lookup is one).
    pub round_trips: u64,
    /// Data objects shipped back.
    pub objects_returned: u64,
    /// Approximate payload bytes shipped back.
    pub bytes_returned: u64,
    /// Total simulated network wall time.
    pub simulated_network: Duration,
    /// Retried round trips (attempts beyond the first) by the resilience
    /// layer.
    pub retries: u64,
    /// Round trips that timed out (injected or measured).
    pub timeouts: u64,
    /// Circuit-breaker trips (closed → open, including failed probes).
    pub breaker_trips: u64,
}

impl ConnectorStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round trip returning `objects` objects of `bytes` total,
    /// with the given simulated network cost. `is_query` distinguishes
    /// native-language queries from key-based lookups.
    pub fn record(&self, is_query: bool, objects: usize, bytes: usize, network: Duration) {
        if is_query {
            self.queries.fetch_add(1, Ordering::Relaxed);
        }
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.objects_returned.fetch_add(objects as u64, Ordering::Relaxed);
        self.bytes_returned.fetch_add(bytes as u64, Ordering::Relaxed);
        self.simulated_network_nanos.fetch_add(network.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records resilience events from one round trip: `retries` extra
    /// attempts, `timeouts` overran deadlines, `breaker_trips` breaker
    /// openings. All-zero calls are skipped by the callers, keeping the
    /// happy path free of these counters.
    pub fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
        }
        if timeouts > 0 {
            self.timeouts.fetch_add(timeouts, Ordering::Relaxed);
        }
        if breaker_trips > 0 {
            self.breaker_trips.fetch_add(breaker_trips, Ordering::Relaxed);
        }
    }

    /// Takes a snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            round_trips: self.round_trips.load(Ordering::Relaxed),
            objects_returned: self.objects_returned.load(Ordering::Relaxed),
            bytes_returned: self.bytes_returned.load(Ordering::Relaxed),
            simulated_network: Duration::from_nanos(
                self.simulated_network_nanos.load(Ordering::Relaxed),
            ),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (between experiment runs).
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.round_trips.store(0, Ordering::Relaxed);
        self.objects_returned.store(0, Ordering::Relaxed);
        self.bytes_returned.store(0, Ordering::Relaxed);
        self.simulated_network_nanos.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.breaker_trips.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Sums two snapshots (aggregation across stores).
    pub fn merge(self, other: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries + other.queries,
            round_trips: self.round_trips + other.round_trips,
            objects_returned: self.objects_returned + other.objects_returned,
            bytes_returned: self.bytes_returned + other.bytes_returned,
            simulated_network: self.simulated_network + other.simulated_network,
            retries: self.retries + other.retries,
            timeouts: self.timeouts + other.timeouts,
            breaker_trips: self.breaker_trips + other.breaker_trips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = ConnectorStats::new();
        s.record(true, 10, 1000, Duration::from_micros(5));
        s.record(false, 3, 300, Duration::from_micros(2));
        let snap = s.snapshot();
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.round_trips, 2);
        assert_eq!(snap.objects_returned, 13);
        assert_eq!(snap.bytes_returned, 1300);
        assert_eq!(snap.simulated_network, Duration::from_micros(7));
    }

    #[test]
    fn reset_zeroes() {
        let s = ConnectorStats::new();
        s.record(true, 1, 1, Duration::from_micros(1));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn merge_adds() {
        let a = StatsSnapshot {
            queries: 1,
            round_trips: 2,
            objects_returned: 3,
            bytes_returned: 4,
            simulated_network: Duration::from_micros(5),
            retries: 6,
            timeouts: 7,
            breaker_trips: 8,
        };
        let m = a.merge(a);
        assert_eq!(m.queries, 2);
        assert_eq!(m.objects_returned, 6);
        assert_eq!(m.simulated_network, Duration::from_micros(10));
        assert_eq!(m.retries, 12);
        assert_eq!(m.timeouts, 14);
        assert_eq!(m.breaker_trips, 16);
    }

    #[test]
    fn resilience_counters_record_and_reset() {
        let s = ConnectorStats::new();
        s.record_resilience(3, 1, 0);
        s.record_resilience(0, 0, 1);
        let snap = s.snapshot();
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.breaker_trips, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let s = Arc::new(ConnectorStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(true, 1, 10, Duration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().queries, 8000);
        assert_eq!(s.snapshot().objects_returned, 8000);
    }
}
