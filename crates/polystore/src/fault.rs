//! Deterministic fault injection: seeded chaos for the polystore links.
//!
//! A [`FaultPlan`] is a *reproducible schedule* of failures — transient
//! errors, latency spikes, timeouts and whole-store outages — derived
//! entirely from a seed and the **identity** of each call (database,
//! collection, keys) via xorshift streams. Nothing depends on wall-clock
//! time or on the order threads happen to issue calls, so a chaos run
//! under the concurrent augmenters replays bit-identically: the same
//! seed yields the same faults on the same keys, whatever the
//! interleaving.
//!
//! [`FaultyConnector`] wraps any [`Connector`] with a plan and the link's
//! [`LatencyModel`]. Faulted calls **pay their (deterministic) network
//! latency before erroring** — a refused connection still burns a round
//! trip on the wire, and timeout semantics are only testable when the
//! time is spent first (see the order-pinning test below).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use quepa_pdm::{CollectionName, DataObject, DatabaseName, LocalKey, Pushdown};

use crate::connector::{Connector, FilteredFetch, StoreKind};
use crate::error::{PolyError, Result};
use crate::net::LatencyModel;
use crate::stats::StatsSnapshot;

/// What the plan decided for one call attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The call proceeds normally.
    Healthy,
    /// The call proceeds, but only after an extra latency spike.
    Spike(Duration),
    /// The call fails with a transient store error (retryable).
    Transient,
    /// The call times out: latency is paid, then [`PolyError::Timeout`].
    Timeout,
    /// The store is down: every call fails with [`PolyError::Unavailable`].
    Down,
}

/// A seeded, reproducible fault schedule.
///
/// Faults are pure functions of `(seed, database, call identity,
/// attempt)`:
///
/// * **Transient faults** are drawn *per identity*: a faulted identity
///   fails its first `streak` attempts (streak drawn deterministically in
///   `1..=max_transient_streak`) and then succeeds — so a retry policy
///   with enough attempts rides out the fault, and whether it does is
///   itself deterministic.
/// * **Timeouts** and **latency spikes** are drawn *per (identity,
///   attempt)*, so retries may escape them.
/// * **Outages** are per database and unconditional.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    max_transient_streak: u32,
    timeout_rate: f64,
    spike_rate: f64,
    spike: Duration,
    outages: BTreeSet<String>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, max_transient_streak: 1, ..FaultPlan::default() }
    }

    /// Enables transient faults: each call identity fails with
    /// probability `rate`, for a streak of `1..=max_streak` attempts.
    #[must_use]
    pub fn with_transient_faults(mut self, rate: f64, max_streak: u32) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self.max_transient_streak = max_streak.max(1);
        self
    }

    /// Enables injected timeouts with per-attempt probability `rate`.
    #[must_use]
    pub fn with_timeouts(mut self, rate: f64) -> Self {
        self.timeout_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Enables latency spikes of `spike` extra wall time with per-attempt
    /// probability `rate`.
    #[must_use]
    pub fn with_latency_spikes(mut self, rate: f64, spike: Duration) -> Self {
        self.spike_rate = rate.clamp(0.0, 1.0);
        self.spike = spike;
        self
    }

    /// Marks `database` as fully down: every call against it fails.
    #[must_use]
    pub fn with_outage(mut self, database: &str) -> Self {
        self.outages.insert(database.to_owned());
        self
    }

    /// True when `database` is scheduled as down.
    pub fn is_down(&self, database: &str) -> bool {
        self.outages.contains(database)
    }

    /// The decision for attempt `attempt` of the call identified by
    /// `identity` against `database`. Pure: no state, no clock.
    pub fn decide(&self, database: &str, identity: u64, attempt: u32) -> FaultDecision {
        if self.is_down(database) {
            return FaultDecision::Down;
        }
        // Per-identity stream: the transient draw and its streak length.
        let mut id_stream = Xorshift::new(mix(self.seed, mix(fnv(database.as_bytes()), identity)));
        let transient_draw = id_stream.unit();
        let streak = 1 + (id_stream.next() % self.max_transient_streak.max(1) as u64) as u32;
        if self.transient_rate > 0.0 && transient_draw < self.transient_rate && attempt < streak {
            return FaultDecision::Transient;
        }
        // Per-attempt stream: timeouts and spikes can differ across
        // retries of the same identity.
        let mut attempt_stream = Xorshift::new(mix(id_stream.next(), attempt as u64));
        if self.timeout_rate > 0.0 && attempt_stream.unit() < self.timeout_rate {
            return FaultDecision::Timeout;
        }
        if self.spike_rate > 0.0 && attempt_stream.unit() < self.spike_rate {
            return FaultDecision::Spike(self.spike);
        }
        FaultDecision::Healthy
    }
}

/// FNV-1a over raw bytes — the identity hash primitive.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer combining two words.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xorshift64* stream (the ISSUE-mandated generator): small, seedable,
/// and with no global or wall-clock state.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The stable identity of one key-based round trip: an FNV-1a hash of
/// the collection plus every key, independent of thread interleaving.
/// Both the fault plan and the retry jitter key off it.
pub fn call_identity<'a>(
    collection: &CollectionName,
    keys: impl IntoIterator<Item = &'a LocalKey>,
) -> u64 {
    let mut h = fnv(collection.as_str().as_bytes());
    for key in keys {
        h = mix(h, fnv(key.as_str().as_bytes()));
    }
    h
}

/// Identity of a native-language query round trip.
pub fn query_identity(query: &str) -> u64 {
    fnv(query.as_bytes())
}

/// Wraps a connector with a fault plan.
///
/// Key-based lookups (`get` / `multi_get`) and native queries consult
/// the plan; `scan_collection` (the Collector's offline ingest path) and
/// metadata calls pass through. Transient-fault streaks are tracked with
/// a per-identity attempt counter that is **monotone and order-free**:
/// the counter only ever advances (one step per faulted decision, under
/// the same lock that reads it), never resets, and is keyed purely by
/// call identity. However many callers race one identity, the total
/// number of injected transient errors is exactly the plan's streak and
/// no single caller can observe more than that — which is what lets the
/// concurrent differential harness check transient plans at all.
pub struct FaultyConnector {
    inner: Arc<dyn Connector>,
    plan: Arc<FaultPlan>,
    latency: LatencyModel,
    attempts: Mutex<HashMap<u64, u32>>,
}

impl FaultyConnector {
    /// Wraps `inner`; `latency` is the link cost faulted calls pay
    /// before erroring (healthy calls pay inside `inner` as usual).
    pub fn new(inner: Arc<dyn Connector>, plan: Arc<FaultPlan>, latency: LatencyModel) -> Self {
        FaultyConnector { inner, plan, latency, attempts: Mutex::new(HashMap::new()) }
    }

    /// Consults the plan for this call. `Ok(())` means proceed to the
    /// inner connector; `Err` is the injected fault, *returned only
    /// after the latency has been paid* — the wire does not refund a
    /// refused connection, and timeout tests need the time spent first.
    fn apply(&self, identity: u64) -> Result<()> {
        let database = self.inner.database().as_str();
        // Read → decide → bump under ONE lock acquisition, and never
        // reset: the (attempt, decision) pair is atomic and the counter
        // is monotone. Racing callers of the same identity serialize
        // here and walk the streak 0, 1, 2, … exactly once between them,
        // whatever the interleaving — so the total injected errors per
        // identity equal the plan's streak and no caller can be handed
        // the same faulted attempt twice.
        let decision = {
            let mut attempts = self.attempts.lock();
            let attempt = attempts.get(&identity).copied().unwrap_or(0);
            let decision = self.plan.decide(database, identity, attempt);
            if matches!(decision, FaultDecision::Transient | FaultDecision::Timeout) {
                attempts.insert(identity, attempt + 1);
            }
            decision
        };
        match decision {
            FaultDecision::Healthy => Ok(()),
            FaultDecision::Spike(extra) => {
                quepa_obs::record_fault(database);
                quepa_obs::record_link_event(database, self.latency.cost(0, 0) + extra);
                self.latency.pay_extra(extra);
                Ok(())
            }
            FaultDecision::Transient => {
                quepa_obs::record_fault(database);
                quepa_obs::record_link_event(database, self.latency.cost(0, 0));
                self.latency.pay(0, 0);
                Err(PolyError::store(database, "injected transient fault"))
            }
            FaultDecision::Timeout => {
                quepa_obs::record_fault(database);
                quepa_obs::record_link_event(database, self.latency.cost(0, 0) + self.plan.spike);
                self.latency.pay_extra(self.plan.spike);
                Err(PolyError::Timeout { database: database.to_string() })
            }
            FaultDecision::Down => {
                quepa_obs::record_fault(database);
                quepa_obs::record_link_event(database, self.latency.cost(0, 0));
                self.latency.pay(0, 0);
                Err(PolyError::Unavailable { database: database.to_string() })
            }
        }
    }
}

impl Connector for FaultyConnector {
    fn database(&self) -> &DatabaseName {
        self.inner.database()
    }

    fn kind(&self) -> StoreKind {
        self.inner.kind()
    }

    fn collections(&self) -> Vec<CollectionName> {
        self.inner.collections()
    }

    fn execute(&self, query: &str) -> Result<Vec<DataObject>> {
        self.apply(query_identity(query))?;
        self.inner.execute(query)
    }

    fn execute_update(&self, statement: &str) -> Result<usize> {
        self.apply(query_identity(statement))?;
        self.inner.execute_update(statement)
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> Result<Option<DataObject>> {
        self.apply(call_identity(collection, [key]))?;
        self.inner.get(collection, key)
    }

    fn multi_get(&self, collection: &CollectionName, keys: &[LocalKey]) -> Result<Vec<DataObject>> {
        self.apply(call_identity(collection, keys))?;
        self.inner.multi_get(collection, keys)
    }

    fn supports_pushdown(&self, filter: &Pushdown) -> bool {
        self.inner.supports_pushdown(filter)
    }

    fn fetch_where(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        // Same identity as a `multi_get` of the same key list: the fault
        // plan cannot tell the two strategies apart, so the planner's
        // choice never changes which faults fire.
        self.apply(call_identity(collection, keys))?;
        self.inner.fetch_where(collection, keys, filter)
    }

    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>> {
        self.inner.scan_collection(collection)
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.inner.record_resilience(retries, timeouts, breaker_trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectors::KvConnector;
    use quepa_kvstore::KvStore;
    use std::time::Instant;

    fn kv_connector() -> Arc<dyn Connector> {
        let mut kv = KvStore::new("db1");
        for k in 0..8 {
            kv.set(format!("k{k}"), "v");
        }
        Arc::new(KvConnector::new(kv, "c", LatencyModel::FREE))
    }

    fn coll() -> CollectionName {
        CollectionName::new("c").unwrap()
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7)
            .with_transient_faults(0.5, 3)
            .with_timeouts(0.2)
            .with_latency_spikes(0.2, Duration::from_micros(10));
        for identity in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.decide("db1", identity, attempt),
                    plan.decide("db1", identity, attempt),
                );
            }
        }
        // Different seeds disagree somewhere.
        let other = FaultPlan::new(8).with_transient_faults(0.5, 3);
        let plan = FaultPlan::new(7).with_transient_faults(0.5, 3);
        assert!((0..200u64).any(|i| plan.decide("db1", i, 0) != other.decide("db1", i, 0)));
    }

    #[test]
    fn transient_streaks_end() {
        let plan = FaultPlan::new(3).with_transient_faults(1.0, 3);
        for identity in 0..50u64 {
            // Every identity is faulted; its streak is 1..=3, so attempt 3
            // (0-based) must always be past the streak.
            assert_eq!(plan.decide("db1", identity, 3), FaultDecision::Healthy);
            assert_eq!(plan.decide("db1", identity, 0), FaultDecision::Transient);
        }
    }

    #[test]
    fn outage_beats_everything() {
        let plan = FaultPlan::new(1).with_outage("db1");
        assert_eq!(plan.decide("db1", 42, 0), FaultDecision::Down);
        assert_eq!(plan.decide("db1", 42, 99), FaultDecision::Down);
        assert_eq!(plan.decide("db2", 42, 0), FaultDecision::Healthy);
    }

    #[test]
    fn identities_ignore_key_order_only_for_same_sequence() {
        let c = coll();
        let a = LocalKey::new("a").unwrap();
        let b = LocalKey::new("b").unwrap();
        assert_eq!(call_identity(&c, [&a, &b]), call_identity(&c, [&a, &b]));
        assert_ne!(call_identity(&c, [&a, &b]), call_identity(&c, [&b, &a]));
        assert_ne!(call_identity(&c, [&a]), call_identity(&c, [&b]));
    }

    /// Satellite pin: a faulted call pays its deterministic latency
    /// *before* the error is returned — the elapsed time observed at the
    /// moment the error surfaces already includes the round trip.
    #[test]
    fn faulted_calls_pay_latency_before_erroring() {
        let latency = LatencyModel {
            round_trip: Duration::from_micros(400),
            per_object: Duration::ZERO,
            per_kib: Duration::ZERO,
        };
        let plan = Arc::new(FaultPlan::new(5).with_outage("db1"));
        let faulty = FaultyConnector::new(kv_connector(), plan, latency);
        let t0 = Instant::now();
        let err = faulty.get(&coll(), &LocalKey::new("k0").unwrap()).unwrap_err();
        let elapsed = t0.elapsed();
        assert!(matches!(err, PolyError::Unavailable { .. }), "{err}");
        assert!(
            elapsed >= Duration::from_micros(400),
            "latency must be paid before the error returns (elapsed {elapsed:?})"
        );
    }

    #[test]
    fn transient_fault_then_recovery_through_wrapper() {
        let plan = Arc::new(FaultPlan::new(11).with_transient_faults(1.0, 2));
        let faulty = FaultyConnector::new(kv_connector(), plan.clone(), LatencyModel::FREE);
        let key = LocalKey::new("k1").unwrap();
        let identity = call_identity(&coll(), [&key]);
        let streak = (0..4)
            .take_while(|&a| plan.decide("db1", identity, a) == FaultDecision::Transient)
            .count();
        assert!((1..=2).contains(&streak));
        // The wrapper's per-identity attempt counter walks the streak.
        for _ in 0..streak {
            assert!(faulty.get(&coll(), &key).is_err());
        }
        let obj = faulty.get(&coll(), &key).unwrap().unwrap();
        assert_eq!(obj.value().as_str(), Some("v"));
        // The counter is monotone: once an identity has ridden out its
        // streak it stays healthy — the streak is a property of the
        // identity, not of any one caller's retry loop.
        for _ in 0..streak + 1 {
            assert!(faulty.get(&coll(), &key).unwrap().is_some());
        }
    }

    /// Satellite pin: the streak counter is identity-keyed and
    /// order-free. However many callers race the same identity, the
    /// *total* injected transient errors equal the plan's streak, and
    /// every caller retrying up to the streak length succeeds — no
    /// interleaving can hand one caller more errors than the streak, so
    /// a retry budget that rides out the streak serially also rides it
    /// out under concurrency.
    #[test]
    fn racing_callers_split_exactly_one_streak() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let plan = Arc::new(FaultPlan::new(11).with_transient_faults(1.0, 3));
        let key = LocalKey::new("k1").unwrap();
        let identity = call_identity(&coll(), [&key]);
        let streak = (0..8)
            .take_while(|&a| plan.decide("db1", identity, a) == FaultDecision::Transient)
            .count();
        assert!((1..=3).contains(&streak));

        for round in 0..16 {
            let faulty =
                FaultyConnector::new(kv_connector(), Arc::clone(&plan), LatencyModel::FREE);
            let threads = 8;
            let errors = AtomicUsize::new(0);
            let barrier = Barrier::new(threads);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        barrier.wait();
                        // Retry loop sized to the streak: must succeed.
                        for attempt in 0..=streak {
                            match faulty.get(&coll(), &key) {
                                Ok(obj) => {
                                    assert!(obj.is_some());
                                    return;
                                }
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    assert!(attempt < streak, "caller exhausted its budget");
                                }
                            }
                        }
                    });
                }
            });
            assert_eq!(
                errors.load(Ordering::Relaxed),
                streak,
                "round {round}: total injected errors must equal the streak, order-free"
            );
        }
    }

    /// Satellite pin: `fetch_where` shares its call identity (and so its
    /// per-identity attempt counter) with `multi_get` of the same key
    /// list. A streak ridden out by one strategy is ridden out for both —
    /// the planner's BATCH/PUSHDOWN choice can never change which faults
    /// fire or how many remain.
    #[test]
    fn fetch_where_shares_fault_identity_with_multi_get() {
        let plan = Arc::new(FaultPlan::new(11).with_transient_faults(1.0, 3));
        let keys = [LocalKey::new("k1").unwrap(), LocalKey::new("k2").unwrap()];
        let identity = call_identity(&coll(), &keys);
        let streak = (0..8)
            .take_while(|&a| plan.decide("db1", identity, a) == FaultDecision::Transient)
            .count();
        assert!((1..=3).contains(&streak));
        let filter = Pushdown::value(quepa_pdm::PushOp::Eq, "v");
        // Alternate strategies against the SAME wrapper: the shared
        // counter walks one streak between them, then both succeed.
        let faulty = FaultyConnector::new(kv_connector(), Arc::clone(&plan), LatencyModel::FREE);
        for attempt in 0..streak {
            let res = if attempt % 2 == 0 {
                faulty.fetch_where(&coll(), &keys, &filter).map(|_| ())
            } else {
                faulty.multi_get(&coll(), &keys).map(|_| ())
            };
            assert!(res.is_err(), "attempt {attempt} should still be inside the streak");
        }
        let out = faulty.fetch_where(&coll(), &keys, &filter).unwrap();
        assert_eq!(out.matched.len(), 2);
        assert!(out.rejected.is_empty());
        assert_eq!(faulty.multi_get(&coll(), &keys).unwrap().len(), 2);
    }

    #[test]
    fn down_store_fails_multi_get_and_execute() {
        let plan = Arc::new(FaultPlan::new(2).with_outage("db1"));
        let faulty = FaultyConnector::new(kv_connector(), plan, LatencyModel::FREE);
        let keys = [LocalKey::new("k0").unwrap(), LocalKey::new("k1").unwrap()];
        assert!(matches!(faulty.multi_get(&coll(), &keys), Err(PolyError::Unavailable { .. })));
        assert!(matches!(faulty.execute("SCAN k"), Err(PolyError::Unavailable { .. })));
        // Offline ingest is spared: chaos targets the serving path.
        assert_eq!(faulty.scan_collection(&coll()).unwrap().len(), 8);
    }
}
