//! Unified error type for polystore access.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PolyError>;

/// Errors surfacing from polystore access. Native store errors are wrapped
/// with the owning database's name so callers can tell *where* a local-
/// language query failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PolyError {
    /// No database with this name is registered.
    UnknownDatabase(String),
    /// The database exists but has no such collection.
    UnknownCollection {
        /// Database name.
        database: String,
        /// Collection name.
        collection: String,
    },
    /// A native-language error from the underlying store.
    Store {
        /// Database name.
        database: String,
        /// Rendered store error.
        message: String,
    },
    /// The operation is not meaningful for this store kind (e.g. running a
    /// SQL statement against the key-value store).
    WrongKind {
        /// Database name.
        database: String,
        /// What was attempted.
        operation: String,
    },
    /// One round trip overran its deadline (measured by the retry layer
    /// or injected by a fault plan). Retryable.
    Timeout {
        /// Database name.
        database: String,
    },
    /// The store did not answer at all — a whole-store outage or a
    /// refused connection. Retryable.
    Unavailable {
        /// Database name.
        database: String,
    },
    /// A round trip failed every allowed attempt (or was rejected by an
    /// open circuit breaker, in which case `attempts == 0`). This is the
    /// structured signal the augmenters degrade into a partial answer.
    Unreachable {
        /// Database name.
        database: String,
        /// Attempts actually made before giving up.
        attempts: u32,
        /// Rendered last underlying error.
        last: String,
    },
}

impl PolyError {
    /// Wraps a native store error.
    pub fn store(database: impl Into<String>, err: impl fmt::Display) -> Self {
        PolyError::Store { database: database.into(), message: err.to_string() }
    }
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::UnknownDatabase(d) => write!(f, "unknown database: {d}"),
            PolyError::UnknownCollection { database, collection } => {
                write!(f, "unknown collection {collection} in database {database}")
            }
            PolyError::Store { database, message } => {
                write!(f, "store error in {database}: {message}")
            }
            PolyError::WrongKind { database, operation } => {
                write!(f, "operation not supported by {database}: {operation}")
            }
            PolyError::Timeout { database } => {
                write!(f, "round trip to {database} timed out")
            }
            PolyError::Unavailable { database } => {
                write!(f, "store {database} is unavailable")
            }
            PolyError::Unreachable { database, attempts, last } => {
                write!(f, "store {database} unreachable after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for PolyError {}
