//! The simulated network: a deterministic latency model per store.
//!
//! The paper deploys the polystore on EC2 twice: *centralized* (everything
//! on one m4.4xlarge) and *distributed* (t2.medium machines in different
//! regions, "network latency reaches, in some cases, few hundred
//! milliseconds"). Here every connector call pays
//!
//! ```text
//! cost(round trip moving n objects of s bytes) = RTT + n·per_object + s·per_byte
//! ```
//!
//! as real (sleeping) wall time, with the paper's millisecond figures
//! shrunk 1000× to microseconds so experiment sweeps finish fast. All comparative
//! findings (batching beats sequential, the gap widens when RTT grows,
//! caching only pays when RTT is large) depend on the *ratios*, which the
//! scaling preserves.

use std::time::Duration;

/// The latency parameters of one store's link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed cost per round trip (request + response).
    pub round_trip: Duration,
    /// Marginal cost per object transferred.
    pub per_object: Duration,
    /// Marginal cost per kibibyte of payload.
    pub per_kib: Duration,
}

impl LatencyModel {
    /// A zero-cost link, for unit tests that should not spend wall time.
    pub const FREE: LatencyModel = LatencyModel {
        round_trip: Duration::ZERO,
        per_object: Duration::ZERO,
        per_kib: Duration::ZERO,
    };

    /// Total cost of a round trip moving `objects` objects of `bytes` total.
    pub fn cost(&self, objects: usize, bytes: usize) -> Duration {
        self.round_trip
            + self.per_object * objects as u32
            + self.per_kib * bytes.div_ceil(1024) as u32
    }

    /// Pays the cost as wall time by *sleeping*, not spinning: a network
    /// round trip leaves the CPU idle, so concurrent round trips must
    /// overlap even when the host has fewer cores than worker threads —
    /// that overlap is exactly what the concurrent augmenters exploit.
    /// (Linux hrtimer sleeps have ~50 µs granularity, the same order as
    /// the centralized RTT; the distortion is a constant factor across all
    /// strategies, so relative comparisons survive.)
    pub fn pay(&self, objects: usize, bytes: usize) {
        let cost = self.cost(objects, bytes);
        if cost.is_zero() {
            return;
        }
        std::thread::sleep(cost);
    }

    /// Pays one empty round trip plus `extra` wall time in a single
    /// sleep — the fault layer's latency spikes and timed-out calls,
    /// which must spend their (deterministic) time *before* any error
    /// is surfaced so timeout semantics stay testable.
    pub fn pay_extra(&self, extra: Duration) {
        let cost = self.cost(0, 0) + extra;
        if cost.is_zero() {
            return;
        }
        std::thread::sleep(cost);
    }
}

/// Deployment presets (paper §VII-A): where the stores run relative to
/// QUEPA decides the link costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Deployment {
    /// Everything co-located on one machine (paper: one m4.4xlarge).
    /// Loopback-ish costs.
    #[default]
    Centralized,
    /// Each store in a different region (paper: t2.medium machines placed
    /// in different regions; RTT up to hundreds of ms → hundreds of µs
    /// here).
    Distributed,
    /// No latency at all — for functional tests.
    InProcess,
}

impl Deployment {
    /// The latency model this deployment imposes on every store link.
    pub fn latency(self) -> LatencyModel {
        match self {
            // 1000× scaled from ~50 ms / ~0.2 ms / ~1 ms-per-MiB EC2 figures.
            Deployment::Centralized => LatencyModel {
                round_trip: Duration::from_micros(50),
                per_object: Duration::from_nanos(200),
                per_kib: Duration::from_nanos(100),
            },
            Deployment::Distributed => LatencyModel {
                round_trip: Duration::from_micros(400),
                per_object: Duration::from_nanos(400),
                per_kib: Duration::from_nanos(400),
            },
            Deployment::InProcess => LatencyModel::FREE,
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Deployment::Centralized => "centralized",
            Deployment::Distributed => "distributed",
            Deployment::InProcess => "in-process",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn cost_is_linear_in_objects_and_bytes() {
        let m = LatencyModel {
            round_trip: Duration::from_micros(100),
            per_object: Duration::from_micros(1),
            per_kib: Duration::from_micros(2),
        };
        assert_eq!(m.cost(0, 0), Duration::from_micros(100));
        assert_eq!(m.cost(10, 0), Duration::from_micros(110));
        assert_eq!(m.cost(10, 2048), Duration::from_micros(114));
        // Partial KiB rounds up.
        assert_eq!(m.cost(0, 1), Duration::from_micros(102));
    }

    #[test]
    fn free_model_pays_nothing() {
        let t0 = Instant::now();
        LatencyModel::FREE.pay(1_000_000, 1 << 30);
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn pay_sleeps_at_least_the_cost() {
        let m = LatencyModel {
            round_trip: Duration::from_micros(200),
            per_object: Duration::ZERO,
            per_kib: Duration::ZERO,
        };
        let t0 = Instant::now();
        m.pay(0, 0);
        assert!(t0.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn distributed_is_slower_than_centralized() {
        let c = Deployment::Centralized.latency();
        let d = Deployment::Distributed.latency();
        assert!(d.round_trip > c.round_trip);
        assert!(d.cost(100, 10_000) > c.cost(100, 10_000));
        assert_eq!(Deployment::InProcess.latency(), LatencyModel::FREE);
    }

    #[test]
    fn batching_wins_under_the_model() {
        // The first-order claim of Fig. 9/10: k lookups in one round trip
        // cost less than k round trips, and the gap grows with RTT.
        for dep in [Deployment::Centralized, Deployment::Distributed] {
            let m = dep.latency();
            let sequential = m.cost(1, 100) * 100;
            let batched = m.cost(100, 100 * 100);
            assert!(batched < sequential, "{dep:?}");
        }
        let gap_c = Deployment::Centralized.latency().cost(1, 100).as_nanos() * 100;
        let gap_d = Deployment::Distributed.latency().cost(1, 100).as_nanos() * 100;
        assert!(gap_d > gap_c);
    }
}
