//! The polystore registry: routes queries and lookups by database name.

use std::collections::BTreeMap;
use std::sync::Arc;

use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey};

use crate::connector::{Connector, StoreKind};
use crate::error::{PolyError, Result};
use crate::fault::call_identity;
use crate::retry::{run_round_trip, CircuitBreaker, RetryPolicy};
use crate::stats::StatsSnapshot;

/// A polystore: a named set of databases, each behind a [`Connector`].
///
/// `Polystore` is cheaply cloneable (connectors are shared `Arc`s) and
/// `Send + Sync`, so the concurrent augmenters can fan lookups out across
/// threads while sharing one registry.
#[derive(Clone, Default)]
pub struct Polystore {
    connectors: BTreeMap<DatabaseName, Arc<dyn Connector>>,
}

impl Polystore {
    /// Creates an empty polystore.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a connector. Replaces any previous connector with the same
    /// database name.
    pub fn register(&mut self, connector: Arc<dyn Connector>) {
        self.connectors.insert(connector.database().clone(), connector);
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.connectors.len()
    }

    /// True when no database is registered.
    pub fn is_empty(&self) -> bool {
        self.connectors.is_empty()
    }

    /// The registered database names, sorted.
    pub fn database_names(&self) -> Vec<&DatabaseName> {
        self.connectors.keys().collect()
    }

    /// Borrows a connector by database name.
    pub fn connector(&self, database: &DatabaseName) -> Result<&Arc<dyn Connector>> {
        self.connectors
            .get(database)
            .ok_or_else(|| PolyError::UnknownDatabase(database.to_string()))
    }

    /// Convenience: connector lookup by raw name.
    pub fn connector_by_name(&self, database: &str) -> Result<&Arc<dyn Connector>> {
        self.connectors.get(database).ok_or_else(|| PolyError::UnknownDatabase(database.to_owned()))
    }

    /// Runs a native-language query against one database.
    pub fn execute(&self, database: &str, query: &str) -> Result<Vec<DataObject>> {
        self.connector_by_name(database)?.execute(query)
    }

    /// Runs a native-language update against one database.
    pub fn execute_update(&self, database: &str, statement: &str) -> Result<usize> {
        self.connector_by_name(database)?.execute_update(statement)
    }

    /// Point lookup by global key. `Ok(None)` = the object is gone (the A'
    /// index's lazy-deletion signal).
    pub fn get(&self, key: &GlobalKey) -> Result<Option<DataObject>> {
        self.connector(key.database())?.get(key.collection(), key.key())
    }

    /// Batched lookup: all `keys` must belong to `database.collection`; one
    /// round trip.
    pub fn multi_get(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
    ) -> Result<Vec<DataObject>> {
        self.connector(database)?.multi_get(collection, keys)
    }

    /// Point lookup under a retry policy and an optional circuit breaker.
    ///
    /// Trivial policies without a breaker take the exact same path as
    /// [`get`](Polystore::get) — the happy path pays nothing for the
    /// resilience layer. Otherwise the round trip is driven through
    /// [`run_round_trip`]: transient errors are retried with
    /// deterministic backoff, exhausted retries collapse into
    /// [`PolyError::Unreachable`], and retry/timeout/breaker events are
    /// attributed to the connector's statistics.
    pub fn get_resilient(
        &self,
        key: &GlobalKey,
        policy: &RetryPolicy,
        breaker: Option<&CircuitBreaker>,
    ) -> Result<Option<DataObject>> {
        let connector = self.connector(key.database())?;
        if policy.is_trivial() && breaker.is_none() {
            return connector.get(key.collection(), key.key());
        }
        let salt = call_identity(key.collection(), [key.key()]);
        let (result, report) = run_round_trip(policy, breaker, key.database(), salt, || {
            connector.get(key.collection(), key.key())
        });
        if report.retries + report.timeouts + report.breaker_trips > 0 {
            connector.record_resilience(report.retries, report.timeouts, report.breaker_trips);
        }
        result
    }

    /// Batched lookup under a retry policy and an optional circuit
    /// breaker; the whole batch is one round trip and retries as a unit.
    pub fn multi_get_resilient(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
        policy: &RetryPolicy,
        breaker: Option<&CircuitBreaker>,
    ) -> Result<Vec<DataObject>> {
        let connector = self.connector(database)?;
        if policy.is_trivial() && breaker.is_none() {
            return connector.multi_get(collection, keys);
        }
        let salt = call_identity(collection, keys.iter());
        let (result, report) = run_round_trip(policy, breaker, database, salt, || {
            connector.multi_get(collection, keys)
        });
        if report.retries + report.timeouts + report.breaker_trips > 0 {
            connector.record_resilience(report.retries, report.timeouts, report.breaker_trips);
        }
        result
    }

    /// Rebuilds the registry with every connector passed through `wrap` —
    /// the chaos harness's entry point for fault injection
    /// (e.g. wrapping each store in a
    /// [`FaultyConnector`](crate::fault::FaultyConnector)).
    #[must_use]
    pub fn wrap_connectors(
        &self,
        mut wrap: impl FnMut(Arc<dyn Connector>) -> Arc<dyn Connector>,
    ) -> Polystore {
        let mut wrapped = Polystore::new();
        for connector in self.connectors.values() {
            wrapped.register(wrap(Arc::clone(connector)));
        }
        wrapped
    }

    /// Sum of the per-connector statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.connectors
            .values()
            .map(|c| c.stats())
            .fold(StatsSnapshot::default(), StatsSnapshot::merge)
    }

    /// Per-database statistics.
    pub fn stats_by_database(&self) -> Vec<(DatabaseName, StatsSnapshot)> {
        self.connectors.iter().map(|(n, c)| (n.clone(), c.stats())).collect()
    }

    /// Resets every connector's statistics.
    pub fn reset_stats(&self) {
        for c in self.connectors.values() {
            c.reset_stats();
        }
    }

    /// Asks every store to make its pending writes durable (see
    /// [`Connector::commit_durable`]); returns how many stores actually
    /// persisted something. The durability layer calls this before
    /// acknowledging a WAL commit, so QUEPA's durable state never runs
    /// ahead of the stores it indexes.
    pub fn commit_durable_all(&self) -> Result<usize> {
        let mut persisted = 0;
        for c in self.connectors.values() {
            if c.commit_durable()? {
                persisted += 1;
            }
        }
        Ok(persisted)
    }

    /// Total objects across all stores (experiment reporting).
    pub fn total_objects(&self) -> usize {
        self.connectors.values().map(|c| c.object_count()).sum()
    }

    /// Count of stores per paradigm (the adaptive optimizer's features).
    pub fn kind_histogram(&self) -> BTreeMap<StoreKind, usize> {
        let mut h = BTreeMap::new();
        for c in self.connectors.values() {
            *h.entry(c.kind()).or_insert(0) += 1;
        }
        h
    }
}

impl std::fmt::Debug for Polystore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Polystore")
            .field("databases", &self.database_names())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectors::{DocumentConnector, KvConnector, RelationalConnector};
    use crate::net::LatencyModel;
    use quepa_docstore::DocumentDb;
    use quepa_kvstore::KvStore;
    use quepa_pdm::text;
    use quepa_relstore::engine::Database;

    fn sample() -> Polystore {
        let mut p = Polystore::new();

        let mut rel = Database::new("transactions");
        rel.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
        rel.execute("INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish')").unwrap();
        p.register(Arc::new(RelationalConnector::new(rel, LatencyModel::FREE)));

        let mut doc = DocumentDb::new("catalogue");
        doc.insert("albums", text::parse(r#"{"_id":"d1","title":"Wish"}"#).unwrap()).unwrap();
        p.register(Arc::new(DocumentConnector::new(doc, LatencyModel::FREE)));

        let mut kv = KvStore::new("discount");
        kv.set("k1:cure:wish", "40%");
        p.register(Arc::new(KvConnector::new(kv, "drop", LatencyModel::FREE)));

        p
    }

    #[test]
    fn routing() {
        let p = sample();
        assert_eq!(p.len(), 3);
        let objs = p.execute("transactions", "SELECT * FROM inventory").unwrap();
        assert_eq!(objs.len(), 1);
        let objs = p.execute("catalogue", "db.albums.find()").unwrap();
        assert_eq!(objs.len(), 1);
        let objs = p.execute("discount", "GET k1:cure:wish").unwrap();
        assert_eq!(objs.len(), 1);
        assert!(matches!(p.execute("ghost", "whatever"), Err(PolyError::UnknownDatabase(_))));
    }

    #[test]
    fn global_key_lookup() {
        let p = sample();
        let key: GlobalKey = "discount.drop.k1:cure:wish".parse().unwrap();
        let obj = p.get(&key).unwrap().unwrap();
        assert_eq!(obj.value().as_str(), Some("40%"));
        let missing: GlobalKey = "discount.drop.zzz".parse().unwrap();
        assert!(p.get(&missing).unwrap().is_none());
    }

    #[test]
    fn aggregate_stats_and_reset() {
        let p = sample();
        p.execute("transactions", "SELECT * FROM inventory").unwrap();
        p.execute("catalogue", "db.albums.find()").unwrap();
        let s = p.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.objects_returned, 2);
        p.reset_stats();
        assert_eq!(p.stats().queries, 0);
    }

    #[test]
    fn totals_and_histogram() {
        let p = sample();
        assert_eq!(p.total_objects(), 3);
        let h = p.kind_histogram();
        assert_eq!(h[&StoreKind::Relational], 1);
        assert_eq!(h[&StoreKind::Document], 1);
        assert_eq!(h[&StoreKind::KeyValue], 1);
    }

    #[test]
    fn cross_database_update() {
        let p = sample();
        assert_eq!(p.execute_update("discount", "DEL k1:cure:wish").unwrap(), 1);
        let key: GlobalKey = "discount.drop.k1:cure:wish".parse().unwrap();
        assert!(p.get(&key).unwrap().is_none());
    }
}
