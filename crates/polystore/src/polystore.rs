//! The polystore registry: routes queries and lookups by database name.

use std::collections::BTreeMap;
use std::sync::Arc;

use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Pushdown};

use crate::connector::{Connector, FilteredFetch, StoreKind};
use crate::error::{PolyError, Result};
use crate::fault::call_identity;
use crate::retry::{run_round_trip, CircuitBreaker, RetryPolicy};
use crate::stats::StatsSnapshot;

/// A polystore: a named set of databases, each behind a [`Connector`].
///
/// `Polystore` is cheaply cloneable (connectors are shared `Arc`s) and
/// `Send + Sync`, so the concurrent augmenters can fan lookups out across
/// threads while sharing one registry.
#[derive(Clone, Default)]
pub struct Polystore {
    connectors: BTreeMap<DatabaseName, Arc<dyn Connector>>,
}

impl Polystore {
    /// Creates an empty polystore.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a connector. Replaces any previous connector with the same
    /// database name.
    pub fn register(&mut self, connector: Arc<dyn Connector>) {
        self.connectors.insert(connector.database().clone(), connector);
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.connectors.len()
    }

    /// True when no database is registered.
    pub fn is_empty(&self) -> bool {
        self.connectors.is_empty()
    }

    /// The registered database names, sorted.
    pub fn database_names(&self) -> Vec<&DatabaseName> {
        self.connectors.keys().collect()
    }

    /// Borrows a connector by database name.
    pub fn connector(&self, database: &DatabaseName) -> Result<&Arc<dyn Connector>> {
        self.connectors
            .get(database)
            .ok_or_else(|| PolyError::UnknownDatabase(database.to_string()))
    }

    /// Convenience: connector lookup by raw name.
    pub fn connector_by_name(&self, database: &str) -> Result<&Arc<dyn Connector>> {
        self.connectors.get(database).ok_or_else(|| PolyError::UnknownDatabase(database.to_owned()))
    }

    /// Runs a native-language query against one database.
    pub fn execute(&self, database: &str, query: &str) -> Result<Vec<DataObject>> {
        self.connector_by_name(database)?.execute(query)
    }

    /// Runs a native-language update against one database.
    pub fn execute_update(&self, database: &str, statement: &str) -> Result<usize> {
        self.connector_by_name(database)?.execute_update(statement)
    }

    /// Point lookup by global key. `Ok(None)` = the object is gone (the A'
    /// index's lazy-deletion signal).
    pub fn get(&self, key: &GlobalKey) -> Result<Option<DataObject>> {
        self.connector(key.database())?.get(key.collection(), key.key())
    }

    /// Batched lookup: all `keys` must belong to `database.collection`; one
    /// round trip.
    pub fn multi_get(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
    ) -> Result<Vec<DataObject>> {
        self.connector(database)?.multi_get(collection, keys)
    }

    /// Point lookup under a retry policy and an optional circuit breaker.
    ///
    /// Trivial policies without a breaker take the exact same path as
    /// [`get`](Polystore::get) — the happy path pays nothing for the
    /// resilience layer. Otherwise the round trip is driven through
    /// [`run_round_trip`]: transient errors are retried with
    /// deterministic backoff, exhausted retries collapse into
    /// [`PolyError::Unreachable`], and retry/timeout/breaker events are
    /// attributed to the connector's statistics.
    pub fn get_resilient(
        &self,
        key: &GlobalKey,
        policy: &RetryPolicy,
        breaker: Option<&CircuitBreaker>,
    ) -> Result<Option<DataObject>> {
        let connector = self.connector(key.database())?;
        if policy.is_trivial() && breaker.is_none() {
            return connector.get(key.collection(), key.key());
        }
        let salt = call_identity(key.collection(), [key.key()]);
        let (result, report) = run_round_trip(policy, breaker, key.database(), salt, || {
            connector.get(key.collection(), key.key())
        });
        if report.retries + report.timeouts + report.breaker_trips > 0 {
            connector.record_resilience(report.retries, report.timeouts, report.breaker_trips);
        }
        result
    }

    /// Batched lookup under a retry policy and an optional circuit
    /// breaker; the whole batch is one round trip and retries as a unit.
    pub fn multi_get_resilient(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
        policy: &RetryPolicy,
        breaker: Option<&CircuitBreaker>,
    ) -> Result<Vec<DataObject>> {
        let connector = self.connector(database)?;
        if policy.is_trivial() && breaker.is_none() {
            return connector.multi_get(collection, keys);
        }
        let salt = call_identity(collection, keys.iter());
        let (result, report) = run_round_trip(policy, breaker, database, salt, || {
            connector.multi_get(collection, keys)
        });
        if report.retries + report.timeouts + report.breaker_trips > 0 {
            connector.record_resilience(report.retries, report.timeouts, report.breaker_trips);
        }
        result
    }

    /// Filtered batched lookup (see [`Connector::fetch_where`]): one round
    /// trip, the predicate applied inside the store.
    pub fn fetch_where(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> Result<FilteredFetch> {
        self.connector(database)?.fetch_where(collection, keys, filter)
    }

    /// Filtered batched lookup under a retry policy and an optional
    /// circuit breaker. The call salt is the same identity a `multi_get`
    /// of the same key list would use, so seeded fault plans hit the two
    /// strategies identically — the planner's choice cannot change which
    /// faults fire.
    pub fn fetch_where_resilient(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
        policy: &RetryPolicy,
        breaker: Option<&CircuitBreaker>,
    ) -> Result<FilteredFetch> {
        let connector = self.connector(database)?;
        if policy.is_trivial() && breaker.is_none() {
            return connector.fetch_where(collection, keys, filter);
        }
        let salt = call_identity(collection, keys.iter());
        let (result, report) = run_round_trip(policy, breaker, database, salt, || {
            connector.fetch_where(collection, keys, filter)
        });
        if report.retries + report.timeouts + report.breaker_trips > 0 {
            connector.record_resilience(report.retries, report.timeouts, report.breaker_trips);
        }
        result
    }

    /// Rebuilds the registry with every connector passed through `wrap` —
    /// the chaos harness's entry point for fault injection
    /// (e.g. wrapping each store in a
    /// [`FaultyConnector`](crate::fault::FaultyConnector)).
    #[must_use]
    pub fn wrap_connectors(
        &self,
        mut wrap: impl FnMut(Arc<dyn Connector>) -> Arc<dyn Connector>,
    ) -> Polystore {
        let mut wrapped = Polystore::new();
        for connector in self.connectors.values() {
            wrapped.register(wrap(Arc::clone(connector)));
        }
        wrapped
    }

    /// Sum of the per-connector statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.connectors
            .values()
            .map(|c| c.stats())
            .fold(StatsSnapshot::default(), StatsSnapshot::merge)
    }

    /// Per-database statistics.
    pub fn stats_by_database(&self) -> Vec<(DatabaseName, StatsSnapshot)> {
        self.connectors.iter().map(|(n, c)| (n.clone(), c.stats())).collect()
    }

    /// Resets every connector's statistics.
    pub fn reset_stats(&self) {
        for c in self.connectors.values() {
            c.reset_stats();
        }
    }

    /// Asks every store to make its pending writes durable (see
    /// [`Connector::commit_durable`]); returns how many stores actually
    /// persisted something. The durability layer calls this before
    /// acknowledging a WAL commit, so QUEPA's durable state never runs
    /// ahead of the stores it indexes.
    pub fn commit_durable_all(&self) -> Result<usize> {
        let mut persisted = 0;
        for c in self.connectors.values() {
            if c.commit_durable()? {
                persisted += 1;
            }
        }
        Ok(persisted)
    }

    /// Total objects across all stores (experiment reporting).
    pub fn total_objects(&self) -> usize {
        self.connectors.values().map(|c| c.object_count()).sum()
    }

    /// Count of stores per paradigm (the adaptive optimizer's features).
    pub fn kind_histogram(&self) -> BTreeMap<StoreKind, usize> {
        let mut h = BTreeMap::new();
        for c in self.connectors.values() {
            *h.entry(c.kind()).or_insert(0) += 1;
        }
        h
    }
}

impl std::fmt::Debug for Polystore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Polystore")
            .field("databases", &self.database_names())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectors::{DocumentConnector, KvConnector, RelationalConnector};
    use crate::net::LatencyModel;
    use quepa_docstore::DocumentDb;
    use quepa_kvstore::KvStore;
    use quepa_pdm::text;
    use quepa_relstore::engine::Database;

    fn sample() -> Polystore {
        let mut p = Polystore::new();

        let mut rel = Database::new("transactions");
        rel.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
        rel.execute("INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish')").unwrap();
        p.register(Arc::new(RelationalConnector::new(rel, LatencyModel::FREE)));

        let mut doc = DocumentDb::new("catalogue");
        doc.insert("albums", text::parse(r#"{"_id":"d1","title":"Wish"}"#).unwrap()).unwrap();
        p.register(Arc::new(DocumentConnector::new(doc, LatencyModel::FREE)));

        let mut kv = KvStore::new("discount");
        kv.set("k1:cure:wish", "40%");
        p.register(Arc::new(KvConnector::new(kv, "drop", LatencyModel::FREE)));

        p
    }

    #[test]
    fn routing() {
        let p = sample();
        assert_eq!(p.len(), 3);
        let objs = p.execute("transactions", "SELECT * FROM inventory").unwrap();
        assert_eq!(objs.len(), 1);
        let objs = p.execute("catalogue", "db.albums.find()").unwrap();
        assert_eq!(objs.len(), 1);
        let objs = p.execute("discount", "GET k1:cure:wish").unwrap();
        assert_eq!(objs.len(), 1);
        assert!(matches!(p.execute("ghost", "whatever"), Err(PolyError::UnknownDatabase(_))));
    }

    #[test]
    fn global_key_lookup() {
        let p = sample();
        let key: GlobalKey = "discount.drop.k1:cure:wish".parse().unwrap();
        let obj = p.get(&key).unwrap().unwrap();
        assert_eq!(obj.value().as_str(), Some("40%"));
        let missing: GlobalKey = "discount.drop.zzz".parse().unwrap();
        assert!(p.get(&missing).unwrap().is_none());
    }

    #[test]
    fn aggregate_stats_and_reset() {
        let p = sample();
        p.execute("transactions", "SELECT * FROM inventory").unwrap();
        p.execute("catalogue", "db.albums.find()").unwrap();
        let s = p.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.objects_returned, 2);
        p.reset_stats();
        assert_eq!(p.stats().queries, 0);
    }

    #[test]
    fn totals_and_histogram() {
        let p = sample();
        assert_eq!(p.total_objects(), 3);
        let h = p.kind_histogram();
        assert_eq!(h[&StoreKind::Relational], 1);
        assert_eq!(h[&StoreKind::Document], 1);
        assert_eq!(h[&StoreKind::KeyValue], 1);
    }

    /// The native pushdown paths of all four connectors must agree
    /// bit-for-bit with the reference: `multi_get` plus the canonical
    /// client-side evaluator — same matched objects (same order), same
    /// rejected keys, same implied-missing keys.
    #[test]
    fn fetch_where_agrees_with_client_side_filtering() {
        use crate::connectors::GraphConnector;
        use quepa_graphstore::GraphDb;
        use quepa_pdm::{PushOp, Pushdown, Value};

        let mut p = sample();
        let mut g = GraphDb::new("similar");
        g.add_node("s1", "Song", [("title", Value::str("Apart")), ("seq", Value::Int(1))]).unwrap();
        g.add_node("s2", "Song", [("title", Value::str("Elise")), ("seq", Value::Int(2))]).unwrap();
        g.add_node("a1", "Album", [("title", Value::str("Wish"))]).unwrap();
        p.register(Arc::new(GraphConnector::new(g, LatencyModel::FREE)));

        let mut seq_and_key = Pushdown::path("seq", PushOp::Lte, 1);
        seq_and_key.clauses.extend(Pushdown::key(PushOp::Prefix, "s").clauses);
        let cases: Vec<(&str, &str, Vec<&str>, Pushdown)> = vec![
            ("transactions", "inventory", vec!["a32", "zz"], Pushdown::path("artist", PushOp::Eq, "Cure")),
            ("transactions", "inventory", vec!["a32"], Pushdown::path("artist", PushOp::Eq, "Nobody")),
            ("catalogue", "albums", vec!["d1", "ghost"], Pushdown::path("title", PushOp::Contains, "WISH")),
            ("catalogue", "albums", vec!["d1"], Pushdown::key(PushOp::Prefix, "x")),
            ("discount", "drop", vec!["k1:cure:wish", "nope"], Pushdown::value(PushOp::Eq, "40%")),
            ("discount", "drop", vec!["k1:cure:wish"], Pushdown::value(PushOp::Eq, "99%")),
            ("similar", "song", vec!["s1", "s2", "a1", "zz"], seq_and_key),
            ("similar", "song", vec!["s1", "s2"], Pushdown::default()),
        ];
        for (db, coll, keys, filter) in cases {
            let database = DatabaseName::new(db).unwrap();
            let collection = CollectionName::new(coll).unwrap();
            let keys: Vec<LocalKey> = keys.iter().map(|k| LocalKey::new(k).unwrap()).collect();
            let connector = p.connector(&database).unwrap();
            assert!(connector.supports_pushdown(&filter), "{db} declines {filter}");
            let got = p.fetch_where(&database, &collection, &keys, &filter).unwrap();
            let fetched = p.multi_get(&database, &collection, &keys).unwrap();
            let mut want_matched = Vec::new();
            let mut want_rejected = Vec::new();
            for o in fetched {
                if filter.matches(o.key().key().as_str(), o.value()) {
                    want_matched.push(o);
                } else {
                    want_rejected.push(o.key().key().clone());
                }
            }
            let got_keys: Vec<String> =
                got.matched.iter().map(|o| o.key().to_string()).collect();
            let want_keys: Vec<String> =
                want_matched.iter().map(|o| o.key().to_string()).collect();
            assert_eq!(got_keys, want_keys, "{db} {filter}");
            for (g, w) in got.matched.iter().zip(&want_matched) {
                assert_eq!(g.value(), w.value(), "{db} {filter}");
            }
            assert_eq!(got.rejected, want_rejected, "{db} {filter}");
        }
    }

    #[test]
    fn cross_database_update() {
        let p = sample();
        assert_eq!(p.execute_update("discount", "DEL k1:cure:wish").unwrap(), 1);
        let key: GlobalKey = "discount.drop.k1:cure:wish".parse().unwrap();
        assert!(p.get(&key).unwrap().is_none());
    }
}
