//! Retry policies, deterministic backoff and per-store circuit breakers.
//!
//! The paper assumes every store answers every key-based round trip; a
//! production polystore does not get that luxury — links flap, stores
//! stall, whole machines disappear (the operational gap BigDAWG's islands
//! design calls out when stores live on separate hosts). This module is
//! the policy half of the resilience layer:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   *deterministic* jitter (a pure function of a salt and the retry
//!   index, so reruns of a seeded chaos schedule reproduce bit-identical
//!   behaviour), plus an optional per-round-trip deadline;
//! * [`CircuitBreaker`] — the classic closed → open → half-open machine,
//!   **counter-based** rather than clock-based: an open breaker stays
//!   open for a fixed number of *calls* (not seconds), which keeps chaos
//!   runs independent of wall time;
//! * [`run_round_trip`] — the executor that drives one logical round
//!   trip through policy + breaker and reports what it spent, so the
//!   caller can surface retries / timeouts / breaker trips in
//!   [`StatsSnapshot`](crate::stats::StatsSnapshot).
//!
//! Exhausted retries collapse into [`PolyError::Unreachable`], the
//! structured signal the augmenters turn into a partial answer instead of
//! sinking the whole augmentation.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use quepa_pdm::DatabaseName;

use crate::error::{PolyError, Result};

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// How a single logical round trip behaves under failure.
///
/// All fields are plain `Copy` data (no floats) so the policy can live
/// inside configuration structs that are `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per round trip, including the first (≥ 1; the
    /// executor clamps 0 to 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff pause.
    pub max_backoff: Duration,
    /// Jitter as a percentage (0–100) subtracted from the raw backoff:
    /// the pause for retry `i` is `raw − raw · jitter_pct/100 · u(salt, i)`
    /// with `u` a deterministic unit draw. `0` disables jitter.
    pub jitter_pct: u32,
    /// Per-attempt deadline: an attempt whose wall time exceeds it is
    /// counted as a timeout (the result is discarded) and retried.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    /// The trivial policy: one attempt, no backoff, no deadline — the
    /// pre-resilience behaviour, and the zero-overhead happy path.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_pct: 0,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A reasonable production-shaped policy: 4 attempts, 100 µs base
    /// backoff doubling to at most 10 ms, 50 % jitter, no deadline.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter_pct: 50,
            deadline: None,
        }
    }

    /// True when the policy can never retry nor time out — the executor
    /// is bypassed entirely for such policies.
    pub fn is_trivial(&self) -> bool {
        self.max_attempts <= 1 && self.deadline.is_none()
    }

    /// Clamps the knobs into meaningful ranges.
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        self.max_attempts = self.max_attempts.max(1);
        self.jitter_pct = self.jitter_pct.min(100);
        if self.max_backoff < self.base_backoff {
            self.max_backoff = self.base_backoff;
        }
        self
    }

    /// The closed-form backoff before retry `retry_index` (0-based: the
    /// pause between attempt 1 and attempt 2 is `backoff(0, ..)`).
    ///
    /// ```text
    /// raw(i)     = min(base · 2^min(i,16), max)
    /// jitter(i)  = raw(i) · jitter_pct/100 · unit(salt, i)   (exact integer math)
    /// backoff(i) = raw(i) − jitter(i)
    /// ```
    ///
    /// `unit(salt, i)` is the top 53 bits of a splitmix64 hash of
    /// `(salt, i)` scaled to `[0, 1)` — fully deterministic, so a chaos
    /// schedule replays with identical pauses.
    pub fn backoff(&self, retry_index: u32, salt: u64) -> Duration {
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << retry_index.min(16))
            .min(self.max_backoff.max(self.base_backoff));
        if self.jitter_pct == 0 || raw.is_zero() {
            return raw;
        }
        // Exact integer arithmetic: nanos · pct · h53 / (100 · 2^53).
        let h53 = (mix(salt, retry_index as u64) >> 11) as u128;
        let sub = raw.as_nanos() * self.jitter_pct as u128 * h53 / (100u128 << 53);
        raw - Duration::from_nanos(sub as u64)
    }
}

/// splitmix64 finalizer over a salt/index pair — the jitter source.
fn mix(salt: u64, index: u64) -> u64 {
    let mut z = salt ^ index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker knobs. `trip_after == 0` disables the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive round-trip failures that open the breaker (0 = off).
    pub trip_after: u32,
    /// How many calls an open breaker rejects before probing (half-open).
    /// Counter-based, not clock-based, so chaos runs stay deterministic.
    pub cooldown_calls: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 0, cooldown_calls: 8 }
    }
}

impl BreakerConfig {
    /// True when the breaker never trips.
    pub fn is_disabled(&self) -> bool {
        self.trip_after == 0
    }
}

/// The observable state of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected without reaching the store.
    Open,
    /// One probe call is admitted; its outcome decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    probe_in_flight: bool,
}

/// A per-store circuit breaker (closed → open → half-open).
///
/// Transitions are driven purely by call outcomes and call counts:
///
/// * **Closed**: `trip_after` consecutive failures → **Open**;
/// * **Open**: the next `cooldown_calls` admissions are rejected, then
///   the breaker moves to **HalfOpen**;
/// * **HalfOpen**: exactly one probe is admitted — success closes the
///   breaker, failure re-opens it (counted as another trip).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

/// Verdict of [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The call may proceed to the store.
    Allowed,
    /// The breaker is open: fail fast without a round trip.
    Rejected,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                cooldown_left: 0,
                probe_in_flight: false,
            }),
        }
    }

    /// Asks whether a call may proceed. Open breakers burn one cooldown
    /// tick per rejected call; the tick that exhausts the cooldown moves
    /// the breaker to half-open (the *next* call becomes the probe).
    pub fn admit(&self) -> Admission {
        if self.config.is_disabled() {
            return Admission::Allowed;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::Open => {
                inner.cooldown_left = inner.cooldown_left.saturating_sub(1);
                if inner.cooldown_left == 0 {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = false;
                }
                Admission::Rejected
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    Admission::Rejected
                } else {
                    inner.probe_in_flight = true;
                    Admission::Allowed
                }
            }
        }
    }

    /// Reports a successful round trip: closes the breaker.
    pub fn on_success(&self) {
        if self.config.is_disabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.probe_in_flight = false;
    }

    /// Reports a failed round trip; returns `true` when this failure
    /// tripped the breaker open (including a failed half-open probe).
    pub fn on_failure(&self) -> bool {
        if self.config.is_disabled() {
            return false;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.trip_after {
                    inner.state = BreakerState::Open;
                    inner.cooldown_left = self.config.cooldown_calls.max(1);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.cooldown_left = self.config.cooldown_calls.max(1);
                inner.probe_in_flight = false;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        if self.config.is_disabled() {
            return BreakerState::Closed;
        }
        self.inner.lock().state
    }
}

/// Per-database breakers sharing one configuration. Owned by the system
/// (`Quepa`) so breaker state persists across augmentation runs.
#[derive(Debug)]
pub struct BreakerSet {
    inner: Mutex<BreakerSetInner>,
}

#[derive(Debug)]
struct BreakerSetInner {
    config: BreakerConfig,
    breakers: BTreeMap<DatabaseName, Arc<CircuitBreaker>>,
}

impl BreakerSet {
    /// Creates a set with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerSet { inner: Mutex::new(BreakerSetInner { config, breakers: BTreeMap::new() }) }
    }

    /// A set whose breakers never trip.
    pub fn disabled() -> Self {
        Self::new(BreakerConfig::default())
    }

    /// The breaker guarding `database`, or `None` when breakers are
    /// disabled (callers skip the admission dance entirely).
    pub fn breaker(&self, database: &DatabaseName) -> Option<Arc<CircuitBreaker>> {
        let mut inner = self.inner.lock();
        if inner.config.is_disabled() {
            return None;
        }
        let config = inner.config;
        Some(Arc::clone(
            inner
                .breakers
                .entry(database.clone())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(config))),
        ))
    }

    /// The state of `database`'s breaker (Closed when none exists yet).
    pub fn state(&self, database: &DatabaseName) -> BreakerState {
        let inner = self.inner.lock();
        inner.breakers.get(database).map_or(BreakerState::Closed, |b| b.state())
    }

    /// Replaces the configuration; existing breaker state is dropped when
    /// the configuration actually changed.
    pub fn reconfigure(&self, config: BreakerConfig) {
        let mut inner = self.inner.lock();
        if inner.config != config {
            inner.config = config;
            inner.breakers.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// The retry executor
// ---------------------------------------------------------------------------

/// What one resilient round trip spent, for the statistics layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTripReport {
    /// Attempts actually made (0 when the breaker rejected the call).
    pub attempts: u32,
    /// Retries (attempts beyond the first).
    pub retries: u64,
    /// Attempts that ended in a timeout (injected or measured).
    pub timeouts: u64,
    /// Breaker trips caused by this round trip's failures.
    pub breaker_trips: u64,
}

/// Whether an error is worth retrying: transient store errors, timeouts
/// and outages are; schema/config mistakes are not.
pub fn is_retryable(error: &PolyError) -> bool {
    matches!(
        error,
        PolyError::Store { .. } | PolyError::Timeout { .. } | PolyError::Unavailable { .. }
    )
}

/// Drives one logical round trip (`call`) under `policy` and an optional
/// `breaker`, sleeping the deterministic backoff between attempts.
///
/// * A breaker rejection fails fast with [`PolyError::Unreachable`]
///   (`attempts == 0`) — no round trip is made.
/// * An attempt whose wall time exceeds `policy.deadline` is counted as
///   a timeout; its result (even a success) is discarded and retried.
/// * When every attempt fails with a retryable error the final result is
///   [`PolyError::Unreachable`] carrying the attempt count and the last
///   underlying error; non-retryable errors surface immediately as-is.
///
/// `salt` seeds the jitter stream: callers pass a stable identity of the
/// round trip (e.g. an FNV hash of the keys) so reruns pause identically.
pub fn run_round_trip<T>(
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
    database: &DatabaseName,
    salt: u64,
    mut call: impl FnMut() -> Result<T>,
) -> (Result<T>, RoundTripReport) {
    let mut report = RoundTripReport::default();
    if let Some(b) = breaker {
        if b.admit() == Admission::Rejected {
            quepa_obs::record_breaker_rejection(database.as_str());
            let err = PolyError::Unreachable {
                database: database.to_string(),
                attempts: 0,
                last: "circuit breaker open".into(),
            };
            return (Err(err), report);
        }
    }
    let max_attempts = policy.max_attempts.max(1);
    let mut last: Option<PolyError> = None;
    for attempt in 0..max_attempts {
        // Re-attempts report under the Retry stage (the guard restores the
        // caller's stage when the attempt ends), so a chaos run's metrics
        // show where resilience spent its budget.
        let _retry_stage = if attempt > 0 {
            report.retries += 1;
            let pause = policy.backoff(attempt - 1, salt);
            quepa_obs::record_backoff(database.as_str(), pause);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            Some(quepa_obs::enter_stage(quepa_obs::Stage::Retry))
        } else {
            None
        };
        report.attempts += 1;
        let started = Instant::now();
        let mut result = call();
        if let Some(deadline) = policy.deadline {
            if result.is_ok() && started.elapsed() > deadline {
                // The store answered after the caller gave up: the reply
                // is dead on arrival, exactly like a wire timeout.
                result = Err(PolyError::Timeout { database: database.to_string() });
            }
        }
        match result {
            Ok(value) => {
                if let Some(b) = breaker {
                    b.on_success();
                }
                return (Ok(value), report);
            }
            Err(e) if !is_retryable(&e) => return (Err(e), report),
            Err(e) => {
                if matches!(e, PolyError::Timeout { .. }) {
                    report.timeouts += 1;
                }
                if let Some(b) = breaker {
                    if b.on_failure() {
                        report.breaker_trips += 1;
                    }
                }
                last = Some(e);
            }
        }
    }
    let last = last.expect("at least one attempt ran");
    let err = PolyError::Unreachable {
        database: database.to_string(),
        attempts: report.attempts,
        last: last.to_string(),
    };
    (Err(err), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(name: &str) -> DatabaseName {
        DatabaseName::new(name).unwrap()
    }

    #[test]
    fn trivial_policy_is_single_shot() {
        let p = RetryPolicy::default();
        assert!(p.is_trivial());
        assert_eq!(p.backoff(0, 7), Duration::ZERO);
        let (r, report) = run_round_trip(&p, None, &db("d"), 1, || Ok::<_, PolyError>(42));
        assert_eq!(r.unwrap(), 42);
        assert_eq!(report, RoundTripReport { attempts: 1, ..Default::default() });
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(350),
            jitter_pct: 0,
            deadline: None,
        };
        assert_eq!(p.backoff(0, 0), Duration::from_micros(100));
        assert_eq!(p.backoff(1, 0), Duration::from_micros(200));
        assert_eq!(p.backoff(2, 0), Duration::from_micros(350), "capped");
        assert_eq!(p.backoff(10, 0), Duration::from_micros(350));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy { jitter_pct: 50, ..RetryPolicy::standard() };
        let raw = RetryPolicy { jitter_pct: 0, ..p }.backoff(3, 9);
        let a = p.backoff(3, 9);
        let b = p.backoff(3, 9);
        assert_eq!(a, b, "same salt, same pause");
        assert!(a <= raw && a >= raw / 2, "jitter subtracts at most 50%: {a:?} vs {raw:?}");
        assert_ne!(p.backoff(3, 10), a, "different salt, different pause (w.h.p.)");
    }

    #[test]
    fn retries_until_success_and_reports() {
        let p = RetryPolicy { max_attempts: 5, ..RetryPolicy::default() };
        let mut calls = 0;
        let (r, report) = run_round_trip(&p, None, &db("d"), 1, || {
            calls += 1;
            if calls < 3 {
                Err(PolyError::store("d", "flaky"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 3);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.retries, 2);
    }

    #[test]
    fn exhaustion_wraps_into_unreachable() {
        let p = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let (r, report) =
            run_round_trip::<()>(&p, None, &db("d"), 1, || Err(PolyError::store("d", "down")));
        match r {
            Err(PolyError::Unreachable { database, attempts, last }) => {
                assert_eq!(database, "d");
                assert_eq!(attempts, 3);
                assert!(last.contains("down"));
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
        assert_eq!(report.retries, 2);
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let p = RetryPolicy { max_attempts: 5, ..RetryPolicy::default() };
        let (r, report) = run_round_trip::<()>(&p, None, &db("d"), 1, || {
            Err(PolyError::UnknownDatabase("ghost".into()))
        });
        assert!(matches!(r, Err(PolyError::UnknownDatabase(_))));
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn deadline_discards_slow_successes() {
        let p = RetryPolicy {
            max_attempts: 2,
            deadline: Some(Duration::from_micros(50)),
            ..RetryPolicy::default()
        };
        let (r, report) = run_round_trip(&p, None, &db("d"), 1, || {
            std::thread::sleep(Duration::from_millis(2));
            Ok::<_, PolyError>(1)
        });
        assert!(matches!(r, Err(PolyError::Unreachable { .. })));
        assert_eq!(report.timeouts, 2, "both attempts overran the deadline");
    }

    #[test]
    fn breaker_lifecycle() {
        let b = CircuitBreaker::new(BreakerConfig { trip_after: 2, cooldown_calls: 2 });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure());
        assert!(b.on_failure(), "second consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Two rejected calls burn the cooldown...
        assert_eq!(b.admit(), Admission::Rejected);
        assert_eq!(b.admit(), Admission::Rejected);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // ...then exactly one probe is admitted.
        assert_eq!(b.admit(), Admission::Allowed);
        assert_eq!(b.admit(), Admission::Rejected, "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allowed);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(BreakerConfig { trip_after: 1, cooldown_calls: 1 });
        assert!(b.on_failure());
        assert_eq!(b.admit(), Admission::Rejected);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), Admission::Allowed);
        assert!(b.on_failure(), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_breaker_fails_fast_through_executor() {
        let set = BreakerSet::new(BreakerConfig { trip_after: 1, cooldown_calls: 4 });
        let d = db("d");
        let breaker = set.breaker(&d).unwrap();
        let p = RetryPolicy::default();
        let (_, _) =
            run_round_trip::<()>(&p, Some(&breaker), &d, 1, || Err(PolyError::store("d", "x")));
        assert_eq!(set.state(&d), BreakerState::Open);
        let mut called = false;
        let (r, report) = run_round_trip::<()>(&p, Some(&breaker), &d, 1, || {
            called = true;
            Ok(())
        });
        assert!(!called, "open breaker must not reach the store");
        assert_eq!(report.attempts, 0);
        assert!(matches!(r, Err(PolyError::Unreachable { attempts: 0, .. })));
    }

    #[test]
    fn disabled_breaker_set_hands_out_none() {
        let set = BreakerSet::disabled();
        assert!(set.breaker(&db("d")).is_none());
        assert_eq!(set.state(&db("d")), BreakerState::Closed);
    }

    #[test]
    fn reconfigure_resets_state() {
        let cfg = BreakerConfig { trip_after: 1, cooldown_calls: 1 };
        let set = BreakerSet::new(cfg);
        let d = db("d");
        set.breaker(&d).unwrap().on_failure();
        assert_eq!(set.state(&d), BreakerState::Open);
        set.reconfigure(cfg);
        assert_eq!(set.state(&d), BreakerState::Open, "same config keeps state");
        set.reconfigure(BreakerConfig { trip_after: 2, cooldown_calls: 1 });
        assert_eq!(set.state(&d), BreakerState::Closed, "new config drops state");
    }
}
