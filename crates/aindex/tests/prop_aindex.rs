//! Property-based tests: the A' index invariants under random operation
//! sequences.

use proptest::prelude::*;
use quepa_aindex::{AIndex, DeletionPolicy};
use quepa_pdm::{GlobalKey, Probability, RelationKind};

#[derive(Debug, Clone)]
enum Op {
    Identity(u8, u8, f64),
    Matching(u8, u8, f64),
    RemoveObject(u8),
    DeleteIdentity(u8, u8),
    DeleteMatching(u8, u8),
}

fn key(i: u8) -> GlobalKey {
    format!("db{}.coll.k{}", i % 4, i).parse().unwrap()
}

fn arb_op() -> impl Strategy<Value = Op> {
    let n = 0u8..12;
    let p = 0.05f64..=1.0;
    prop_oneof![
        4 => (n.clone(), n.clone(), p.clone()).prop_map(|(a, b, p)| Op::Identity(a, b, p)),
        4 => (n.clone(), n.clone(), p).prop_map(|(a, b, p)| Op::Matching(a, b, p)),
        1 => n.clone().prop_map(Op::RemoveObject),
        1 => (n.clone(), n.clone()).prop_map(|(a, b)| Op::DeleteIdentity(a, b)),
        1 => (n.clone(), n).prop_map(|(a, b)| Op::DeleteMatching(a, b)),
    ]
}

fn apply(ix: &mut AIndex, op: &Op) {
    match op {
        Op::Identity(a, b, p) => ix.insert_identity(&key(*a), &key(*b), Probability::of(*p)),
        Op::Matching(a, b, p) => ix.insert_matching(&key(*a), &key(*b), Probability::of(*p)),
        Op::RemoveObject(a) => ix.remove_object(&key(*a)),
        Op::DeleteIdentity(a, b) => {
            ix.delete_prelation(&key(*a), &key(*b), RelationKind::Identity);
        }
        Op::DeleteMatching(a, b) => {
            ix.delete_prelation(&key(*a), &key(*b), RelationKind::Matching);
        }
    }
}

/// Edge deletions can legitimately break closure (the paper's Keep policy
/// deliberately leaves inferred edges dangling, and removing one edge of a
/// clique leaves the rest); consistency is only promised after *insert*
/// sequences.
fn is_insert(op: &Op) -> bool {
    matches!(op, Op::Identity(..) | Op::Matching(..))
}

proptest! {
    /// After any sequence of inserts, the Consistency Condition and the
    /// identity-transitivity closure hold.
    #[test]
    fn inserts_preserve_consistency(ops in prop::collection::vec(arb_op().prop_filter("insert", is_insert), 1..40)) {
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        prop_assert!(ix.check_consistency().is_none(), "violated: {:?}", ix.check_consistency());
    }

    /// Augmentation results are sorted by probability, never contain seeds,
    /// and grow monotonically with the level.
    #[test]
    fn augment_invariants(
        ops in prop::collection::vec(arb_op(), 1..50),
        seed in 0u8..12,
        level in 0usize..4,
    ) {
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        let out = ix.augment(&[key(seed)], level);
        prop_assert!(out.windows(2).all(|w| w[0].probability >= w[1].probability));
        prop_assert!(out.iter().all(|a| a.key != key(seed)));
        prop_assert!(out.iter().all(|a| a.distance <= level + 1 && a.distance >= 1));
        // Level monotonicity: every key found at level L appears at L+1
        // with at least the same probability.
        let bigger = ix.augment(&[key(seed)], level + 1);
        for a in &out {
            let found = bigger.iter().find(|b| b.key == a.key);
            prop_assert!(found.is_some(), "key lost when level grew");
            prop_assert!(found.unwrap().probability >= a.probability);
        }
        // No duplicates.
        let mut keys: Vec<_> = out.iter().map(|a| a.key.clone()).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), out.len());
    }

    /// Removing an object removes it from every future answer.
    #[test]
    fn removed_objects_never_reappear(
        ops in prop::collection::vec(arb_op().prop_filter("insert", is_insert), 1..40),
        victim in 0u8..12,
        seed in 0u8..12,
    ) {
        prop_assume!(victim != seed);
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        ix.remove_object(&key(victim));
        prop_assert!(!ix.contains(&key(victim)));
        let out = ix.augment(&[key(seed)], 3);
        prop_assert!(out.iter().all(|a| a.key != key(victim)));
        prop_assert!(ix.neighbors(&key(victim)).is_empty());
    }

    /// Cascade deletion never leaves an inferred edge whose direct ancestor
    /// chain was destroyed... approximated here as: deleting every direct
    /// edge empties the graph of edges.
    #[test]
    fn cascade_full_teardown(ops in prop::collection::vec(arb_op().prop_filter("insert", is_insert), 1..30)) {
        let mut ix = AIndex::with_policy(DeletionPolicy::Cascade);
        let mut direct: Vec<(GlobalKey, GlobalKey, RelationKind)> = Vec::new();
        for op in &ops {
            apply(&mut ix, op);
            match op {
                Op::Identity(a, b, _) if a != b => {
                    direct.push((key(*a), key(*b), RelationKind::Identity));
                }
                Op::Matching(a, b, _) if a != b => {
                    direct.push((key(*a), key(*b), RelationKind::Matching));
                }
                _ => {}
            }
        }
        for (a, b, kind) in &direct {
            ix.delete_prelation(a, b, *kind);
        }
        prop_assert_eq!(ix.edge_count(), 0, "stats: {:?}", ix.stats());
    }

    /// Keep policy: deleting one edge never deletes any *other* edge.
    #[test]
    fn keep_policy_deletes_exactly_one(
        ops in prop::collection::vec(arb_op().prop_filter("insert", is_insert), 1..30),
        pick_a in 0u8..12,
        pick_b in 0u8..12,
    ) {
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        let before = ix.edge_count();
        let deleted = ix.delete_prelation(&key(pick_a), &key(pick_b), RelationKind::Identity);
        let after = ix.edge_count();
        prop_assert_eq!(after, before - usize::from(deleted));
    }

    /// Stats agree with edge_count.
    #[test]
    fn stats_consistent(ops in prop::collection::vec(arb_op(), 1..50)) {
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        let s = ix.stats();
        prop_assert_eq!(s.identity_edges + s.matching_edges, ix.edge_count());
        prop_assert_eq!(s.nodes, ix.node_count());
        prop_assert_eq!(s.nodes, ix.keys().count());
    }

    /// Serialization round-trips any insert-built graph exactly (same
    /// nodes, edges and augmentation answers).
    #[test]
    fn serialization_roundtrip(
        ops in prop::collection::vec(arb_op().prop_filter("insert", is_insert), 1..40),
        seed in 0u8..12,
        level in 0usize..3,
    ) {
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        let text = quepa_aindex::serial::to_string(&ix);
        let back = quepa_aindex::serial::from_str(&text).unwrap();
        prop_assert_eq!(back.node_count(), ix.node_count());
        prop_assert_eq!(back.edge_count(), ix.edge_count());
        prop_assert_eq!(back.augment(&[key(seed)], level), ix.augment(&[key(seed)], level));
        prop_assert!(back.check_consistency().is_none());
    }

    /// `augment_multi` is the one-pass equivalent of the historical
    /// per-seed loop: its answer equals the canonical multi-seed
    /// `augment`, and its ownership vector equals the first-owner
    /// partition built by augmenting each seed alone, in order, and
    /// claiming keys no earlier seed claimed.
    #[test]
    fn augment_multi_matches_per_seed_oracle(
        ops in prop::collection::vec(arb_op(), 1..50),
        raw_seeds in prop::collection::vec(0u8..16, 1..7),
        level in 0usize..4,
    ) {
        let mut ix = AIndex::new();
        for op in &ops {
            apply(&mut ix, op);
        }
        // Seeds may repeat, be absent from the index, or be dead.
        let seeds: Vec<GlobalKey> = raw_seeds.iter().map(|s| key(*s)).collect();

        let (multi, owners) = ix.augment_multi(&seeds, level);
        prop_assert_eq!(&multi, &ix.augment(&seeds, level), "answer must be canonical");
        prop_assert_eq!(owners.len(), multi.len());

        // Oracle: the historical per-seed loop over the same seeds.
        let mut claimed: std::collections::HashMap<GlobalKey, u32> =
            seeds.iter().map(|s| (s.clone(), u32::MAX)).collect();
        for (j, seed) in seeds.iter().enumerate() {
            for a in ix.augment(std::slice::from_ref(seed), level) {
                claimed.entry(a.key).or_insert(j as u32);
            }
        }
        for (a, owner) in multi.iter().zip(&owners) {
            prop_assert!((*owner as usize) < seeds.len());
            prop_assert_eq!(
                claimed.get(&a.key),
                Some(owner),
                "wrong owner for {:?}",
                a.key
            );
        }
    }
}
