//! # quepa-aindex — the A' index
//!
//! The A' index (paper §III-B) is "a graph index where each global-key is
//! represented by one node, and there are two types of edges connecting
//! global-keys, representing *identity* and *matching* p-relations", each
//! carrying its probability.
//!
//! This crate implements:
//!
//! * the graph itself ([`AIndex`]) with insertion that **materializes
//!   identity transitivity** (Example 7: inserting `a ~0.8 b` when
//!   `b ~0.85 c` exists also materializes `a ~0.68 c`) and **enforces the
//!   Consistency Condition** (`o₁ ≡ o₂ ∧ o₂ ∼ o₃ ⇒ o₁ ≡ o₃`, §II-B);
//! * the **augmentation primitive**: the level-*n* neighbourhood used by
//!   [`Definition 2/3`](crate::index::AIndex::augment) with path-product
//!   probabilities (best path wins);
//! * **lazy deletion** of vanished objects (§III-C(b)) and a **lineage
//!   system** for cascading deletion of inferred p-relations — the paper
//!   lists this as planned work; it is implemented here behind
//!   [`DeletionPolicy`];
//! * **promotion of p-relations** (§III-D(a)): the `D_P` repository of
//!   traversed exploration paths and the threshold rule that turns a
//!   frequently walked path into a shortcut matching edge whose probability
//!   is the average along the path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod promote;
pub mod serial;
pub mod shard;

pub use index::{AIndex, AugmentedKey, DeletionPolicy, EdgeInfo, EdgeOrigin, IndexStats};
pub use promote::{PathRepository, PromotionConfig};
pub use serial::SerialError;
pub use shard::{Augmentable, IndexView, ShardIndexStats, ShardedIndex, UpdateReport, SHARD_COUNT};
