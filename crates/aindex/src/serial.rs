//! Persistence for the A' index: a line-based text format.
//!
//! QUEPA deployments replicate the A' index per instance (§III-A); this
//! module gives the index a durable interchange form:
//!
//! ```text
//! quepa-aindex v1
//! node <key>                         # isolated nodes only
//! edge <kind> <origin> <p> <a> <b>   # kind: id|match, origin: direct|inferred|promoted
//! ```
//!
//! Keys are percent-escaped (`%`, whitespace, newline) so arbitrary local
//! keys survive. **Lineage is flattened**: inferred edges reload as
//! direct edges (their parent links are not persisted), so cascade
//! deletion only reaches relations inserted after the load. The
//! graph itself round-trips exactly (same nodes, edges, kinds,
//! probabilities), which is what augmentation semantics depend on.

use std::fmt::Write as _;

use quepa_pdm::{GlobalKey, PdmError, Probability, RelationKind};

use crate::index::{AIndex, EdgeOrigin};

/// Errors raised while loading a serialized index.
#[derive(Debug, Clone, PartialEq)]
pub enum SerialError {
    /// Missing or wrong header line.
    BadHeader(String),
    /// A malformed line, with its 1-based number.
    BadLine {
        /// Line number.
        line: usize,
        /// What is wrong.
        message: String,
    },
    /// A key failed to parse.
    Pdm(PdmError),
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            SerialError::BadLine { line, message } => {
                write!(f, "bad line {line}: {message}")
            }
            SerialError::Pdm(e) => write!(f, "key error: {e}"),
        }
    }
}

impl std::error::Error for SerialError {}

impl From<PdmError> for SerialError {
    fn from(e: PdmError) -> Self {
        SerialError::Pdm(e)
    }
}

const HEADER: &str = "quepa-aindex v1";

/// Percent-escapes `%` and whitespace so an arbitrary key fits in one
/// space-separated token. Shared with the durability layer's WAL and
/// checkpoint formats.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < s.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3).ok_or("truncated escape")?;
            let v = u8::from_str_radix(hex, 16).map_err(|_| "bad escape digits")?;
            out.push(v as char);
            i += 3;
        } else {
            let c = s[i..].chars().next().expect("in bounds");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

/// Serializes the live part of an index.
pub fn to_string(index: &AIndex) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    // Isolated nodes first (nodes with edges are implied by their edges).
    let mut connected: std::collections::HashSet<&GlobalKey> = Default::default();
    let edges = index.live_edges();
    for (a, b, ..) in &edges {
        connected.insert(a);
        connected.insert(b);
    }
    for key in index.keys() {
        if !connected.contains(key) {
            let _ = writeln!(out, "node {}", escape(&key.to_string()));
        }
    }
    for (a, b, kind, prob, origin) in edges {
        let kind = match kind {
            RelationKind::Identity => "id",
            RelationKind::Matching => "match",
        };
        let origin = match origin {
            EdgeOrigin::Direct => "direct",
            EdgeOrigin::Inferred(..) => "inferred",
            EdgeOrigin::Promoted => "promoted",
        };
        let _ = writeln!(
            out,
            "edge {kind} {origin} {} {} {}",
            prob.get(),
            escape(&a.to_string()),
            escape(&b.to_string()),
        );
    }
    out
}

/// Loads an index serialized by [`to_string`].
pub fn from_str(input: &str) -> Result<AIndex, SerialError> {
    let mut lines = input.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(SerialError::BadHeader(
                other.map(|(_, h)| h.to_owned()).unwrap_or_default(),
            ))
        }
    }
    let mut index = AIndex::new();
    for (i, line) in lines {
        let line_no = i + 1;
        let bad =
            |message: &str| SerialError::BadLine { line: line_no, message: message.to_owned() };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(' ');
        match parts.next() {
            Some("node") => {
                let raw = parts.next().ok_or_else(|| bad("node needs a key"))?;
                let key: GlobalKey = unescape(raw).map_err(|m| bad(&m))?.parse()?;
                index.ensure_node(&key);
            }
            Some("edge") => {
                let kind = match parts.next() {
                    Some("id") => RelationKind::Identity,
                    Some("match") => RelationKind::Matching,
                    _ => return Err(bad("edge kind must be id|match")),
                };
                let origin = match parts.next() {
                    Some("direct" | "inferred") => EdgeOrigin::Direct,
                    Some("promoted") => EdgeOrigin::Promoted,
                    _ => return Err(bad("edge origin must be direct|inferred|promoted")),
                };
                let p: f64 = parts
                    .next()
                    .ok_or_else(|| bad("edge needs a probability"))?
                    .parse()
                    .map_err(|_| bad("bad probability"))?;
                let p = Probability::new(p)?;
                let a: GlobalKey = unescape(parts.next().ok_or_else(|| bad("edge needs keys"))?)
                    .map_err(|m| bad(&m))?
                    .parse()?;
                let b: GlobalKey = unescape(parts.next().ok_or_else(|| bad("edge needs 2 keys"))?)
                    .map_err(|m| bad(&m))?
                    .parse()?;
                // The serialized graph is already closed under the
                // Consistency Condition, so raw insertion suffices (and
                // keeps probabilities bit-exact).
                index.insert_raw(&a, &b, kind, p, origin);
            }
            _ => return Err(bad("expected node|edge")),
        }
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    fn sample() -> AIndex {
        let mut ix = AIndex::new();
        ix.insert_identity(&k("a.c.1"), &k("b.c.1"), Probability::of(0.9));
        ix.insert_identity(&k("b.c.1"), &k("c.c.1"), Probability::of(0.8));
        ix.insert_matching(&k("a.c.1"), &k("d.c.x y"), Probability::of(0.7));
        ix.insert_promoted(&k("a.c.1"), &k("d.c.z"), Probability::of(0.65));
        ix
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let ix = sample();
        let text = to_string(&ix);
        let back = from_str(&text).unwrap();
        assert_eq!(back.node_count(), ix.node_count());
        assert_eq!(back.edge_count(), ix.edge_count());
        let s1 = ix.stats();
        let s2 = back.stats();
        assert_eq!(s1.identity_edges, s2.identity_edges);
        assert_eq!(s1.matching_edges, s2.matching_edges);
        assert_eq!(s1.promoted_edges, s2.promoted_edges);
        // Augmentation answers are identical.
        let a1 = ix.augment(&[k("a.c.1")], 2);
        let a2 = back.augment(&[k("a.c.1")], 2);
        assert_eq!(a1, a2);
        assert!(back.check_consistency().is_none());
    }

    #[test]
    fn keys_with_spaces_survive() {
        let ix = sample();
        let back = from_str(&to_string(&ix)).unwrap();
        assert!(back.contains(&k("d.c.x y")));
    }

    #[test]
    fn isolated_nodes_survive() {
        let mut ix = sample();
        ix.ensure_node(&k("lonely.c.1"));
        let back = from_str(&to_string(&ix)).unwrap();
        assert!(back.contains(&k("lonely.c.1")));
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = format!("{HEADER}\n\n# a comment\nnode a.c.1\n");
        let ix = from_str(&text).unwrap();
        assert!(ix.contains(&k("a.c.1")));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(from_str(""), Err(SerialError::BadHeader(_))));
        assert!(matches!(from_str("wrong header"), Err(SerialError::BadHeader(_))));
        for bad in [
            "garbage line",
            "edge id direct notanumber a.c.1 b.c.1",
            "edge id direct 1.5 a.c.1 b.c.1", // probability out of range
            "edge weird direct 0.5 a.c.1 b.c.1",
            "edge id nowhere 0.5 a.c.1 b.c.1",
            "edge id direct 0.5 a.c.1",
            "node notakey",
        ] {
            let text = format!("{HEADER}\n{bad}\n");
            assert!(from_str(&text).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "with space", "pct%sign", "tab\there", "multi\nline", "ключ"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
        assert!(unescape("%2").is_err());
        assert!(unescape("%zz").is_err());
    }
}
