//! Promotion of p-relations (paper §III-D(a)).
//!
//! QUEPA keeps in a repository `D_P` "the full paths of the A' index that
//! are traversed by users during augmented exploration" together with their
//! visit counts. When a path of length ≥ 2 has been traversed `τ(len)`
//! times — a threshold that *decreases* with the path length, since long
//! paths are rarer — a shortcut matching p-relation is added between the
//! path's endpoints, with probability equal to the *average* of the edge
//! probabilities along the path (Example 8).

use std::collections::HashMap;

use quepa_pdm::{GlobalKey, Probability};

use crate::index::AIndex;

/// Promotion thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionConfig {
    /// Visits required for the shortest promotable path (2 edges).
    pub base_threshold: usize,
    /// Lower bound for the threshold regardless of path length.
    pub min_threshold: usize,
}

impl Default for PromotionConfig {
    fn default() -> Self {
        PromotionConfig { base_threshold: 16, min_threshold: 2 }
    }
}

impl PromotionConfig {
    /// The visit threshold `τ` for a path of `edges` edges: halves with
    /// every extra edge beyond two, floored at `min_threshold`.
    pub fn threshold(&self, edges: usize) -> usize {
        debug_assert!(edges >= 2);
        let shift = (edges - 2).min(usize::BITS as usize - 1);
        (self.base_threshold >> shift).max(self.min_threshold)
    }
}

/// A promotion that fired: the endpoints to connect and the probability of
/// the new matching edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Promotion {
    /// One endpoint of the traversed path.
    pub from: GlobalKey,
    /// The other endpoint.
    pub to: GlobalKey,
    /// The average probability along the path.
    pub probability: Probability,
}

/// The `D_P` repository: visit counts per full exploration path.
#[derive(Debug, Clone, Default)]
pub struct PathRepository {
    config: PromotionConfig,
    visits: HashMap<Vec<GlobalKey>, usize>,
    promotions_fired: usize,
}

impl PathRepository {
    /// Creates an empty repository with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty repository with explicit thresholds.
    pub fn with_config(config: PromotionConfig) -> Self {
        PathRepository { config, ..Self::default() }
    }

    /// The configured thresholds.
    pub fn config(&self) -> PromotionConfig {
        self.config
    }

    /// Number of distinct paths tracked.
    pub fn tracked_paths(&self) -> usize {
        self.visits.len()
    }

    /// Number of promotions that have fired.
    pub fn promotions_fired(&self) -> usize {
        self.promotions_fired
    }

    /// Visit count of a specific path.
    pub fn visits(&self, path: &[GlobalKey]) -> usize {
        self.visits.get(path).copied().unwrap_or(0)
    }

    /// Records one full exploration path `v₀ … v_k` and, if its visit count
    /// reaches the threshold for its length, returns the promotion to apply
    /// (adding the edge is the caller's job, via
    /// [`AIndex::insert_promoted`]). Paths with fewer than two edges are
    /// ignored (`k > 1` in the paper).
    ///
    /// `index` supplies the edge probabilities along the path: hops that no
    /// longer exist in the index contribute nothing; if *no* hop resolves,
    /// the promotion is skipped.
    pub fn record(&mut self, path: &[GlobalKey], index: &AIndex) -> Option<Promotion> {
        if path.len() < 3 {
            return None;
        }
        let count = self.visits.entry(path.to_vec()).or_insert(0);
        *count += 1;
        let edges = path.len() - 1;
        if *count != self.config.threshold(edges) {
            return None;
        }
        // Average of edge probabilities along the path. neighbors() gives
        // the live relations of each hop; take the best edge between the
        // consecutive pair regardless of kind.
        let mut probs = Vec::with_capacity(edges);
        for pair in path.windows(2) {
            let best = index
                .neighbors(&pair[0])
                .into_iter()
                .filter(|(k, _, _)| k == &pair[1])
                .map(|(_, _, p)| p)
                .max();
            if let Some(p) = best {
                probs.push(p);
            }
        }
        let probability = Probability::average_of(probs)?;
        self.promotions_fired += 1;
        Some(Promotion { from: path[0].clone(), to: path[path.len() - 1].clone(), probability })
    }

    /// Records a path and immediately applies any promotion to the index.
    /// Returns the promotion if one fired and actually added an edge.
    pub fn record_and_promote(
        &mut self,
        path: &[GlobalKey],
        index: &mut AIndex,
    ) -> Option<Promotion> {
        let promo = self.record(path, index)?;
        index.insert_promoted(&promo.from, &promo.to, promo.probability).then_some(promo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::RelationKind;

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    fn p(f: f64) -> Probability {
        Probability::of(f)
    }

    /// A chain a ≡ b ≡ c ≡ d to explore along.
    fn chain() -> AIndex {
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_matching(&k("d.c.b"), &k("d.c.c"), p(0.7));
        ix.insert_matching(&k("d.c.c"), &k("d.c.d"), p(0.8));
        ix
    }

    #[test]
    fn threshold_decreases_with_length() {
        let c = PromotionConfig { base_threshold: 16, min_threshold: 2 };
        assert_eq!(c.threshold(2), 16);
        assert_eq!(c.threshold(3), 8);
        assert_eq!(c.threshold(4), 4);
        assert_eq!(c.threshold(5), 2);
        assert_eq!(c.threshold(6), 2, "floored at min");
        assert_eq!(c.threshold(100), 2, "no shift overflow");
    }

    #[test]
    fn promotion_fires_at_threshold_with_average_probability() {
        let mut ix = chain();
        let mut dp =
            PathRepository::with_config(PromotionConfig { base_threshold: 3, min_threshold: 1 });
        let path = [k("d.c.a"), k("d.c.b"), k("d.c.c")];
        assert!(dp.record_and_promote(&path, &mut ix).is_none());
        assert!(dp.record_and_promote(&path, &mut ix).is_none());
        let promo = dp.record_and_promote(&path, &mut ix).expect("third visit fires");
        assert_eq!(promo.from, k("d.c.a"));
        assert_eq!(promo.to, k("d.c.c"));
        // Average of 0.9 and 0.7.
        assert!((promo.probability.get() - 0.8).abs() < 1e-12);
        let e = ix.edge(&k("d.c.a"), &k("d.c.c"), RelationKind::Matching).unwrap();
        assert_eq!(e.probability, p(0.8));
        // Fires exactly once.
        assert!(dp.record_and_promote(&path, &mut ix).is_none());
        assert_eq!(dp.promotions_fired(), 1);
        assert_eq!(dp.visits(&path), 4);
    }

    #[test]
    fn short_paths_never_promote() {
        let mut ix = chain();
        let mut dp =
            PathRepository::with_config(PromotionConfig { base_threshold: 1, min_threshold: 1 });
        for _ in 0..10 {
            assert!(dp.record_and_promote(&[k("d.c.a"), k("d.c.b")], &mut ix).is_none());
        }
        assert_eq!(dp.tracked_paths(), 0);
    }

    #[test]
    fn longer_paths_promote_sooner() {
        let mut ix = chain();
        let mut dp =
            PathRepository::with_config(PromotionConfig { base_threshold: 4, min_threshold: 1 });
        let long = [k("d.c.a"), k("d.c.b"), k("d.c.c"), k("d.c.d")];
        // threshold(3 edges) = 2.
        assert!(dp.record_and_promote(&long, &mut ix).is_none());
        let promo = dp.record_and_promote(&long, &mut ix).expect("second visit fires");
        // Average of 0.9, 0.7, 0.8.
        assert!((promo.probability.get() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn existing_edge_blocks_promotion_application() {
        let mut ix = chain();
        // a ≡ c already exists.
        ix.insert_matching(&k("d.c.a"), &k("d.c.c"), p(0.5));
        let mut dp =
            PathRepository::with_config(PromotionConfig { base_threshold: 1, min_threshold: 1 });
        let path = [k("d.c.a"), k("d.c.b"), k("d.c.c")];
        // The promotion computes but adds nothing ("if not yet present").
        assert!(dp.record_and_promote(&path, &mut ix).is_none());
        let e = ix.edge(&k("d.c.a"), &k("d.c.c"), RelationKind::Matching).unwrap();
        assert_eq!(e.probability, p(0.5), "existing edge untouched");
    }

    #[test]
    fn vanished_hops_are_tolerated() {
        let mut ix = chain();
        ix.remove_object(&k("d.c.b"));
        let mut dp =
            PathRepository::with_config(PromotionConfig { base_threshold: 1, min_threshold: 1 });
        let path = [k("d.c.a"), k("d.c.b"), k("d.c.c")];
        // The a—b hop is gone; the average is over the surviving hops only
        // (b—c also involves the dead node, so nothing survives → skip).
        assert!(dp.record_and_promote(&path, &mut ix).is_none());
    }

    #[test]
    fn distinct_paths_count_separately() {
        let mut ix = chain();
        let mut dp =
            PathRepository::with_config(PromotionConfig { base_threshold: 2, min_threshold: 2 });
        let p1 = [k("d.c.a"), k("d.c.b"), k("d.c.c")];
        let p2 = [k("d.c.b"), k("d.c.c"), k("d.c.d")];
        dp.record_and_promote(&p1, &mut ix);
        dp.record_and_promote(&p2, &mut ix);
        assert_eq!(dp.tracked_paths(), 2);
        assert_eq!(dp.visits(&p1), 1);
        assert!(dp.record_and_promote(&p1, &mut ix).is_some());
        assert!(dp.record_and_promote(&p2, &mut ix).is_some());
    }
}
