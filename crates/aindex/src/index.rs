//! The A' index graph and the augmentation primitive.
//!
//! Hot-path layout: `GlobalKey`s are interned to dense `u32` node ids on
//! insertion, adjacency lives in an incrementally compacted CSR
//! (compressed sparse row) structure, and per-query visit tracking uses
//! epoch-stamped scratch buffers pooled across queries — augmentation
//! never hashes a string or allocates a per-node map entry.

use std::collections::HashMap;

use parking_lot::Mutex;
use quepa_pdm::{GlobalKey, Probability, RelationKind};

/// Node handle inside the index.
type NodeId = u32;
/// Edge handle inside the index.
type EdgeId = u32;

/// Where an edge came from — the lineage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOrigin {
    /// Inserted by the Collector (or by hand).
    Direct,
    /// Materialized by transitivity / the Consistency Condition from two
    /// parent edges.
    Inferred(EdgeId, EdgeId),
    /// Added by p-relation promotion from a frequently traversed path.
    Promoted,
}

/// What to do with inferred edges when one of their parents is deleted.
///
/// The paper (§III-C(b)) opts to *keep* inferred p-relations when the
/// relation they were inferred from is deleted, and mentions a lineage
/// system for "use cases that require data oblivion" as future work — both
/// behaviours are available here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletionPolicy {
    /// Keep edges inferred through the deleted one (the paper's default).
    #[default]
    Keep,
    /// Cascade: delete everything whose lineage passes through the deleted
    /// edge (data oblivion).
    Cascade,
}

#[derive(Debug, Clone)]
struct Edge {
    a: NodeId,
    b: NodeId,
    kind: RelationKind,
    prob: Probability,
    origin: EdgeOrigin,
    alive: bool,
}

impl Edge {
    fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// One element of an augmented answer: a related global key, the
/// probability that it is related to a seed, and its hop distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugmentedKey {
    /// The related object's global key.
    pub key: GlobalKey,
    /// Best path-product probability from any seed.
    pub probability: Probability,
    /// Hop distance of the best (highest-probability) path.
    pub distance: usize,
}

/// Size statistics of the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Live nodes.
    pub nodes: usize,
    /// Live identity edges.
    pub identity_edges: usize,
    /// Live matching edges.
    pub matching_edges: usize,
    /// Edges that were materialized by inference.
    pub inferred_edges: usize,
    /// Edges added by promotion.
    pub promoted_edges: usize,
}

/// Incrementally built CSR adjacency: most edge ids live in one packed
/// array (`offsets`/`packed`), edges added since the last compaction sit
/// in small per-node overflow vectors, and compaction re-packs once the
/// overflow exceeds a fraction of the packed size (amortized O(1) per
/// insertion). Per-node edge order — packed segment first, then overflow
/// in insertion order — is exactly the historical `Vec<Vec<EdgeId>>`
/// push order, so traversal results are unchanged.
#[derive(Debug, Clone, Default)]
struct CsrAdjacency {
    /// Per compacted node, start of its segment in `packed`; one extra
    /// trailing entry holds the total. Nodes created after the last
    /// compaction have no segment yet.
    offsets: Vec<u32>,
    /// Edge ids of all compacted nodes, segment by segment.
    packed: Vec<EdgeId>,
    /// Per node, edge ids added since the last compaction.
    overflow: Vec<Vec<EdgeId>>,
    /// Total entries across all overflow vectors.
    overflow_len: usize,
}

impl CsrAdjacency {
    fn add_node(&mut self) {
        self.overflow.push(Vec::new());
    }

    fn compacted_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn push_edge(&mut self, n: NodeId, eid: EdgeId) {
        self.overflow[n as usize].push(eid);
        self.overflow_len += 1;
        if self.overflow_len > 64 && self.overflow_len * 4 > self.packed.len() {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let nodes = self.overflow.len();
        let mut packed = Vec::with_capacity(self.packed.len() + self.overflow_len);
        let mut offsets = Vec::with_capacity(nodes + 1);
        for n in 0..nodes {
            offsets.push(packed.len() as u32);
            packed.extend_from_slice(self.segment(n));
            packed.extend_from_slice(&self.overflow[n]);
            self.overflow[n] = Vec::new();
        }
        offsets.push(packed.len() as u32);
        self.packed = packed;
        self.offsets = offsets;
        self.overflow_len = 0;
    }

    /// The packed (pre-compaction) segment of node `n`.
    fn segment(&self, n: usize) -> &[EdgeId] {
        if n < self.compacted_nodes() {
            &self.packed[self.offsets[n] as usize..self.offsets[n + 1] as usize]
        } else {
            &[]
        }
    }

    /// All edge ids of `n`, in insertion order.
    fn edges_of(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        let i = n as usize;
        self.segment(i).iter().copied().chain(self.overflow[i].iter().copied())
    }
}

/// Per-query BFS workspace. The `stamp` array carries a query generation
/// counter: a node's `best_*`/`slot` entries are valid only when
/// `stamp[n] == epoch`, so successive queries reuse the buffers without
/// clearing them.
#[derive(Debug, Default)]
struct Scratch {
    epoch: u32,
    stamp: Vec<u32>,
    best_prob: Vec<Probability>,
    best_dist: Vec<u32>,
    /// Dense per-query slot of a stamped node (index into `touched`).
    slot: Vec<u32>,
    /// Nodes stamped this query, in first-touch order.
    touched: Vec<NodeId>,
    frontier: Vec<(NodeId, Probability)>,
    next: Vec<(NodeId, Probability)>,
    /// Per-slot owning-seed label for the ownership pass (`u32::MAX` =
    /// unowned so far).
    own_label: Vec<u32>,
    /// Slots whose label changed last round, with the label to push.
    own_frontier: Vec<(u32, u32)>,
    own_next: Vec<(u32, u32)>,
}

impl Scratch {
    /// Starts a new query generation over `nodes` total nodes.
    fn begin(&mut self, nodes: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        if self.stamp.len() < nodes {
            self.stamp.resize(nodes, 0);
            self.best_prob.resize(nodes, Probability::ONE);
            self.best_dist.resize(nodes, 0);
            self.slot.resize(nodes, 0);
        }
        self.touched.clear();
        self.frontier.clear();
        self.next.clear();
    }

    /// Stamps `n` for this query with its first-touch probability and hop.
    fn mark(&mut self, n: NodeId, prob: Probability, dist: u32) {
        let i = n as usize;
        self.stamp[i] = self.epoch;
        self.best_prob[i] = prob;
        self.best_dist[i] = dist;
        self.slot[i] = self.touched.len() as u32;
        self.touched.push(n);
    }

    fn is_stamped(&self, n: NodeId) -> bool {
        self.stamp[n as usize] == self.epoch
    }
}

/// A small pool of [`Scratch`] workspaces so concurrent `&self` queries
/// each get a private buffer without re-allocating per query.
#[derive(Debug, Default)]
struct ScratchPool {
    pool: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    fn acquire(&self) -> Scratch {
        self.pool.lock().pop().unwrap_or_default()
    }

    fn release(&self, scratch: Scratch) {
        let mut pool = self.pool.lock();
        if pool.len() < 16 {
            pool.push(scratch);
        }
    }
}

impl Clone for ScratchPool {
    /// A cloned index starts with a fresh (empty) pool; scratch buffers
    /// are per-instance caches, not state.
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// One entry of the mutation journal (see [`AIndex::set_journaling`]).
/// `Created`/`Revived` imply `Touched`; a consumer rebuilds the projected
/// state of every journaled node from the master index, so the ops only
/// need to distinguish the two transitions that are not derivable from the
/// end state alone (a fresh node needs a name registered, a revived node
/// needs its incarnation counter bumped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JournalOp {
    /// A node was interned for the first time.
    Created(NodeId),
    /// A lazily deleted node was resurrected by re-insertion.
    Revived(NodeId),
    /// A node's liveness or incident-edge set changed.
    Touched(NodeId),
}

/// The A' index: one node per global key, identity/matching edges with
/// probabilities.
#[derive(Debug, Clone, Default)]
pub struct AIndex {
    keys: Vec<GlobalKey>,
    alive_node: Vec<bool>,
    ids: HashMap<GlobalKey, NodeId>,
    adjacency: CsrAdjacency,
    scratch: ScratchPool,
    edges: Vec<Edge>,
    /// (min(a,b), max(a,b), kind) → edge id, for dedup.
    pair_index: HashMap<(NodeId, NodeId, RelationKind), EdgeId>,
    /// parent edge → edges inferred from it (lineage children).
    children: HashMap<EdgeId, Vec<EdgeId>>,
    policy: DeletionPolicy,
    /// Mutation journal for the sharded projection layer; empty and
    /// unmaintained unless journaling is on (plain indexes pay nothing).
    journal: Vec<JournalOp>,
    journaling: bool,
    /// While a `remove_object` runs, kills of edges incident to the dying
    /// node are not journaled: the dead endpoint alone makes them
    /// invisible to shard readers, which is what keeps a removal confined
    /// to one shard. Cascade kills between two *surviving* nodes are
    /// still journaled.
    suppress: Option<NodeId>,
}

impl AIndex {
    /// Creates an empty index with the default (Keep) deletion policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index with an explicit deletion policy.
    pub fn with_policy(policy: DeletionPolicy) -> Self {
        AIndex { policy, ..Self::default() }
    }

    /// The configured deletion policy.
    pub fn policy(&self) -> DeletionPolicy {
        self.policy
    }

    fn intern(&mut self, key: &GlobalKey) -> NodeId {
        if let Some(&id) = self.ids.get(key) {
            // Re-inserting a lazily deleted key resurrects the node.
            if !self.alive_node[id as usize] {
                self.alive_node[id as usize] = true;
                if self.journaling {
                    self.journal.push(JournalOp::Revived(id));
                }
            }
            return id;
        }
        let id = self.keys.len() as NodeId;
        self.keys.push(key.clone());
        self.alive_node.push(true);
        self.adjacency.add_node();
        self.ids.insert(key.clone(), id);
        if self.journaling {
            self.journal.push(JournalOp::Created(id));
        }
        id
    }

    // -- mutation journal --------------------------------------------------

    /// Turns the mutation journal on or off. Maintained by the sharded
    /// projection layer ([`crate::shard::ShardedIndex`]); plain indexes
    /// leave it off and pay a single branch per mutation.
    pub(crate) fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
        if !on {
            self.journal.clear();
        }
    }

    /// Drains the accumulated journal.
    pub(crate) fn take_journal(&mut self) -> Vec<JournalOp> {
        std::mem::take(&mut self.journal)
    }

    /// Total interned nodes (live and dead) — the dense id space.
    pub(crate) fn interned_len(&self) -> usize {
        self.keys.len()
    }

    /// The key of an interned node.
    pub(crate) fn key_at(&self, n: NodeId) -> &GlobalKey {
        &self.keys[n as usize]
    }

    /// Whether an interned node is live.
    pub(crate) fn node_alive(&self, n: NodeId) -> bool {
        self.alive_node[n as usize]
    }

    /// Live incident edges of `n` whose other endpoint is also live, as
    /// `(other, kind, probability, origin)`, in adjacency order.
    pub(crate) fn live_incident_of(
        &self,
        n: NodeId,
    ) -> impl Iterator<Item = (NodeId, RelationKind, Probability, EdgeOrigin)> + '_ {
        self.incident(n).map(move |(_, e)| (e.other(n), e.kind, e.prob, e.origin))
    }

    fn node(&self, key: &GlobalKey) -> Option<NodeId> {
        let id = *self.ids.get(key)?;
        self.alive_node[id as usize].then_some(id)
    }

    /// True if the key has a live node.
    pub fn contains(&self, key: &GlobalKey) -> bool {
        self.node(key).is_some()
    }

    /// Live-node count.
    pub fn node_count(&self) -> usize {
        self.alive_node.iter().filter(|a| **a).count()
    }

    /// Live-edge count (both kinds).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.alive).count()
    }

    /// Detailed size statistics.
    pub fn stats(&self) -> IndexStats {
        let mut s = IndexStats { nodes: self.node_count(), ..Default::default() };
        for e in self.edges.iter().filter(|e| e.alive) {
            match e.kind {
                RelationKind::Identity => s.identity_edges += 1,
                RelationKind::Matching => s.matching_edges += 1,
            }
            match e.origin {
                EdgeOrigin::Inferred(..) => s.inferred_edges += 1,
                EdgeOrigin::Promoted => s.promoted_edges += 1,
                EdgeOrigin::Direct => {}
            }
        }
        s
    }

    /// Iterates over the live keys.
    pub fn keys(&self) -> impl Iterator<Item = &GlobalKey> {
        self.keys.iter().enumerate().filter(|(i, _)| self.alive_node[*i]).map(|(_, k)| k)
    }

    // -- edge plumbing -----------------------------------------------------

    fn pair(a: NodeId, b: NodeId, kind: RelationKind) -> (NodeId, NodeId, RelationKind) {
        if a <= b {
            (a, b, kind)
        } else {
            (b, a, kind)
        }
    }

    /// Adds (or strengthens) an edge; returns its id, or `None` for a
    /// reflexive pair. Existing edges keep the *higher* probability (a
    /// second evidence source never weakens a relation).
    fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: RelationKind,
        prob: Probability,
        origin: EdgeOrigin,
    ) -> Option<EdgeId> {
        if a == b {
            return None; // reflexivity is implicit
        }
        let key = Self::pair(a, b, kind);
        if let Some(&eid) = self.pair_index.get(&key) {
            let e = &mut self.edges[eid as usize];
            if e.alive {
                if prob > e.prob {
                    e.prob = prob;
                    self.journal_edge(a, b);
                }
                return Some(eid);
            }
            // Revive a deleted slot in place.
            e.prob = prob;
            e.origin = origin;
            e.alive = true;
            self.register_lineage(eid, origin);
            self.journal_edge(a, b);
            return Some(eid);
        }
        let eid = self.edges.len() as EdgeId;
        self.edges.push(Edge { a: key.0, b: key.1, kind, prob, origin, alive: true });
        self.adjacency.push_edge(key.0, eid);
        self.adjacency.push_edge(key.1, eid);
        self.pair_index.insert(key, eid);
        self.register_lineage(eid, origin);
        self.journal_edge(a, b);
        Some(eid)
    }

    /// Journals both endpoints of a changed edge, honouring the
    /// `remove_object` suppression (an edge incident to a dying node needs
    /// no journal entry — the dead endpoint hides it from readers).
    fn journal_edge(&mut self, a: NodeId, b: NodeId) {
        if !self.journaling {
            return;
        }
        if self.suppress == Some(a) || self.suppress == Some(b) {
            return;
        }
        self.journal.push(JournalOp::Touched(a));
        self.journal.push(JournalOp::Touched(b));
    }

    fn register_lineage(&mut self, eid: EdgeId, origin: EdgeOrigin) {
        if let EdgeOrigin::Inferred(p1, p2) = origin {
            self.children.entry(p1).or_default().push(eid);
            self.children.entry(p2).or_default().push(eid);
        }
    }

    fn edge_between(&self, a: NodeId, b: NodeId, kind: RelationKind) -> Option<EdgeId> {
        let eid = *self.pair_index.get(&Self::pair(a, b, kind))?;
        self.edges[eid as usize].alive.then_some(eid)
    }

    /// Live incident edges of a node.
    fn incident(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.adjacency.edges_of(n).filter_map(move |eid| {
            let e = &self.edges[eid as usize];
            (e.alive && self.alive_node[e.other(n) as usize]).then_some((eid, e))
        })
    }

    /// The live identity neighbours of `n` (the rest of its identity
    /// clique, by the closure invariant) with edge ids and probabilities.
    ///
    /// Sorted by the neighbour's key, **not** adjacency order:
    /// materialization composes floating-point products while iterating
    /// these lists and feeds stored values back into later offers, so
    /// the bits it produces depend on iteration order. Canonical order
    /// makes every insert a pure function of the live edge-value map —
    /// which is what lets durable recovery (rebuild the graph from a
    /// checkpoint, whose adjacency order differs from the original
    /// insertion order, then replay the WAL tail) answer bit-identically
    /// to the never-crashed instance.
    fn identity_clique(&self, n: NodeId) -> Vec<(NodeId, EdgeId, Probability)> {
        let mut out: Vec<_> = self
            .incident(n)
            .filter(|(_, e)| e.kind == RelationKind::Identity)
            .map(|(eid, e)| (e.other(n), eid, e.prob))
            .collect();
        out.sort_unstable_by(|x, y| self.keys[x.0 as usize].cmp(&self.keys[y.0 as usize]));
        out
    }

    /// The live matchings of `n`, in the same canonical neighbour-key
    /// order as [`identity_clique`](Self::identity_clique).
    fn matching_edges_of(&self, n: NodeId) -> Vec<(NodeId, EdgeId, Probability)> {
        let mut out: Vec<_> = self
            .incident(n)
            .filter(|(_, e)| e.kind == RelationKind::Matching)
            .map(|(eid, e)| (e.other(n), eid, e.prob))
            .collect();
        out.sort_unstable_by(|x, y| self.keys[x.0 as usize].cmp(&self.keys[y.0 as usize]));
        out
    }

    // -- public mutation ----------------------------------------------------

    /// Inserts an identity p-relation `a ~_p b`, materializing transitive
    /// identities (Example 7) and the matchings required by the Consistency
    /// Condition.
    pub fn insert_identity(&mut self, a: &GlobalKey, b: &GlobalKey, p: Probability) {
        let na = self.intern(a);
        let nb = self.intern(b);
        if na == nb {
            return;
        }
        // Snapshot the two cliques *before* linking them.
        let clique_a = self.identity_clique(na);
        let clique_b = self.identity_clique(nb);

        let Some(direct) = self.add_edge(na, nb, RelationKind::Identity, p, EdgeOrigin::Direct)
        else {
            return;
        };

        // Cross-materialize identities: x∈A×{b}, {a}×y∈B, and x∈A×y∈B.
        // Each inferred edge records the two edges it composes, so cascade
        // deletion can walk the lineage.
        let mut new_identity_edges: Vec<(NodeId, NodeId, EdgeId)> = vec![(na, nb, direct)];
        for &(x, e_xa, p_xa) in &clique_a {
            if let Some(eid) = self.add_edge(
                x,
                nb,
                RelationKind::Identity,
                p_xa.and(p),
                EdgeOrigin::Inferred(e_xa, direct),
            ) {
                new_identity_edges.push((x, nb, eid));
            }
        }
        for &(y, e_by, p_by) in &clique_b {
            if let Some(eid) = self.add_edge(
                na,
                y,
                RelationKind::Identity,
                p.and(p_by),
                EdgeOrigin::Inferred(direct, e_by),
            ) {
                new_identity_edges.push((na, y, eid));
            }
        }
        for &(x, e_xa, p_xa) in &clique_a {
            for &(y, e_by, p_by) in &clique_b {
                if x == y {
                    continue;
                }
                if let Some(eid) = self.add_edge(
                    x,
                    y,
                    RelationKind::Identity,
                    p_xa.and(p).and(p_by),
                    EdgeOrigin::Inferred(e_xa, e_by),
                ) {
                    new_identity_edges.push((x, y, eid));
                }
            }
        }

        // Consistency Condition: each new identity edge (x ~ y) propagates
        // every matching of x to y and vice versa.
        for (x, y, id_edge) in new_identity_edges {
            let p_xy = self.edges[id_edge as usize].prob;
            for (m, e_mx, q) in self.matching_edges_of(x) {
                if m != y {
                    self.add_edge(
                        m,
                        y,
                        RelationKind::Matching,
                        q.and(p_xy),
                        EdgeOrigin::Inferred(e_mx, id_edge),
                    );
                }
            }
            for (m, e_my, q) in self.matching_edges_of(y) {
                if m != x {
                    self.add_edge(
                        m,
                        x,
                        RelationKind::Matching,
                        q.and(p_xy),
                        EdgeOrigin::Inferred(e_my, id_edge),
                    );
                }
            }
        }
    }

    /// Inserts a matching p-relation `a ≡_p b` and propagates it across the
    /// identity cliques of both endpoints (Consistency Condition).
    pub fn insert_matching(&mut self, a: &GlobalKey, b: &GlobalKey, p: Probability) {
        self.insert_matching_with_origin(a, b, p, EdgeOrigin::Direct);
    }

    fn insert_matching_with_origin(
        &mut self,
        a: &GlobalKey,
        b: &GlobalKey,
        p: Probability,
        origin: EdgeOrigin,
    ) {
        let na = self.intern(a);
        let nb = self.intern(b);
        if na == nb {
            return;
        }
        let Some(direct) = self.add_edge(na, nb, RelationKind::Matching, p, origin) else {
            return;
        };
        // The Consistency Condition must connect every member of a's
        // identity clique to every member of b's: a ≡ b ∧ b ~ y ⇒ a ≡ y,
        // and then x ~ a ∧ a ≡ y ⇒ x ≡ y. Lineage chains through `direct`
        // (and the a≡y intermediates) so Cascade deletion of the direct
        // matching tears all of them down.
        let clique_a = self.identity_clique(na);
        let clique_b = self.identity_clique(nb);
        // a ≡ y for y in clique(b), remembering the created edge ids.
        let mut a_to: Vec<(NodeId, EdgeId, Probability)> = vec![(nb, direct, p)];
        for &(y, e_by, p_by) in &clique_b {
            if y == na {
                continue;
            }
            let prob = p.and(p_by);
            if let Some(eid) = self.add_edge(
                na,
                y,
                RelationKind::Matching,
                prob,
                EdgeOrigin::Inferred(direct, e_by),
            ) {
                a_to.push((y, eid, prob));
            }
        }
        // x ≡ y for x in clique(a) and every y the previous step covered.
        for &(x, e_xa, p_xa) in &clique_a {
            for &(y, e_ay, p_ay) in &a_to {
                if x != y {
                    self.add_edge(
                        x,
                        y,
                        RelationKind::Matching,
                        p_xa.and(p_ay),
                        EdgeOrigin::Inferred(e_xa, e_ay),
                    );
                }
            }
        }
    }

    /// Adds a promoted matching edge (from path promotion). Does nothing if
    /// an equivalent live edge already exists (per §III-D(a): "if not yet
    /// present").
    ///
    /// Returns whether a new edge was added.
    pub fn insert_promoted(&mut self, a: &GlobalKey, b: &GlobalKey, p: Probability) -> bool {
        let na = self.intern(a);
        let nb = self.intern(b);
        if na == nb || self.edge_between(na, nb, RelationKind::Matching).is_some() {
            return false;
        }
        // A promoted edge is a matching p-relation like any other, so it
        // propagates across identity cliques (Consistency Condition).
        self.insert_matching_with_origin(a, b, p, EdgeOrigin::Promoted);
        true
    }

    /// Creates a node for `key` without any relation (or revives it) —
    /// used by deserialization for isolated nodes.
    pub fn ensure_node(&mut self, key: &GlobalKey) {
        self.intern(key);
    }

    /// Inserts an edge *without* running transitivity materialization or
    /// the Consistency Condition. Only sound when the surrounding graph is
    /// already closed (deserialization of a previously consistent index);
    /// for everything else use [`insert_identity`](AIndex::insert_identity)
    /// / [`insert_matching`](AIndex::insert_matching).
    pub fn insert_raw(
        &mut self,
        a: &GlobalKey,
        b: &GlobalKey,
        kind: RelationKind,
        prob: Probability,
        origin: EdgeOrigin,
    ) {
        let na = self.intern(a);
        let nb = self.intern(b);
        self.add_edge(na, nb, kind, prob, origin);
    }

    /// Every live edge as `(a, b, kind, probability, origin)` — the
    /// serialization surface.
    pub fn live_edges(
        &self,
    ) -> Vec<(&GlobalKey, &GlobalKey, RelationKind, Probability, EdgeOrigin)> {
        self.edges
            .iter()
            .filter(|e| e.alive && self.alive_node[e.a as usize] && self.alive_node[e.b as usize])
            .map(|e| (&self.keys[e.a as usize], &self.keys[e.b as usize], e.kind, e.prob, e.origin))
            .collect()
    }

    /// Removes an object and all its incident edges — the lazy-deletion
    /// path, invoked when augmentation discovers the object no longer
    /// exists in the polystore (§III-C(b)).
    pub fn remove_object(&mut self, key: &GlobalKey) {
        let Some(n) = self.node(key) else { return };
        self.alive_node[n as usize] = false;
        if self.journaling {
            self.journal.push(JournalOp::Touched(n));
        }
        // Kills of the incident edges are not journaled (`suppress`): the
        // node's own Touched entry makes it dead in its home shard, which
        // hides every incident edge from readers — so a removal rewrites
        // exactly one shard. Cascade kills between surviving nodes are
        // still journaled by `kill_edge`.
        self.suppress = Some(n);
        let incident: Vec<EdgeId> = self.adjacency.edges_of(n).collect();
        for eid in incident {
            if self.edges[eid as usize].alive {
                self.kill_edge(eid);
            }
        }
        self.suppress = None;
    }

    /// Deletes a p-relation. Under [`DeletionPolicy::Cascade`] every edge
    /// inferred (transitively) through it dies too; under
    /// [`DeletionPolicy::Keep`] inferred edges survive, as the paper
    /// prescribes.
    ///
    /// Returns whether a live edge was found and deleted.
    pub fn delete_prelation(&mut self, a: &GlobalKey, b: &GlobalKey, kind: RelationKind) -> bool {
        let (Some(na), Some(nb)) = (self.node(a), self.node(b)) else { return false };
        let Some(eid) = self.edge_between(na, nb, kind) else { return false };
        self.kill_edge(eid);
        true
    }

    fn kill_edge(&mut self, eid: EdgeId) {
        let mut stack = vec![eid];
        while let Some(eid) = stack.pop() {
            let e = &mut self.edges[eid as usize];
            if !e.alive {
                continue;
            }
            e.alive = false;
            let (a, b) = (e.a, e.b);
            self.journal_edge(a, b);
            if self.policy == DeletionPolicy::Cascade {
                if let Some(kids) = self.children.get(&eid) {
                    stack.extend(kids.iter().copied());
                }
            }
        }
    }

    // -- queries -------------------------------------------------------------

    /// The direct p-relations of `key`: `(other key, kind, probability)`.
    pub fn neighbors(&self, key: &GlobalKey) -> Vec<(GlobalKey, RelationKind, Probability)> {
        let Some(n) = self.node(key) else { return Vec::new() };
        let mut out: Vec<_> = self
            .incident(n)
            .map(|(_, e)| (self.keys[e.other(n) as usize].clone(), e.kind, e.prob))
            .collect();
        out.sort_by(|x, y| y.2.cmp(&x.2).then_with(|| x.0.cmp(&y.0)));
        out
    }

    /// Details of a specific edge, if it is live.
    pub fn edge(&self, a: &GlobalKey, b: &GlobalKey, kind: RelationKind) -> Option<EdgeInfo> {
        let (na, nb) = (self.node(a)?, self.node(b)?);
        let eid = self.edge_between(na, nb, kind)?;
        let e = &self.edges[eid as usize];
        Some(EdgeInfo { probability: e.prob, origin: e.origin })
    }

    /// **The augmentation primitive** (Definitions 2 and 3): all keys
    /// reachable from the `seeds` within `level + 1` hops, excluding the
    /// seeds themselves, each with the best path-product probability and
    /// ordered by decreasing probability (ties broken by key for
    /// determinism).
    ///
    /// Level 0 returns the direct p-relations of the seeds; each further
    /// level applies the construct to the previous result again.
    pub fn augment(&self, seeds: &[GlobalKey], level: usize) -> Vec<AugmentedKey> {
        self.augment_inner(seeds, level, false).0
    }

    /// The multi-seed hot path: the canonical neighbourhood (identical to
    /// [`augment`](AIndex::augment) over the same seeds) **plus**, for
    /// each returned key, the index into `seeds` of its owning seed — the
    /// first (lowest-index) seed whose own level-`level` augmentation
    /// contains the key. Both are computed in one BFS over the index
    /// instead of one traversal per seed.
    ///
    /// The ownership partition is exactly what the historical per-seed
    /// loop produced: iterate seeds in order, augment each alone, and
    /// assign every not-yet-claimed key to the current seed.
    pub fn augment_multi(
        &self,
        seeds: &[GlobalKey],
        level: usize,
    ) -> (Vec<AugmentedKey>, Vec<u32>) {
        self.augment_inner(seeds, level, true)
    }

    fn augment_inner(
        &self,
        seeds: &[GlobalKey],
        level: usize,
        ownership: bool,
    ) -> (Vec<AugmentedKey>, Vec<u32>) {
        let mut scratch = self.scratch.acquire();
        scratch.begin(self.keys.len());
        for key in seeds {
            if let Some(n) = self.node(key) {
                if !scratch.is_stamped(n) {
                    scratch.mark(n, Probability::ONE, 0);
                    scratch.frontier.push((n, Probability::ONE));
                }
            }
        }
        let max_hops = (level + 1) as u32;
        for hop in 1..=max_hops {
            if scratch.frontier.is_empty() {
                break;
            }
            let frontier = std::mem::take(&mut scratch.frontier);
            for &(n, p) in &frontier {
                for eid in self.adjacency.edges_of(n) {
                    let e = &self.edges[eid as usize];
                    if !e.alive {
                        continue;
                    }
                    let m = e.other(n);
                    if !self.alive_node[m as usize] {
                        continue;
                    }
                    let cand = p.and(e.prob);
                    if !scratch.is_stamped(m) {
                        scratch.mark(m, cand, hop);
                        scratch.next.push((m, cand));
                    } else if cand > scratch.best_prob[m as usize] {
                        scratch.best_prob[m as usize] = cand;
                        scratch.best_dist[m as usize] = hop;
                        scratch.next.push((m, cand));
                    }
                }
            }
            // Recycle the spent frontier as the next `next` buffer.
            let mut spent = frontier;
            spent.clear();
            scratch.frontier = std::mem::replace(&mut scratch.next, spent);
        }

        // Seeds carry distance 0 (first-touch stamping wins, so a seed
        // reached again over an edge keeps it) and are excluded, as the
        // definition requires.
        let mut reached: Vec<(NodeId, AugmentedKey)> = Vec::with_capacity(scratch.touched.len());
        for &n in &scratch.touched {
            let i = n as usize;
            if scratch.best_dist[i] == 0 {
                continue;
            }
            reached.push((
                n,
                AugmentedKey {
                    key: self.keys[i].clone(),
                    probability: scratch.best_prob[i],
                    distance: scratch.best_dist[i] as usize,
                },
            ));
        }
        reached.sort_by(|x, y| {
            y.1.probability.cmp(&x.1.probability).then_with(|| x.1.key.cmp(&y.1.key))
        });

        let owners = if ownership {
            self.ownership_pass(seeds, max_hops, &mut scratch, &reached)
        } else {
            Vec::new()
        };
        let out = reached.into_iter().map(|(_, k)| k).collect();
        self.scratch.release(scratch);
        (out, owners)
    }

    /// Computes first-reaching-seed ownership over the BFS-reached
    /// subgraph by layered min-label propagation. The owner of a node is
    /// the lowest seed index within `max_hops`, and minimum distributes
    /// over path unions, so a single `u32` label per slot suffices:
    /// after `h` strictly layered rounds a slot's label is the lowest
    /// seed index within `h` hops. Only slots whose label changed last
    /// round push this round, and a value pushed in round `h` was valid
    /// at distance `h - 1`, so labels never travel faster than one hop
    /// per round. Restricting propagation to reached nodes is lossless:
    /// every intermediate node of a within-budget path is itself within
    /// budget.
    fn ownership_pass(
        &self,
        seeds: &[GlobalKey],
        max_hops: u32,
        scratch: &mut Scratch,
        reached: &[(NodeId, AugmentedKey)],
    ) -> Vec<u32> {
        const UNOWNED: u32 = u32::MAX;
        let slots = scratch.touched.len();
        scratch.own_label.clear();
        scratch.own_label.resize(slots, UNOWNED);
        scratch.own_frontier.clear();
        scratch.own_next.clear();
        for (j, key) in seeds.iter().enumerate() {
            if let Some(n) = self.node(key) {
                let s = scratch.slot[n as usize];
                let label = &mut scratch.own_label[s as usize];
                if (j as u32) < *label {
                    if *label == UNOWNED {
                        scratch.own_frontier.push((s, 0));
                    }
                    *label = j as u32;
                }
            }
        }
        for entry in &mut scratch.own_frontier {
            entry.1 = scratch.own_label[entry.0 as usize];
        }
        for _ in 1..=max_hops {
            if scratch.own_frontier.is_empty() {
                break;
            }
            let frontier = std::mem::take(&mut scratch.own_frontier);
            for &(s, v) in &frontier {
                let n = scratch.touched[s as usize];
                for eid in self.adjacency.edges_of(n) {
                    let e = &self.edges[eid as usize];
                    if !e.alive {
                        continue;
                    }
                    let m = e.other(n);
                    if !self.alive_node[m as usize] || scratch.stamp[m as usize] != scratch.epoch {
                        continue;
                    }
                    let sm = scratch.slot[m as usize];
                    if v < scratch.own_label[sm as usize] {
                        scratch.own_label[sm as usize] = v;
                        scratch.own_next.push((sm, v));
                    }
                }
            }
            let mut spent = frontier;
            spent.clear();
            scratch.own_frontier = std::mem::replace(&mut scratch.own_next, spent);
        }
        reached
            .iter()
            .map(|&(n, _)| {
                let owner = scratch.own_label[scratch.slot[n as usize] as usize];
                assert_ne!(owner, UNOWNED, "reached node must be owned by some seed");
                owner
            })
            .collect()
    }

    /// Verifies the Consistency Condition over the whole graph (test and
    /// debugging aid — O(nodes × edges²) worst case).
    ///
    /// Returns the first violating triple, if any.
    pub fn check_consistency(&self) -> Option<(GlobalKey, GlobalKey, GlobalKey)> {
        for (n2, alive) in self.alive_node.iter().enumerate() {
            if !alive {
                continue;
            }
            let n2 = n2 as NodeId;
            let matchings = self.matching_edges_of(n2);
            let identities = self.identity_clique(n2);
            for &(n1, _, _) in &matchings {
                for &(n3, _, _) in &identities {
                    if n1 != n3 && self.edge_between(n1, n3, RelationKind::Matching).is_none() {
                        return Some((
                            self.keys[n1 as usize].clone(),
                            self.keys[n2 as usize].clone(),
                            self.keys[n3 as usize].clone(),
                        ));
                    }
                }
            }
            // Identity transitivity closure: the clique must be complete.
            for &(x, _, _) in &identities {
                for &(y, _, _) in &identities {
                    if x != y && self.edge_between(x, y, RelationKind::Identity).is_none() {
                        return Some((
                            self.keys[x as usize].clone(),
                            self.keys[n2 as usize].clone(),
                            self.keys[y as usize].clone(),
                        ));
                    }
                }
            }
        }
        None
    }
}

/// Details of one live edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// The edge's probability.
    pub probability: Probability,
    /// The edge's lineage origin.
    pub origin: EdgeOrigin,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    fn p(f: f64) -> Probability {
        Probability::of(f)
    }

    /// The index of Fig. 3 (abridged to the part the examples use).
    fn fig3() -> AIndex {
        let mut ix = AIndex::new();
        ix.insert_identity(&k("catalogue.albums.d1"), &k("transactions.inventory.a32"), p(0.9));
        ix.insert_matching(
            &k("transactions.inventory.a32"),
            &k("transactions.sales_details.i1"),
            p(0.7),
        );
        ix
    }

    #[test]
    fn example7_transitivity_materialization() {
        // Fig. 4: inserting d1 ~0.8 k1:cure:wish when d1 ~0.85 a32 exists
        // materializes k1:cure:wish ~0.68 a32.
        let mut ix = AIndex::new();
        ix.insert_identity(&k("catalogue.albums.d1"), &k("transactions.inventory.a32"), p(0.85));
        ix.insert_identity(&k("catalogue.albums.d1"), &k("discount.drop.k1:cure:wish"), p(0.8));
        let e = ix
            .edge(
                &k("discount.drop.k1:cure:wish"),
                &k("transactions.inventory.a32"),
                RelationKind::Identity,
            )
            .expect("inferred identity must be materialized");
        assert!((e.probability.get() - 0.68).abs() < 1e-12);
        assert!(matches!(e.origin, EdgeOrigin::Inferred(..)));
        assert!(ix.check_consistency().is_none());
    }

    #[test]
    fn consistency_condition_on_identity_insert() {
        // m ≡ a, then a ~ b ⇒ m ≡ b must be materialized.
        let mut ix = AIndex::new();
        ix.insert_matching(&k("x.c.m"), &k("x.c.a"), p(0.7));
        ix.insert_identity(&k("x.c.a"), &k("x.c.b"), p(0.9));
        let e = ix.edge(&k("x.c.m"), &k("x.c.b"), RelationKind::Matching).expect("m ≡ b");
        assert!((e.probability.get() - 0.63).abs() < 1e-12);
        assert!(ix.check_consistency().is_none());
    }

    #[test]
    fn consistency_condition_on_matching_insert() {
        // a ~ b exists, then m ≡ a ⇒ m ≡ b.
        let mut ix = AIndex::new();
        ix.insert_identity(&k("x.c.a"), &k("x.c.b"), p(0.9));
        ix.insert_matching(&k("x.c.m"), &k("x.c.a"), p(0.6));
        assert!(ix.edge(&k("x.c.m"), &k("x.c.b"), RelationKind::Matching).is_some());
        assert!(ix.check_consistency().is_none());
    }

    #[test]
    fn merging_two_cliques_stays_consistent() {
        let mut ix = AIndex::new();
        // Clique 1: a ~ b ~ c (via transitivity).
        ix.insert_identity(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_identity(&k("d.c.b"), &k("d.c.c"), p(0.8));
        // Clique 2: x ~ y.
        ix.insert_identity(&k("d.c.x"), &k("d.c.y"), p(0.95));
        // Matchings on both sides.
        ix.insert_matching(&k("d.c.m1"), &k("d.c.a"), p(0.7));
        ix.insert_matching(&k("d.c.m2"), &k("d.c.y"), p(0.6));
        // Merge the cliques.
        ix.insert_identity(&k("d.c.c"), &k("d.c.x"), p(0.85));
        assert!(ix.check_consistency().is_none(), "{:?}", ix.check_consistency());
        // The merged clique is one 5-node component: every pair has an
        // identity edge: C(5,2) = 10 identity edges.
        assert_eq!(ix.stats().identity_edges, 10);
        // m1 must now match every clique member (5 edges), same for m2.
        assert_eq!(ix.stats().matching_edges, 10);
    }

    #[test]
    fn reflexive_inserts_are_noops() {
        let mut ix = AIndex::new();
        ix.insert_identity(&k("d.c.a"), &k("d.c.a"), p(0.9));
        ix.insert_matching(&k("d.c.a"), &k("d.c.a"), p(0.9));
        assert_eq!(ix.edge_count(), 0);
        assert_eq!(ix.node_count(), 1);
    }

    #[test]
    fn duplicate_edge_keeps_higher_probability() {
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.5));
        ix.insert_matching(&k("d.c.b"), &k("d.c.a"), p(0.8));
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.3));
        let e = ix.edge(&k("d.c.a"), &k("d.c.b"), RelationKind::Matching).unwrap();
        assert_eq!(e.probability, p(0.8));
        assert_eq!(ix.edge_count(), 1);
    }

    #[test]
    fn identity_and_matching_are_distinct_edges() {
        let mut ix = AIndex::new();
        ix.insert_identity(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.6));
        assert_eq!(ix.edge_count(), 2);
    }

    #[test]
    fn augment_level0_is_direct_neighbourhood() {
        let ix = fig3();
        let out = ix.augment(&[k("catalogue.albums.d1")], 0);
        // Direct: a32 (identity 0.9) and — via consistency propagation —
        // the matching to i1 (0.7·0.9 = 0.63).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key, k("transactions.inventory.a32"));
        assert_eq!(out[0].probability, p(0.9));
        assert_eq!(out[0].distance, 1);
    }

    #[test]
    fn augment_is_sorted_by_probability() {
        let ix = fig3();
        let out = ix.augment(&[k("catalogue.albums.d1")], 1);
        assert!(out.windows(2).all(|w| w[0].probability >= w[1].probability));
    }

    #[test]
    fn augment_level_bounds_hops() {
        let mut ix = AIndex::new();
        // Chain of matchings: a ≡ b ≡ c ≡ d (matching is not transitive, so
        // no materialization happens).
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_matching(&k("d.c.b"), &k("d.c.c"), p(0.8));
        ix.insert_matching(&k("d.c.c"), &k("d.c.d"), p(0.7));
        let l0 = ix.augment(&[k("d.c.a")], 0);
        assert_eq!(l0.len(), 1);
        let l1 = ix.augment(&[k("d.c.a")], 1);
        assert_eq!(l1.len(), 2);
        let l2 = ix.augment(&[k("d.c.a")], 2);
        assert_eq!(l2.len(), 3);
        // Path products: b=0.9, c=0.72, d=0.504.
        assert!((l2[2].probability.get() - 0.504).abs() < 1e-12);
        assert_eq!(l2[2].distance, 3);
    }

    #[test]
    fn augment_takes_best_path() {
        let mut ix = AIndex::new();
        // Two paths a→c: direct 0.5 and via b 0.9·0.9 = 0.81.
        ix.insert_matching(&k("d.c.a"), &k("d.c.c"), p(0.5));
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_matching(&k("d.c.b"), &k("d.c.c"), p(0.9));
        let out = ix.augment(&[k("d.c.a")], 1);
        let c = out.iter().find(|x| x.key == k("d.c.c")).unwrap();
        assert!((c.probability.get() - 0.81).abs() < 1e-12);
        assert_eq!(c.distance, 2);
    }

    #[test]
    fn augment_multiple_seeds_excludes_seeds() {
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_matching(&k("d.c.b"), &k("d.c.c"), p(0.8));
        let out = ix.augment(&[k("d.c.a"), k("d.c.c")], 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, k("d.c.b"));
        assert_eq!(out[0].probability, p(0.9));
    }

    #[test]
    fn augment_unknown_seed_is_empty() {
        let ix = fig3();
        assert!(ix.augment(&[k("no.such.key")], 3).is_empty());
    }

    #[test]
    fn augment_multi_matches_augment() {
        let ix = fig3();
        let seeds = [k("catalogue.albums.d1"), k("transactions.sales_details.i1")];
        let (multi, owners) = ix.augment_multi(&seeds, 1);
        assert_eq!(multi, ix.augment(&seeds, 1));
        assert_eq!(owners.len(), multi.len());
    }

    #[test]
    fn augment_multi_first_seed_owns_shared_keys() {
        // a — b — c: both end seeds reach b, the earlier one owns it.
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_matching(&k("d.c.b"), &k("d.c.c"), p(0.8));
        let (out, owners) = ix.augment_multi(&[k("d.c.a"), k("d.c.c")], 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, k("d.c.b"));
        assert_eq!(owners, vec![0]);
        let (out_rev, owners_rev) = ix.augment_multi(&[k("d.c.c"), k("d.c.a")], 0);
        assert_eq!(out_rev, out);
        assert_eq!(owners_rev, vec![0], "reversed order: c now claims b first");
    }

    #[test]
    fn augment_multi_ownership_is_reach_not_distance() {
        // Seed 1 sits one hop from x, seed 0 two hops; with a budget
        // covering both, ownership goes to the *earlier* seed, not the
        // closer one (matching the historical per-seed loop).
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.s0"), &k("d.c.mid"), p(0.9));
        ix.insert_matching(&k("d.c.mid"), &k("d.c.x"), p(0.9));
        ix.insert_matching(&k("d.c.s1"), &k("d.c.x"), p(0.9));
        let (out, owners) = ix.augment_multi(&[k("d.c.s0"), k("d.c.s1")], 1);
        let xi = out.iter().position(|a| a.key == k("d.c.x")).unwrap();
        assert_eq!(owners[xi], 0);
        // With a one-hop budget only seed 1 reaches x.
        let (out0, owners0) = ix.augment_multi(&[k("d.c.s0"), k("d.c.s1")], 0);
        let xi0 = out0.iter().position(|a| a.key == k("d.c.x")).unwrap();
        assert_eq!(owners0[xi0], 1);
    }

    #[test]
    fn augment_multi_skips_unknown_seeds_in_ownership() {
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.9));
        let (out, owners) = ix.augment_multi(&[k("no.such.key"), k("d.c.a")], 0);
        assert_eq!(out.len(), 1);
        assert_eq!(owners, vec![1], "owner indices refer to the original seed slice");
    }

    #[test]
    fn augment_multi_scales_past_64_seeds() {
        // More seeds than one bitmask word exercises the chunked path.
        let mut ix = AIndex::new();
        for i in 0..70 {
            ix.insert_matching(&k(&format!("d.c.s{i}")), &k("d.c.hub"), p(0.9));
        }
        let seeds: Vec<GlobalKey> = (0..70).map(|i| k(&format!("d.c.s{i}"))).collect();
        let (out, owners) = ix.augment_multi(&seeds, 0);
        let hub = out.iter().position(|a| a.key == k("d.c.hub")).unwrap();
        assert_eq!(owners[hub], 0);
        // The 69th seed alone owns the hub when listed first.
        let mut rev = seeds.clone();
        rev.rotate_left(69);
        let (out_rev, owners_rev) = ix.augment_multi(&rev, 0);
        let hub_rev = out_rev.iter().position(|a| a.key == k("d.c.hub")).unwrap();
        assert_eq!(owners_rev[hub_rev], 0, "rotation makes s69 the first seed");
        assert_eq!(out_rev.len(), out.len());
    }

    #[test]
    fn repeated_queries_reuse_scratch_correctly() {
        // Exercises epoch stamping across many queries on one index.
        let ix = fig3();
        let baseline = ix.augment(&[k("catalogue.albums.d1")], 1);
        for _ in 0..100 {
            assert_eq!(ix.augment(&[k("catalogue.albums.d1")], 1), baseline);
        }
    }

    #[test]
    fn lazy_deletion_removes_node_and_edges() {
        let mut ix = fig3();
        assert!(ix.contains(&k("transactions.inventory.a32")));
        ix.remove_object(&k("transactions.inventory.a32"));
        assert!(!ix.contains(&k("transactions.inventory.a32")));
        let out = ix.augment(&[k("catalogue.albums.d1")], 0);
        // a32 is gone; only the propagated matching to i1 remains.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, k("transactions.sales_details.i1"));
    }

    #[test]
    fn keep_policy_preserves_inferred_edges() {
        let mut ix = AIndex::new();
        ix.insert_identity(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_identity(&k("d.c.b"), &k("d.c.c"), p(0.8));
        // a~c was inferred. Deleting a~b keeps it (paper's strategy).
        assert!(ix.delete_prelation(&k("d.c.a"), &k("d.c.b"), RelationKind::Identity));
        assert!(ix.edge(&k("d.c.a"), &k("d.c.c"), RelationKind::Identity).is_some());
    }

    #[test]
    fn cascade_policy_deletes_lineage() {
        let mut ix = AIndex::with_policy(DeletionPolicy::Cascade);
        ix.insert_identity(&k("d.c.a"), &k("d.c.b"), p(0.9));
        ix.insert_identity(&k("d.c.b"), &k("d.c.c"), p(0.8));
        ix.insert_matching(&k("d.c.m"), &k("d.c.a"), p(0.7));
        // m≡a propagates to b and c. Deleting a~b must kill a~c (inferred
        // through it) and m≡b / m≡c (whose lineage passes through a~b or
        // a~c).
        assert!(ix.delete_prelation(&k("d.c.a"), &k("d.c.b"), RelationKind::Identity));
        assert!(ix.edge(&k("d.c.a"), &k("d.c.c"), RelationKind::Identity).is_none());
        assert!(ix.edge(&k("d.c.m"), &k("d.c.b"), RelationKind::Matching).is_none());
        assert!(ix.edge(&k("d.c.m"), &k("d.c.c"), RelationKind::Matching).is_none());
        // The direct edges survive.
        assert!(ix.edge(&k("d.c.m"), &k("d.c.a"), RelationKind::Matching).is_some());
        assert!(ix.edge(&k("d.c.b"), &k("d.c.c"), RelationKind::Identity).is_some());
    }

    #[test]
    fn delete_missing_edge_returns_false() {
        let mut ix = fig3();
        assert!(!ix.delete_prelation(&k("d.c.x"), &k("d.c.y"), RelationKind::Identity));
        assert!(!ix.delete_prelation(
            &k("catalogue.albums.d1"),
            &k("transactions.sales_details.i1"),
            RelationKind::Identity,
        ));
    }

    #[test]
    fn reinsert_after_removal_resurrects() {
        let mut ix = fig3();
        ix.remove_object(&k("transactions.inventory.a32"));
        ix.insert_identity(&k("transactions.inventory.a32"), &k("catalogue.albums.d1"), p(0.5));
        assert!(ix.contains(&k("transactions.inventory.a32")));
        let e = ix
            .edge(
                &k("transactions.inventory.a32"),
                &k("catalogue.albums.d1"),
                RelationKind::Identity,
            )
            .unwrap();
        assert_eq!(e.probability, p(0.5));
    }

    #[test]
    fn promoted_edges_do_not_override() {
        let mut ix = AIndex::new();
        ix.insert_matching(&k("d.c.a"), &k("d.c.b"), p(0.6));
        assert!(!ix.insert_promoted(&k("d.c.a"), &k("d.c.b"), p(0.9)), "already present");
        assert!(ix.insert_promoted(&k("d.c.a"), &k("d.c.z"), p(0.7)));
        let e = ix.edge(&k("d.c.a"), &k("d.c.z"), RelationKind::Matching).unwrap();
        assert_eq!(e.origin, EdgeOrigin::Promoted);
        assert_eq!(ix.stats().promoted_edges, 1);
    }

    #[test]
    fn neighbors_sorted_desc() {
        let ix = fig3();
        let n = ix.neighbors(&k("transactions.inventory.a32"));
        assert_eq!(n.len(), 2);
        assert!(n[0].2 >= n[1].2);
        assert!(ix.neighbors(&k("no.such.key")).is_empty());
    }

    #[test]
    fn stats_counts() {
        let ix = fig3();
        let s = ix.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.identity_edges, 1);
        // Direct matching + the consistency-propagated one.
        assert_eq!(s.matching_edges, 2);
        assert_eq!(s.inferred_edges, 1);
    }
}
