//! Sharded A' index: per-shard immutable snapshots with delta overlays.
//!
//! The monolithic [`AIndex`] answers queries well but mutates badly at
//! scale: publishing any change to concurrent readers means cloning and
//! swapping the whole index. [`ShardedIndex`] keeps the master `AIndex`
//! as the single writer-side source of truth and *projects* it into
//! [`SHARD_COUNT`] read-only shard snapshots, each holding the nodes
//! whose global key hashes into it plus their half-edges. Mutations run
//! against the master under the writer lock; a journal of touched nodes
//! is then drained into small per-shard **delta overlays**, so a lazy
//! deletion republishes exactly one shard while every other shard's
//! snapshot (and any in-flight [`IndexView`]) is untouched. An amortized
//! compactor folds an overlay back into a fresh packed base once it
//! grows past a fraction of the base.
//!
//! ## Visibility rules
//!
//! A shard stores *half-edges*: node `a`'s entry lists `(b, inc_b, kind,
//! prob, origin)` for every edge `a—b` that was live when the entry was
//! built. A half-edge is traversable iff `b` is currently alive **and**
//! `b`'s current incarnation equals the recorded `inc_b`. Incarnations
//! bump only when a lazily-deleted node is resurrected, which closes the
//! ghost-edge hole: killing `b` hides all of `b`'s edges without touching
//! the neighbouring shards (their stale half-edges fail the liveness
//! check), and resurrecting `b` later does not revive them (the stale
//! half-edges now fail the incarnation check). Any *edge* change —
//! insert, strengthen, revive, kill between two survivors — rebuilds
//! both endpoints' entries, so a live edge is always recorded on both
//! sides with current incarnations. Consequently the projection answers
//! every query bit-identically to the master index.
//!
//! ## Determinism
//!
//! The BFS relaxation and the ownership min-label pass are both
//! order-independent (best probability wins with strict improvement;
//! `min` distributes over path unions), and the final sort canonicalizes
//! by `(probability desc, key asc)` — so traversing half-edges in shard
//! order instead of master CSR order yields identical answers, which the
//! differential harness (`quepa-check`) pins across the full scenario
//! smoke.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use quepa_pdm::{GlobalKey, Probability, RelationKind};

use crate::index::{AIndex, AugmentedKey, EdgeInfo, EdgeOrigin, IndexStats, JournalOp};

/// Number of shards the key space is hashed over.
pub const SHARD_COUNT: usize = 16;
const SHARD_BITS: u32 = 4;
const SHARD_MASK: u32 = (SHARD_COUNT as u32) - 1;

/// Packed node reference: local slot in the high bits, shard in the low
/// [`SHARD_BITS`] bits. Slots are dense per shard and never reused, so
/// the reference space stays compact enough for epoch-stamped scratch.
type NodeRef = u32;

#[inline]
fn shard_of(r: NodeRef) -> usize {
    (r & SHARD_MASK) as usize
}

#[inline]
fn slot_of(r: NodeRef) -> u32 {
    r >> SHARD_BITS
}

#[inline]
fn make_ref(shard: usize, slot: u32) -> NodeRef {
    (slot << SHARD_BITS) | shard as u32
}

/// Shard a key routes to, derived from its precomputed FNV-1a hash.
#[inline]
pub fn route(key: &GlobalKey) -> usize {
    let h = key.precomputed_hash();
    ((h ^ (h >> 32)) & SHARD_MASK as u64) as usize
}

/// One directed half of an edge, stored in its owning endpoint's shard.
#[derive(Debug, Clone, Copy)]
struct HalfEdge {
    other: NodeRef,
    /// The other endpoint's incarnation when this entry was built.
    other_inc: u32,
    kind: RelationKind,
    prob: Probability,
    origin: EdgeOrigin,
}

/// The packed, immutable part of a shard: produced by compaction, shared
/// (via `Arc`) across successive overlay publications.
#[derive(Debug, Default)]
struct ShardBase {
    /// key → slot, for every node named in this shard at compaction time.
    names: HashMap<GlobalKey, u32>,
    /// slot → key.
    keys: Vec<GlobalKey>,
    alive: Vec<bool>,
    incs: Vec<u32>,
    /// CSR offsets over `edges`; `len == keys.len() + 1`.
    offsets: Vec<u32>,
    edges: Vec<HalfEdge>,
    live_nodes: usize,
}

impl ShardBase {
    fn edges_of(&self, slot: u32) -> &[HalfEdge] {
        let i = slot as usize;
        if i + 1 < self.offsets.len() {
            &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
        } else {
            &[]
        }
    }

    fn resident_bytes(&self) -> usize {
        let key_bytes: usize = self.keys.iter().map(key_heap_bytes).sum();
        // Names hold a second copy of every key plus map overhead.
        key_bytes * 2
            + self.names.len() * (std::mem::size_of::<GlobalKey>() + 16)
            + self.keys.len()
                * (std::mem::size_of::<GlobalKey>() + 1 + 4 + std::mem::size_of::<u32>())
            + self.edges.len() * std::mem::size_of::<HalfEdge>()
            + self.offsets.len() * 4
    }
}

fn key_heap_bytes(k: &GlobalKey) -> usize {
    k.database().as_str().len() + k.collection().as_str().len() + k.key().as_str().len()
}

/// Projected state of one node, overriding the base until compaction.
#[derive(Debug, Clone)]
struct OverlayNode {
    key: GlobalKey,
    alive: bool,
    inc: u32,
    edges: Vec<HalfEdge>,
}

/// The mutable delta layered over a [`ShardBase`]. Cloned on publication
/// (it stays small by construction — compaction folds it away).
#[derive(Debug, Clone, Default)]
struct Overlay {
    /// slot → projected node state.
    nodes: HashMap<u32, OverlayNode>,
    /// Names registered since the base was built.
    names: HashMap<GlobalKey, u32>,
}

/// One shard's published snapshot: an immutable packed base plus a small
/// overlay readers merge on the fly.
#[derive(Debug)]
struct ShardSnap {
    base: Arc<ShardBase>,
    overlay: Overlay,
    /// Total slots in this shard (base slots + nodes created since).
    slots: u32,
    resident_bytes: usize,
}

impl ShardSnap {
    fn name(&self, key: &GlobalKey) -> Option<u32> {
        self.overlay.names.get(key).or_else(|| self.base.names.get(key)).copied()
    }

    fn alive(&self, slot: u32) -> bool {
        if let Some(o) = self.overlay.nodes.get(&slot) {
            return o.alive;
        }
        self.base.alive.get(slot as usize).copied().unwrap_or(false)
    }

    fn inc(&self, slot: u32) -> u32 {
        if let Some(o) = self.overlay.nodes.get(&slot) {
            return o.inc;
        }
        self.base.incs.get(slot as usize).copied().unwrap_or(0)
    }

    fn key(&self, slot: u32) -> &GlobalKey {
        if let Some(o) = self.overlay.nodes.get(&slot) {
            return &o.key;
        }
        &self.base.keys[slot as usize]
    }

    fn edges(&self, slot: u32) -> &[HalfEdge] {
        if let Some(o) = self.overlay.nodes.get(&slot) {
            return &o.edges;
        }
        self.base.edges_of(slot)
    }

    fn live_count(&self) -> usize {
        let mut live = self.base.live_nodes as isize;
        for (&slot, node) in &self.overlay.nodes {
            let was = self.base.alive.get(slot as usize).copied().unwrap_or(false);
            live += node.alive as isize - was as isize;
        }
        live.max(0) as usize
    }
}

/// Published per-shard statistics (the observability surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardIndexStats {
    /// Shard number.
    pub shard: usize,
    /// Live nodes resident in the shard.
    pub entries: usize,
    /// Overlay entries layered over the packed base.
    pub overlay_depth: usize,
    /// Approximate bytes held by the published snapshot.
    pub resident_bytes: usize,
    /// Times the shard's base was recompacted.
    pub compactions: u64,
    /// Times a new snapshot of this shard was published.
    pub swaps: u64,
}

/// The atomically published projection: one snapshot per shard.
#[derive(Debug)]
struct Directory {
    shards: [Arc<ShardSnap>; SHARD_COUNT],
    max_slots: u32,
}

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

/// Per-query BFS workspace over the packed [`NodeRef`] space; the same
/// epoch-stamping discipline as the master index's scratch.
#[derive(Debug, Default)]
struct ViewScratch {
    epoch: u32,
    stamp: Vec<u32>,
    best_prob: Vec<Probability>,
    best_dist: Vec<u32>,
    slot: Vec<u32>,
    touched: Vec<NodeRef>,
    frontier: Vec<(NodeRef, Probability)>,
    next: Vec<(NodeRef, Probability)>,
    own_label: Vec<u32>,
    own_frontier: Vec<(u32, u32)>,
    own_next: Vec<(u32, u32)>,
}

impl ViewScratch {
    fn begin(&mut self, refs: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        if self.stamp.len() < refs {
            self.stamp.resize(refs, 0);
            self.best_prob.resize(refs, Probability::ONE);
            self.best_dist.resize(refs, 0);
            self.slot.resize(refs, 0);
        }
        self.touched.clear();
        self.frontier.clear();
        self.next.clear();
    }

    fn mark(&mut self, r: NodeRef, prob: Probability, dist: u32) {
        let i = r as usize;
        self.stamp[i] = self.epoch;
        self.best_prob[i] = prob;
        self.best_dist[i] = dist;
        self.slot[i] = self.touched.len() as u32;
        self.touched.push(r);
    }

    fn is_stamped(&self, r: NodeRef) -> bool {
        self.stamp[r as usize] == self.epoch
    }
}

/// Shared pool of [`ViewScratch`] buffers; sized once for the largest
/// shard and reused across queries and views, so steady-state traversal
/// at million-node scale never re-allocates or re-zeroes visit arrays.
#[derive(Debug, Default)]
struct ViewScratchPool {
    pool: Mutex<Vec<ViewScratch>>,
}

impl ViewScratchPool {
    fn acquire(&self) -> ViewScratch {
        self.pool.lock().pop().unwrap_or_default()
    }

    fn release(&self, scratch: ViewScratch) {
        let mut pool = self.pool.lock();
        if pool.len() < 16 {
            pool.push(scratch);
        }
    }
}

/// A lock-free, immutable read handle over the sharded index: the 16
/// shard snapshots current at construction time. Cheap to take (one
/// lock plus one `Arc` clone) and stable for its lifetime — concurrent
/// mutations publish new snapshots without disturbing an existing view.
#[derive(Clone)]
pub struct IndexView {
    dir: Arc<Directory>,
    scratch: Arc<ViewScratchPool>,
}

impl std::fmt::Debug for IndexView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexView").field("stats", &self.stats()).finish()
    }
}

impl IndexView {
    #[inline]
    fn snap(&self, shard: usize) -> &ShardSnap {
        &self.dir.shards[shard]
    }

    /// Resolves a key to its node reference, if live.
    fn resolve(&self, key: &GlobalKey) -> Option<NodeRef> {
        let shard = route(key);
        let snap = self.snap(shard);
        let slot = snap.name(key)?;
        snap.alive(slot).then(|| make_ref(shard, slot))
    }

    /// The target of a half-edge, if the edge is currently traversable.
    #[inline]
    fn target(&self, e: &HalfEdge) -> Option<NodeRef> {
        let snap = self.snap(shard_of(e.other));
        let slot = slot_of(e.other);
        (snap.alive(slot) && snap.inc(slot) == e.other_inc).then_some(e.other)
    }

    fn key_of(&self, r: NodeRef) -> &GlobalKey {
        self.snap(shard_of(r)).key(slot_of(r))
    }

    /// True if the key has a live node.
    pub fn contains(&self, key: &GlobalKey) -> bool {
        self.resolve(key).is_some()
    }

    /// Details of a specific edge, if it is live.
    pub fn edge(&self, a: &GlobalKey, b: &GlobalKey, kind: RelationKind) -> Option<EdgeInfo> {
        let ra = self.resolve(a)?;
        let rb = self.resolve(b)?;
        self.snap(shard_of(ra))
            .edges(slot_of(ra))
            .iter()
            .find(|e| e.kind == kind && e.other == rb && self.target(e) == Some(rb))
            .map(|e| EdgeInfo { probability: e.prob, origin: e.origin })
    }

    /// The direct p-relations of `key`: `(other key, kind, probability)`.
    pub fn neighbors(&self, key: &GlobalKey) -> Vec<(GlobalKey, RelationKind, Probability)> {
        let Some(r) = self.resolve(key) else { return Vec::new() };
        let mut out: Vec<_> = self
            .snap(shard_of(r))
            .edges(slot_of(r))
            .iter()
            .filter_map(|e| self.target(e).map(|t| (self.key_of(t).clone(), e.kind, e.prob)))
            .collect();
        out.sort_by(|x, y| y.2.cmp(&x.2).then_with(|| x.0.cmp(&y.0)));
        out
    }

    /// Size statistics, identical to the master index's
    /// [`AIndex::stats`]. Full scan with visibility checks — a
    /// diagnostic surface, not a hot path.
    pub fn stats(&self) -> IndexStats {
        let mut s = IndexStats::default();
        for (shard, snap) in self.dir.shards.iter().enumerate() {
            for slot in 0..snap.slots {
                if !snap.alive(slot) {
                    continue;
                }
                s.nodes += 1;
                let me = make_ref(shard, slot);
                for e in snap.edges(slot) {
                    // Count each live edge once, from its lower endpoint.
                    if me < e.other && self.target(e).is_some() {
                        match e.kind {
                            RelationKind::Identity => s.identity_edges += 1,
                            RelationKind::Matching => s.matching_edges += 1,
                        }
                        match e.origin {
                            EdgeOrigin::Inferred(..) => s.inferred_edges += 1,
                            EdgeOrigin::Promoted => s.promoted_edges += 1,
                            EdgeOrigin::Direct => {}
                        }
                    }
                }
            }
        }
        s
    }

    /// The augmentation primitive over the sharded projection — see
    /// [`AIndex::augment`]; answers are bit-identical.
    pub fn augment(&self, seeds: &[GlobalKey], level: usize) -> Vec<AugmentedKey> {
        self.augment_inner(seeds, level, false).0
    }

    /// Multi-seed augmentation with seed ownership — see
    /// [`AIndex::augment_multi`]; answers are bit-identical.
    pub fn augment_multi(
        &self,
        seeds: &[GlobalKey],
        level: usize,
    ) -> (Vec<AugmentedKey>, Vec<u32>) {
        self.augment_inner(seeds, level, true)
    }

    fn augment_inner(
        &self,
        seeds: &[GlobalKey],
        level: usize,
        ownership: bool,
    ) -> (Vec<AugmentedKey>, Vec<u32>) {
        let mut scratch = self.scratch.acquire();
        scratch.begin((self.dir.max_slots as usize) << SHARD_BITS);
        for key in seeds {
            if let Some(r) = self.resolve(key) {
                if !scratch.is_stamped(r) {
                    scratch.mark(r, Probability::ONE, 0);
                    scratch.frontier.push((r, Probability::ONE));
                }
            }
        }
        let max_hops = (level + 1) as u32;
        for hop in 1..=max_hops {
            if scratch.frontier.is_empty() {
                break;
            }
            let frontier = std::mem::take(&mut scratch.frontier);
            for &(r, p) in &frontier {
                let snap = self.snap(shard_of(r));
                for e in snap.edges(slot_of(r)) {
                    let Some(m) = self.target(e) else { continue };
                    let cand = p.and(e.prob);
                    if !scratch.is_stamped(m) {
                        scratch.mark(m, cand, hop);
                        scratch.next.push((m, cand));
                    } else if cand > scratch.best_prob[m as usize] {
                        scratch.best_prob[m as usize] = cand;
                        scratch.best_dist[m as usize] = hop;
                        scratch.next.push((m, cand));
                    }
                }
            }
            let mut spent = frontier;
            spent.clear();
            scratch.frontier = std::mem::replace(&mut scratch.next, spent);
        }

        let mut reached: Vec<(NodeRef, AugmentedKey)> = Vec::with_capacity(scratch.touched.len());
        for &r in &scratch.touched {
            let i = r as usize;
            if scratch.best_dist[i] == 0 {
                continue;
            }
            reached.push((
                r,
                AugmentedKey {
                    key: self.key_of(r).clone(),
                    probability: scratch.best_prob[i],
                    distance: scratch.best_dist[i] as usize,
                },
            ));
        }
        reached.sort_by(|x, y| {
            y.1.probability.cmp(&x.1.probability).then_with(|| x.1.key.cmp(&y.1.key))
        });

        let owners = if ownership {
            self.ownership_pass(seeds, max_hops, &mut scratch, &reached)
        } else {
            Vec::new()
        };
        let out = reached.into_iter().map(|(_, k)| k).collect();
        self.scratch.release(scratch);
        (out, owners)
    }

    /// Layered min-label ownership propagation — the exact algorithm of
    /// the master index's ownership pass, over shard half-edges.
    fn ownership_pass(
        &self,
        seeds: &[GlobalKey],
        max_hops: u32,
        scratch: &mut ViewScratch,
        reached: &[(NodeRef, AugmentedKey)],
    ) -> Vec<u32> {
        const UNOWNED: u32 = u32::MAX;
        let slots = scratch.touched.len();
        scratch.own_label.clear();
        scratch.own_label.resize(slots, UNOWNED);
        scratch.own_frontier.clear();
        scratch.own_next.clear();
        for (j, key) in seeds.iter().enumerate() {
            if let Some(r) = self.resolve(key) {
                let s = scratch.slot[r as usize];
                let label = &mut scratch.own_label[s as usize];
                if (j as u32) < *label {
                    if *label == UNOWNED {
                        scratch.own_frontier.push((s, 0));
                    }
                    *label = j as u32;
                }
            }
        }
        for entry in &mut scratch.own_frontier {
            entry.1 = scratch.own_label[entry.0 as usize];
        }
        for _ in 1..=max_hops {
            if scratch.own_frontier.is_empty() {
                break;
            }
            let frontier = std::mem::take(&mut scratch.own_frontier);
            for &(s, v) in &frontier {
                let r = scratch.touched[s as usize];
                let snap = self.snap(shard_of(r));
                for e in snap.edges(slot_of(r)) {
                    let Some(m) = self.target(e) else { continue };
                    if scratch.stamp[m as usize] != scratch.epoch {
                        continue;
                    }
                    let sm = scratch.slot[m as usize];
                    if v < scratch.own_label[sm as usize] {
                        scratch.own_label[sm as usize] = v;
                        scratch.own_next.push((sm, v));
                    }
                }
            }
            let mut spent = frontier;
            spent.clear();
            scratch.own_frontier = std::mem::replace(&mut scratch.own_next, spent);
        }
        reached
            .iter()
            .map(|&(r, _)| {
                let owner = scratch.own_label[scratch.slot[r as usize] as usize];
                assert_ne!(owner, UNOWNED, "reached node must be owned by some seed");
                owner
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

/// Writer-side state: the master index plus the projection bookkeeping.
#[derive(Debug)]
struct Writer {
    master: AIndex,
    /// master node id → packed shard reference.
    refs: Vec<NodeRef>,
    /// master node id → incarnation counter.
    incs: Vec<u32>,
    /// Per shard, member master ids in slot order.
    members: Vec<Vec<u32>>,
}

impl Writer {
    fn register_nodes(&mut self) {
        for n in self.refs.len()..self.master.interned_len() {
            let key = self.master.key_at(n as u32);
            let shard = route(key);
            let slot = self.members[shard].len() as u32;
            self.members[shard].push(n as u32);
            self.refs.push(make_ref(shard, slot));
            self.incs.push(0);
        }
    }

    /// Builds the projected state of one master node.
    fn project(&self, n: u32) -> OverlayNode {
        let alive = self.master.node_alive(n);
        let edges = if alive {
            self.master
                .live_incident_of(n)
                .map(|(o, kind, prob, origin)| HalfEdge {
                    other: self.refs[o as usize],
                    other_inc: self.incs[o as usize],
                    kind,
                    prob,
                    origin,
                })
                .collect()
        } else {
            Vec::new()
        };
        OverlayNode { key: self.master.key_at(n).clone(), alive, inc: self.incs[n as usize], edges }
    }

    /// Rebuilds one shard's packed base from the master (compaction).
    fn compact_shard(&self, shard: usize) -> ShardSnap {
        let members = &self.members[shard];
        let mut base = ShardBase {
            names: HashMap::with_capacity(members.len()),
            keys: Vec::with_capacity(members.len()),
            alive: Vec::with_capacity(members.len()),
            incs: Vec::with_capacity(members.len()),
            offsets: Vec::with_capacity(members.len() + 1),
            edges: Vec::new(),
            live_nodes: 0,
        };
        for (slot, &n) in members.iter().enumerate() {
            let key = self.master.key_at(n);
            base.names.insert(key.clone(), slot as u32);
            base.keys.push(key.clone());
            let alive = self.master.node_alive(n);
            base.alive.push(alive);
            base.incs.push(self.incs[n as usize]);
            base.offsets.push(base.edges.len() as u32);
            if alive {
                base.live_nodes += 1;
                base.edges.extend(self.master.live_incident_of(n).map(
                    |(o, kind, prob, origin)| HalfEdge {
                        other: self.refs[o as usize],
                        other_inc: self.incs[o as usize],
                        kind,
                        prob,
                        origin,
                    },
                ));
            }
        }
        base.offsets.push(base.edges.len() as u32);
        let resident_bytes = base.resident_bytes();
        ShardSnap {
            base: Arc::new(base),
            overlay: Overlay::default(),
            slots: members.len() as u32,
            resident_bytes,
        }
    }
}

/// Compaction trigger: fold the overlay into a fresh base once it
/// exceeds an eighth of the base (with a floor so small shards do not
/// recompact on every drain).
fn wants_compaction(overlay_len: usize, base_len: usize) -> bool {
    overlay_len > 64.max(base_len / 8)
}

/// What one [`ShardedIndex::update_reporting`] call did to the
/// projection. The durability layer uses `touched` to track which
/// shards are dirty since the last checkpoint cut and `compacted` as
/// the cut trigger (a compaction has just rebuilt exactly the state a
/// checkpoint serializes).
///
/// Caveat: `touched` reflects the master journal, and a lazy
/// `remove_object` deliberately suppresses journaling of the victim's
/// incident edges (the projection hides them via liveness checks
/// instead) — yet the *serialized* form of each neighbour's shard does
/// change. A caller tracking serialization dirtiness must add the
/// removed key's neighbour shards itself, before applying the removal.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Shards whose published snapshot was replaced by this update.
    pub touched: Vec<usize>,
    /// Shards whose packed base was rebuilt by this update.
    pub compacted: Vec<usize>,
}

/// The sharded A' index: a writer-side master [`AIndex`] projected into
/// hash shards with delta-overlay mutation. See the module docs.
#[derive(Debug)]
pub struct ShardedIndex {
    writer: Mutex<Writer>,
    published: Mutex<Arc<Directory>>,
    swaps: [AtomicU64; SHARD_COUNT],
    compactions: [AtomicU64; SHARD_COUNT],
    scratch: Arc<ViewScratchPool>,
}

impl ShardedIndex {
    /// Builds the sharded projection of `index` (a full compaction of
    /// every shard). Construction does not count toward the swap or
    /// compaction counters — they measure post-build mutation traffic.
    pub fn new(mut index: AIndex) -> Self {
        index.set_journaling(true);
        index.take_journal();
        let mut writer = Writer {
            master: index,
            refs: Vec::new(),
            incs: Vec::new(),
            members: vec![Vec::new(); SHARD_COUNT],
        };
        writer.register_nodes();
        let shards: [Arc<ShardSnap>; SHARD_COUNT] =
            std::array::from_fn(|shard| Arc::new(writer.compact_shard(shard)));
        let max_slots = shards.iter().map(|s| s.slots).max().unwrap_or(0);
        ShardedIndex {
            writer: Mutex::new(writer),
            published: Mutex::new(Arc::new(Directory { shards, max_slots })),
            swaps: std::array::from_fn(|_| AtomicU64::new(0)),
            compactions: std::array::from_fn(|_| AtomicU64::new(0)),
            scratch: Arc::new(ViewScratchPool::default()),
        }
    }

    /// Takes an immutable read view of the current projection.
    pub fn view(&self) -> IndexView {
        IndexView { dir: self.published.lock().clone(), scratch: Arc::clone(&self.scratch) }
    }

    /// A standalone clone of the master index (persistence surface).
    pub fn snapshot(&self) -> AIndex {
        let writer = self.writer.lock();
        let mut index = writer.master.clone();
        index.set_journaling(false);
        index
    }

    /// Runs a mutation against the master index, then drains the journal
    /// into the affected shards' overlays and publishes them — one new
    /// snapshot per *touched* shard, every other shard untouched.
    pub fn update<R>(&self, f: impl FnOnce(&mut AIndex) -> R) -> R {
        self.update_reporting(f).0
    }

    /// Like [`update`](ShardedIndex::update), but also reports which
    /// shards the drain compacted — the checkpoint boundary.
    pub fn update_reporting<R>(&self, f: impl FnOnce(&mut AIndex) -> R) -> (R, UpdateReport) {
        let mut writer = self.writer.lock();
        let out = f(&mut writer.master);
        let report = self.drain(&mut writer);
        (out, report)
    }

    /// Serializes one shard's live members and their incident edges as
    /// checkpoint body lines (`node <key>` / `edge <kind> <origin> <p>
    /// <a> <b>`, keys percent-escaped). Like the serial format, lineage
    /// is flattened: inferred edges are recorded as direct. Cross-shard
    /// edges appear once per endpoint shard; loading re-applies them
    /// idempotently.
    pub fn serialize_shard(&self, shard: usize) -> String {
        use std::fmt::Write as _;
        let writer = self.writer.lock();
        let mut out = String::new();
        for &n in &writer.members[shard] {
            if !writer.master.node_alive(n) {
                continue;
            }
            let key = writer.master.key_at(n);
            let _ = writeln!(out, "node {}", crate::serial::escape(&key.to_string()));
            for (o, kind, prob, origin) in writer.master.live_incident_of(n) {
                let kind = match kind {
                    RelationKind::Identity => "id",
                    RelationKind::Matching => "match",
                };
                let origin = match origin {
                    EdgeOrigin::Direct | EdgeOrigin::Inferred(..) => "direct",
                    EdgeOrigin::Promoted => "promoted",
                };
                let _ = writeln!(
                    out,
                    "edge {kind} {origin} {} {} {}",
                    prob.get(),
                    crate::serial::escape(&key.to_string()),
                    crate::serial::escape(&writer.master.key_at(o).to_string()),
                );
            }
        }
        out
    }

    /// Replaces the whole index (full rebuild of every shard).
    pub fn replace(&self, mut index: AIndex) {
        index.set_journaling(true);
        index.take_journal();
        let mut writer = self.writer.lock();
        *writer = Writer {
            master: index,
            refs: Vec::new(),
            incs: Vec::new(),
            members: vec![Vec::new(); SHARD_COUNT],
        };
        writer.register_nodes();
        let shards: [Arc<ShardSnap>; SHARD_COUNT] =
            std::array::from_fn(|shard| Arc::new(writer.compact_shard(shard)));
        let max_slots = shards.iter().map(|s| s.slots).max().unwrap_or(0);
        for shard in 0..SHARD_COUNT {
            self.swaps[shard].fetch_add(1, Ordering::Relaxed);
            self.compactions[shard].fetch_add(1, Ordering::Relaxed);
        }
        *self.published.lock() = Arc::new(Directory { shards, max_slots });
    }

    /// Applies the journal accumulated in the master to the projection.
    /// Reports the shards that were republished and compacted.
    fn drain(&self, writer: &mut Writer) -> UpdateReport {
        let ops = writer.master.take_journal();
        if ops.is_empty() {
            return UpdateReport::default();
        }
        writer.register_nodes();
        let mut created: Vec<u32> = Vec::new();
        for &op in &ops {
            match op {
                JournalOp::Created(n) => created.push(n),
                JournalOp::Revived(n) => writer.incs[n as usize] += 1,
                JournalOp::Touched(_) => {}
            }
        }
        // Dirty master ids, deduped, grouped by shard.
        let mut dirty: Vec<Vec<u32>> = vec![Vec::new(); SHARD_COUNT];
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &op in &ops {
            let n = match op {
                JournalOp::Created(n) | JournalOp::Revived(n) | JournalOp::Touched(n) => n,
            };
            if seen.insert(n) {
                dirty[shard_of(writer.refs[n as usize])].push(n);
            }
        }
        let created: std::collections::HashSet<u32> = created.into_iter().collect();

        let current = self.published.lock().clone();
        let mut replaced: Vec<(usize, Arc<ShardSnap>)> = Vec::new();
        let mut compacted: Vec<usize> = Vec::new();
        for (shard, nodes) in dirty.iter().enumerate() {
            if nodes.is_empty() {
                continue;
            }
            let old = &current.shards[shard];
            let snap =
                if wants_compaction(old.overlay.nodes.len() + nodes.len(), old.base.keys.len()) {
                    self.compactions[shard].fetch_add(1, Ordering::Relaxed);
                    compacted.push(shard);
                    writer.compact_shard(shard)
                } else {
                    let mut overlay = old.overlay.clone();
                    let mut resident = old.resident_bytes;
                    for &n in nodes {
                        let slot = slot_of(writer.refs[n as usize]);
                        let node = writer.project(n);
                        if created.contains(&n) {
                            overlay.names.insert(node.key.clone(), slot);
                            resident += key_heap_bytes(&node.key) + 32;
                        }
                        resident += node.edges.len() * std::mem::size_of::<HalfEdge>() + 48;
                        overlay.nodes.insert(slot, node);
                    }
                    ShardSnap {
                        base: Arc::clone(&old.base),
                        overlay,
                        slots: writer.members[shard].len() as u32,
                        resident_bytes: resident,
                    }
                };
            self.swaps[shard].fetch_add(1, Ordering::Relaxed);
            replaced.push((shard, Arc::new(snap)));
        }
        let touched: Vec<usize> = replaced.iter().map(|(shard, _)| *shard).collect();
        if replaced.is_empty() {
            return UpdateReport { touched, compacted };
        }
        let mut shards = current.shards.clone();
        for (shard, snap) in replaced {
            shards[shard] = snap;
        }
        let max_slots = shards.iter().map(|s| s.slots).max().unwrap_or(0);
        *self.published.lock() = Arc::new(Directory { shards, max_slots });
        UpdateReport { touched, compacted }
    }

    /// Per-shard statistics of the published projection.
    pub fn shard_stats(&self) -> Vec<ShardIndexStats> {
        let dir = self.published.lock().clone();
        dir.shards
            .iter()
            .enumerate()
            .map(|(shard, snap)| ShardIndexStats {
                shard,
                entries: snap.live_count(),
                overlay_depth: snap.overlay.nodes.len(),
                resident_bytes: snap.resident_bytes,
                compactions: self.compactions[shard].load(Ordering::Relaxed),
                swaps: self.swaps[shard].load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Anything that can answer the multi-seed augmentation primitive — the
/// planner's only requirement, satisfied by both the monolithic
/// [`AIndex`] and the sharded [`IndexView`].
pub trait Augmentable {
    /// See [`AIndex::augment_multi`].
    fn augment_multi(&self, seeds: &[GlobalKey], level: usize) -> (Vec<AugmentedKey>, Vec<u32>);
}

impl Augmentable for AIndex {
    fn augment_multi(&self, seeds: &[GlobalKey], level: usize) -> (Vec<AugmentedKey>, Vec<u32>) {
        AIndex::augment_multi(self, seeds, level)
    }
}

impl Augmentable for IndexView {
    fn augment_multi(&self, seeds: &[GlobalKey], level: usize) -> (Vec<AugmentedKey>, Vec<u32>) {
        IndexView::augment_multi(self, seeds, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeletionPolicy;

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    fn p(f: f64) -> Probability {
        Probability::of(f)
    }

    /// A deterministic, structurally varied index: identity chains with
    /// cross-store cliques plus matchings, like the workload builder's
    /// shape but self-contained.
    fn sample_index(groups: usize) -> AIndex {
        let mut ix = AIndex::new();
        for g in 0..groups {
            let a = k(&format!("db0.c.a{g}"));
            let b = k(&format!("db1.c.b{g}"));
            let c = k(&format!("db2.c.c{g}"));
            ix.insert_identity(&a, &b, p(0.9 + 0.001 * (g % 50) as f64));
            ix.insert_identity(&b, &c, p(0.85));
            let m = k(&format!("db3.c.m{}", g / 2));
            ix.insert_matching(&a, &m, p(0.7 + 0.002 * (g % 30) as f64));
            if g > 0 {
                let prev = k(&format!("db0.c.a{}", g - 1));
                ix.insert_matching(&prev, &c, p(0.6));
            }
        }
        ix
    }

    fn seed_sets(groups: usize) -> Vec<Vec<GlobalKey>> {
        let mut sets =
            vec![vec![k("db0.c.a0")], vec![k("db1.c.b1"), k("db2.c.c2")], vec![k("no.such.key")]];
        let multi: Vec<GlobalKey> = (0..groups.min(7)).map(|g| k(&format!("db0.c.a{g}"))).collect();
        sets.push(multi);
        sets
    }

    fn assert_equivalent(master: &AIndex, sharded: &ShardedIndex, groups: usize) {
        let view = sharded.view();
        assert_eq!(master.stats(), view.stats(), "stats diverge");
        for seeds in seed_sets(groups) {
            for level in 0..3 {
                let (want, want_own) = AIndex::augment_multi(master, &seeds, level);
                let (got, got_own) = view.augment_multi(&seeds, level);
                assert_eq!(want, got, "augment diverges (level {level}, seeds {seeds:?})");
                assert_eq!(want_own, got_own, "ownership diverges (level {level})");
            }
        }
        for g in 0..groups {
            let key = k(&format!("db0.c.a{g}"));
            assert_eq!(master.contains(&key), view.contains(&key));
            assert_eq!(master.neighbors(&key), view.neighbors(&key));
            let b = k(&format!("db1.c.b{g}"));
            assert_eq!(
                master.edge(&key, &b, RelationKind::Identity),
                view.edge(&key, &b, RelationKind::Identity)
            );
        }
    }

    #[test]
    fn projection_matches_master_after_build() {
        let master = sample_index(20);
        let sharded = ShardedIndex::new(master.clone());
        assert_equivalent(&master, &sharded, 20);
    }

    #[test]
    fn projection_matches_master_under_mutation() {
        let sharded = ShardedIndex::new(sample_index(20));
        // Interleave removals, inserts and re-inserts.
        for g in [3usize, 7, 11] {
            sharded.update(|ix| ix.remove_object(&k(&format!("db1.c.b{g}"))));
        }
        sharded.update(|ix| {
            ix.insert_identity(&k("db0.c.a3"), &k("db4.c.fresh"), p(0.8));
            ix.insert_matching(&k("db4.c.fresh"), &k("db3.c.m1"), p(0.55));
        });
        // Resurrect a removed key with a new relation.
        sharded.update(|ix| ix.insert_identity(&k("db1.c.b7"), &k("db2.c.c7"), p(0.95)));
        let master = sharded.snapshot();
        assert_equivalent(&master, &sharded, 20);
    }

    #[test]
    fn removal_swaps_exactly_one_shard() {
        let sharded = ShardedIndex::new(sample_index(12));
        let before: Vec<u64> = sharded.shard_stats().iter().map(|s| s.swaps).collect();
        assert!(before.iter().all(|&s| s == 0), "construction must not count as swaps");
        let victim = k("db0.c.a5");
        sharded.update(|ix| ix.remove_object(&victim));
        let after: Vec<u64> = sharded.shard_stats().iter().map(|s| s.swaps).collect();
        let home = route(&victim);
        for (shard, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
            if shard == home {
                assert_eq!(a, b + 1, "home shard must republish exactly once");
            } else {
                assert_eq!(a, b, "shard {shard} must be untouched by a removal");
            }
        }
        assert!(!sharded.view().contains(&victim));
    }

    #[test]
    fn removal_hides_edges_without_touching_neighbor_shards() {
        let sharded = ShardedIndex::new(sample_index(12));
        let victim = k("db1.c.b4");
        let neighbor = k("db0.c.a4");
        assert!(sharded.view().edge(&neighbor, &victim, RelationKind::Identity).is_some());
        sharded.update(|ix| ix.remove_object(&victim));
        let view = sharded.view();
        assert!(view.edge(&neighbor, &victim, RelationKind::Identity).is_none());
        assert!(view.contains(&neighbor));
        assert_eq!(sharded.snapshot().stats(), view.stats());
    }

    #[test]
    fn resurrection_does_not_revive_stale_edges() {
        let sharded = ShardedIndex::new(sample_index(8));
        let victim = k("db2.c.c3");
        sharded.update(|ix| ix.remove_object(&victim));
        // Re-insert the key with a single fresh relation; the old edges
        // stay dead even though neighbouring shards still hold stale
        // half-edges (their incarnation check must fail).
        sharded.update(|ix| ix.insert_matching(&victim, &k("db5.c.new"), p(0.5)));
        let master = sharded.snapshot();
        assert_equivalent(&master, &sharded, 8);
        let view = sharded.view();
        assert!(view.contains(&victim));
        assert!(view.edge(&k("db1.c.b3"), &victim, RelationKind::Identity).is_none());
        assert!(view.edge(&victim, &k("db5.c.new"), RelationKind::Matching).is_some());
    }

    #[test]
    fn views_are_stable_snapshots() {
        let sharded = ShardedIndex::new(sample_index(10));
        let victim = k("db0.c.a2");
        let before = sharded.view();
        assert!(before.contains(&victim));
        let reached_before = before.augment(std::slice::from_ref(&victim), 1);
        sharded.update(|ix| ix.remove_object(&victim));
        // The old view still sees the pre-mutation world…
        assert!(before.contains(&victim));
        assert_eq!(before.augment(std::slice::from_ref(&victim), 1), reached_before);
        // …while a fresh view sees the post-mutation world.
        assert!(!sharded.view().contains(&victim));
    }

    #[test]
    fn overlay_compaction_folds_and_stays_equivalent() {
        let groups = 40;
        let sharded = ShardedIndex::new(sample_index(groups));
        // Enough single-key mutations to push overlays past the trigger
        // floor (64 entries per shard) — each round creates `groups`
        // fresh nodes that stay in their shard's overlay until folded.
        for round in 0..30 {
            for g in 0..groups {
                let key = k(&format!("db3.c.m{}", g / 2));
                sharded.update(|ix| {
                    ix.insert_matching(
                        &key,
                        &k(&format!("db6.c.x{round}_{g}")),
                        p(0.4 + 0.01 * (g % 10) as f64),
                    );
                });
            }
        }
        let stats = sharded.shard_stats();
        assert!(
            stats.iter().any(|s| s.compactions > 0),
            "sustained mutation must trigger compaction: {stats:?}"
        );
        let master = sharded.snapshot();
        assert_equivalent(&master, &sharded, groups);
    }

    #[test]
    fn cascade_deletion_is_projected() {
        let mut ix = AIndex::with_policy(DeletionPolicy::Cascade);
        ix.insert_identity(&k("db0.c.a"), &k("db1.c.b"), p(0.9));
        ix.insert_identity(&k("db1.c.b"), &k("db2.c.c"), p(0.8));
        ix.insert_matching(&k("db0.c.a"), &k("db3.c.m"), p(0.7));
        let sharded = ShardedIndex::new(ix);
        // Removing b cascades to edges inferred through b's relations,
        // including ones between surviving nodes — those must republish
        // their shards too.
        sharded.update(|ix| ix.remove_object(&k("db1.c.b")));
        let master = sharded.snapshot();
        let view = sharded.view();
        assert_eq!(master.stats(), view.stats());
        assert_eq!(
            master.edge(&k("db0.c.a"), &k("db2.c.c"), RelationKind::Identity),
            view.edge(&k("db0.c.a"), &k("db2.c.c"), RelationKind::Identity),
        );
        for seeds in [vec![k("db0.c.a")], vec![k("db2.c.c"), k("db3.c.m")]] {
            for level in 0..3 {
                assert_eq!(
                    AIndex::augment_multi(&master, &seeds, level),
                    view.augment_multi(&seeds, level)
                );
            }
        }
    }

    #[test]
    fn update_reporting_surfaces_compactions() {
        let groups = 40;
        let sharded = ShardedIndex::new(sample_index(groups));
        let mut reported: Vec<usize> = Vec::new();
        for round in 0..30 {
            for g in 0..groups {
                let key = k(&format!("db3.c.m{}", g / 2));
                let (_, report) = sharded.update_reporting(|ix| {
                    ix.insert_matching(&key, &k(&format!("db6.c.y{round}_{g}")), p(0.5));
                });
                reported.extend(report.compacted);
            }
        }
        let stats = sharded.shard_stats();
        for s in &stats {
            let seen = reported.iter().filter(|&&c| c == s.shard).count() as u64;
            assert_eq!(seen, s.compactions, "shard {} compaction count", s.shard);
        }
        assert!(!reported.is_empty(), "sustained mutation must compact");
    }

    #[test]
    fn serialize_shard_covers_every_live_node_once() {
        let sharded = ShardedIndex::new(sample_index(15));
        sharded.update(|ix| ix.remove_object(&k("db1.c.b4")));
        let mut node_lines = 0;
        for shard in 0..SHARD_COUNT {
            let body = sharded.serialize_shard(shard);
            node_lines += body.lines().filter(|l| l.starts_with("node ")).count();
            assert!(!body.contains(&format!("node {}", "db1.c.b4")), "dead node serialized");
        }
        assert_eq!(node_lines, sharded.snapshot().stats().nodes);
    }

    #[test]
    fn shard_stats_account_entries_and_bytes() {
        let sharded = ShardedIndex::new(sample_index(30));
        let stats = sharded.shard_stats();
        let total: usize = stats.iter().map(|s| s.entries).sum();
        assert_eq!(total, sharded.snapshot().stats().nodes);
        assert!(stats.iter().map(|s| s.resident_bytes).sum::<usize>() > 0);
        assert!(stats.iter().filter(|s| s.entries > 0).count() > 1, "keys must spread shards");
    }

    #[test]
    fn replace_rebuilds_every_shard() {
        let sharded = ShardedIndex::new(sample_index(5));
        sharded.replace(sample_index(9));
        let master = sharded.snapshot();
        assert_equivalent(&master, &sharded, 9);
        assert!(sharded.shard_stats().iter().all(|s| s.swaps == 1 && s.compactions == 1));
    }
}
